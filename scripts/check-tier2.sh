#!/usr/bin/env bash
# Tier-2 checks, beyond `cargo build --release && cargo test -q`:
#
# 1. caex-lint statically analyses every built-in workload family and
#    exits nonzero on deny-level findings;
# 2. the observability battery runs the invariant watchdog and the live
#    §4.4 message-law checks over every built-in workload on the real
#    engines;
# 3. the tables binary regenerates TABLES.md and BENCH_PR2.json,
#    validating the bench document (laws + watchdog) before writing it;
# 4. the checked-in BENCH_PR2.json is pinned against a live
#    regeneration, so a stale document fails the build;
# 5. the wire frame codec survives its fuzz-style property battery;
# 6. a real multi-process smoke run: one OS process per participant
#    over loopback TCP, held to the §4.4 count and the §4.5 watchdog,
#    plus a crash run that must surface the victim as a deserter;
# 7. the model checker exhaustively verifies every small built-in
#    family (CAEX015-CAEX018), sweeps resolver crashes through the
#    paper's Examples 1 and 2, cross-checks each verdict against the
#    dynamic seed sweep, and pins the CAEX019 domino analysis against
#    an executed Campbell-Randell baseline; exits nonzero on any
#    violation, unconfirmed counterexample, or disagreement;
# 8. the causal analysis end-to-end: BENCH_PR7.json is pinned against a
#    live regeneration, caex-report's critical-path table on a recorded
#    sim Example 2 matches the pinned numbers, and a real multi-process
#    wire run's skew-stitched trace passes the happens-before `--check`
#    invariants (acyclic, every receive matched, phase sums exact);
# 9. resolver failover: the release-mode crash-grid battery (every role
#    killed at every protocol step of Examples 1/2, plus the random
#    (n,p,q) proptest and the thread engine), then two real
#    multi-process runs — the elected resolver killed at its commit
#    point, and a SIGSTOP zombie resumed after re-election whose stale
#    commits must be fenced;
# 10. partition tolerance: a release-mode healed-partition wire run —
#    one participant SIGSTOPped for a full second mid-resolution, far
#    past the old fixed crash timeout, then SIGCONTed. The phi-accrual
#    detector must ride the outage out as a suspicion: the coordinator
#    asserts the §4.4 message law on the resumed mesh and that no
#    deserter was ever reported (the run is assessed as a clean run);
# 11. saturation smoke: the open-loop load generator drives ~200
#    Poisson-arriving actions through all three engines (the sharded
#    sim fleet, central, cr), asserting the per-action §4.4 law and
#    full completion under multiplexing, zero deadline misses at low
#    load, and the checked-in BENCH_PR10.json against a live
#    regeneration of the saturation study.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-2 [1/11]: caex-lint over every built-in workload =="
cargo run -q -p caex-lint --bin caex-lint

echo "== tier-2 [2/11]: obs watchdog + §4.4 laws over every built-in workload =="
cargo test -q --test observability

echo "== tier-2 [3/11]: regenerate TABLES.md and validated BENCH_PR2.json =="
cargo run -q -p caex-bench --bin tables -- --out TABLES.md --bench-json BENCH_PR2.json \
    > /dev/null

echo "== tier-2 [4/11]: BENCH_PR2.json matches the checked-in pin =="
cargo test -q -p caex-bench --test bench_pr2

echo "== tier-2 [5/11]: wire frame codec fuzz battery =="
cargo test -q -p caex-wire --test frame_props

echo "== tier-2 [6/11]: multi-process §4.2 resolution over real sockets =="
cargo run -q --release -p caex-wire --bin caex-wire -- --role coordinator --scenario example1
cargo run -q --release -p caex-wire --bin caex-wire -- --role coordinator --scenario example2
cargo run -q --release -p caex-wire --bin caex-wire -- --role coordinator --scenario example1 \
    --crash 3 --crash-mode exit

echo "== tier-2 [7/11]: exhaustive model checking of the built-in scenarios =="
cargo run -q --release -p caex-lint --bin caex-lint -- check --model

echo "== tier-2 [8/11]: causal analysis — BENCH_PR7 pin, caex-report, wire trace =="
cargo test -q -p caex-bench --test bench_pr7
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run -q -p caex-bench --bin caex-report -- record \
    --workload example2 --out "$TRACE_DIR/ex2-sim.jsonl"
cargo run -q -p caex-bench --bin caex-report -- analyze \
    --in "$TRACE_DIR/ex2-sim.jsonl" --check --table > "$TRACE_DIR/ex2-sim.table"
grep -q "A0#r1             405                205                100" \
    "$TRACE_DIR/ex2-sim.table" \
    || { echo "sim Example 2 critical path drifted from the pin:"; \
         cat "$TRACE_DIR/ex2-sim.table"; exit 1; }
cargo run -q --release -p caex-wire --bin caex-wire -- --role coordinator \
    --scenario example2 --obs-out "$TRACE_DIR/ex2-wire.jsonl" > /dev/null
cargo run -q -p caex-bench --bin caex-report -- analyze \
    --in "$TRACE_DIR/ex2-wire.jsonl" --check --folded "$TRACE_DIR/ex2-wire.folded"
test -s "$TRACE_DIR/ex2-wire.folded" || { echo "empty folded output"; exit 1; }

echo "== tier-2 [9/11]: resolver failover — crash grids, commit-point kill, zombie =="
cargo test -q --release -p caex --test failover
cargo run -q --release -p caex-wire --bin caex-wire -- --role coordinator \
    --scenario example1 --crash 2 --crash-point commit
cargo run -q --release -p caex-wire --bin caex-wire -- --role coordinator \
    --scenario example1 --crash 2 --crash-mode stop --crash-point commit \
    --resume-after-ms 800

echo "== tier-2 [10/11]: healed partition — suspect, resume, zero deserters =="
cargo run -q --release -p caex-wire --bin caex-wire -- --role coordinator \
    --scenario example1 --partition 3 --partition-ms 1000

echo "== tier-2 [11/11]: saturation smoke — open-loop load, three engines, pin =="
cargo run -q --release -p caex-load --bin caex-load -- run \
    --arrivals poisson:800 --actions 200 --engine sim --workers 2 --capacity 4 \
    --deadline-ms 20 --seed 10 --assert-law --assert-no-misses
cargo run -q --release -p caex-load --bin caex-load -- run \
    --arrivals poisson:800 --actions 200 --engine central --workers 2 --capacity 4 \
    --deadline-ms 20 --seed 10 --assert-no-misses
cargo run -q --release -p caex-load --bin caex-load -- run \
    --arrivals poisson:800 --actions 200 --engine cr --workers 2 --capacity 4 \
    --deadline-ms 20 --seed 10 --assert-no-misses
cargo test -q -p caex-load --test bench_pr10

echo "tier-2 OK"
