#!/usr/bin/env bash
# Tier-2 checks, beyond `cargo build --release && cargo test -q`:
#
# 1. caex-lint statically analyses every built-in workload family and
#    exits nonzero on deny-level findings;
# 2. the observability battery runs the invariant watchdog and the live
#    §4.4 message-law checks over every built-in workload on the real
#    engines;
# 3. the tables binary regenerates TABLES.md and BENCH_PR2.json,
#    validating the bench document (laws + watchdog) before writing it;
# 4. the checked-in BENCH_PR2.json is pinned against a live
#    regeneration, so a stale document fails the build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-2 [1/4]: caex-lint over every built-in workload =="
cargo run -q -p caex-lint --bin caex-lint

echo "== tier-2 [2/4]: obs watchdog + §4.4 laws over every built-in workload =="
cargo test -q --test observability

echo "== tier-2 [3/4]: regenerate TABLES.md and validated BENCH_PR2.json =="
cargo run -q -p caex-bench --bin tables -- --out TABLES.md --bench-json BENCH_PR2.json \
    > /dev/null

echo "== tier-2 [4/4]: BENCH_PR2.json matches the checked-in pin =="
cargo test -q -p caex-bench --test bench_pr2

echo "tier-2 OK"
