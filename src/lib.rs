//! Reproduction harness for *Exception Handling and Resolution in
//! Distributed Object-Oriented Systems* (Romanovsky, Xu & Randell, 1996).
//!
//! This crate re-exports the workspace members so the examples and
//! integration tests in this repository can use a single dependency:
//!
//! - [`caex`] — the resolution algorithms (the paper's contribution);
//! - [`caex_tree`] — exception values and exception trees;
//! - [`caex_net`] — the discrete-event network simulator and the
//!   threaded transport;
//! - [`caex_action`] — CA actions, atomic objects and conversations.

pub use caex;
pub use caex_action;
pub use caex_net;
pub use caex_tree;
