//! The two runtimes agree: the same scenario produces the same
//! resolution on the discrete-event simulator and on real threads.

use caex::thread_engine::ThreadRunner;
use caex::Scenario;
use caex_action::{ActionId, ActionRegistry, ActionScope};
use caex_net::{NodeId, SimTime};
use caex_tree::{balanced_tree, Exception, ExceptionId};
use std::sync::Arc;

fn setup(n: u32) -> (Arc<ActionRegistry>, ActionId) {
    let tree = Arc::new(balanced_tree(2, 2)); // 7 classes
    let mut reg = ActionRegistry::new();
    let action = reg
        .declare(ActionScope::top_level(
            "shared",
            (0..n).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    (Arc::new(reg), action)
}

/// Exceptions e3 (leaf under e1) and e4 (leaf under e1) resolve to e1
/// in a 2-ary depth-2 tree, on both runtimes.
#[test]
fn same_resolution_on_both_runtimes() {
    let raises = [
        (NodeId::new(0), ExceptionId::new(3)),
        (NodeId::new(2), ExceptionId::new(4)),
    ];

    // Simulator.
    let (registry, action) = setup(4);
    let mut scenario = Scenario::new(Arc::clone(&registry)).enter_all_at(SimTime::ZERO, action);
    for &(node, exc) in &raises {
        scenario = scenario.raise_at(SimTime::from_micros(10), node, Exception::new(exc));
    }
    let sim_report = scenario.run();
    let sim_resolved = sim_report
        .agreed_exception(action)
        .expect("sim resolution")
        .id();

    // Threads.
    let (registry, action) = setup(4);
    let mut runner = ThreadRunner::new(registry).enter_all_at(SimTime::ZERO, action);
    for &(node, exc) in &raises {
        runner = runner.raise_at(SimTime::from_millis(2), node, Exception::new(exc));
    }
    let thread_report = runner.run();
    let thread_resolved = thread_report
        .agreed_exception(action)
        .expect("thread resolution")
        .id();

    assert_eq!(sim_resolved, thread_resolved);
    assert_eq!(thread_report.handled_exceptions(action).len(), 4);
}

/// Threaded runs satisfy the agreement invariant across repetitions
/// (interleavings differ, outcomes must not).
#[test]
fn threaded_agreement_is_stable_across_runs() {
    for _ in 0..3 {
        let (registry, action) = setup(3);
        let report = ThreadRunner::new(registry)
            .enter_all_at(SimTime::ZERO, action)
            .raise_at(
                SimTime::from_millis(1),
                NodeId::new(0),
                Exception::new(ExceptionId::new(3)),
            )
            .raise_at(
                SimTime::from_millis(1),
                NodeId::new(1),
                Exception::new(ExceptionId::new(5)),
            )
            .run();
        let agreed = report.agreed_exception(action).expect("resolved");
        // e3 (under e1) and e5 (under e2) only share the root.
        assert_eq!(agreed.id(), ExceptionId::ROOT);
        assert_eq!(report.handled_exceptions(action).len(), 3);
    }
}

/// Nested abortion on real threads: an outer exception aborts a nested
/// action whose abortion handler signals, and the signal joins the
/// resolution — Example-2 mechanics outside the simulator.
#[test]
fn threaded_nested_abortion_with_signal() {
    use caex_action::{AbortionOutcome, HandlerTable};
    use caex_tree::chain_tree;

    let tree = Arc::new(chain_tree(4));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    table.on_abort(caex_net::SimTime::from_micros(100), || {
        AbortionOutcome::Signal(Exception::new(ExceptionId::new(3)))
    });

    let report = ThreadRunner::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_millis(1), NodeId::new(1), a2)
        .handlers(NodeId::new(1), a2, table)
        .raise_at(
            SimTime::from_millis(3),
            NodeId::new(0),
            Exception::new(ExceptionId::new(2)),
        )
        .run();

    // Resolution over {e2 (raised), e3 (abortion signal)} on the chain
    // tree resolves to e2; all three objects handle it.
    let agreed = report.agreed_exception(a1).expect("resolution on threads");
    assert_eq!(agreed.id(), ExceptionId::new(2));
    assert_eq!(report.handled_exceptions(a1).len(), 3);
    // The nested object announced and completed its abortion.
    assert!(report
        .notes
        .iter()
        .any(|n| matches!(n, caex::Note::AbortedNested { .. })));
    assert_eq!(report.stats.sent_of_kind("have_nested"), 2);
    assert_eq!(report.stats.sent_of_kind("nested_completed"), 2);
}

/// A threaded happy path sends no protocol messages (§4.4's
/// no-overhead claim, on real channels).
#[test]
fn threaded_happy_path_is_message_free() {
    let (registry, action) = setup(3);
    let report = ThreadRunner::new(registry)
        .enter_all_at(SimTime::ZERO, action)
        .run();
    assert_eq!(report.stats.sent_total(), 0);
    assert!(report.handled_exceptions(action).is_empty());
}

/// The thread engine populates the full per-kind breakdown: every sent
/// message is either delivered or accounted as a drop (inboxes are
/// drained at idle exit), so the conservation law the sim path already
/// satisfied holds on threads too.
#[test]
fn threaded_stats_conserve_messages_per_kind() {
    let (registry, action) = setup(4);
    let report = ThreadRunner::new(registry)
        .enter_all_at(SimTime::ZERO, action)
        .raise_at(
            SimTime::from_millis(1),
            NodeId::new(1),
            Exception::new(ExceptionId::new(3)),
        )
        .raise_at(
            SimTime::from_millis(1),
            NodeId::new(3),
            Exception::new(ExceptionId::new(4)),
        )
        .run();
    let stats = &report.stats;
    assert!(stats.sent_total() > 0);
    assert_eq!(
        stats.sent_total(),
        stats.delivered_total() + stats.dropped_total(),
        "thread engine must account every sent message: {stats}"
    );
    for (kind, sent) in stats.sent_by_kind() {
        assert_eq!(
            sent,
            stats.delivered_of_kind(kind) + stats.dropped_of_kind(kind),
            "per-kind conservation violated for {kind}"
        );
        assert!(
            stats.delivered_of_kind(kind) > 0,
            "per-kind delivered counter not populated for {kind}"
        );
    }
}
