//! Integration tests for the `caex-obs` layer over the real engines:
//! §4.4 law checks through `MetricsRegistry`, golden span/metric
//! snapshots for the paper's Examples 1 and 2, Chrome-trace round
//! trips, watchdog cleanliness over every built-in workload, and the
//! observed variants of the thread/central/cr engines.

use caex::{analysis, workloads};
use caex_net::{NetConfig, SimTime};
use caex_obs::exporters::{check_balanced, track_ids};
use caex_obs::{
    ChromeTraceExporter, JsonlExporter, MetricsRegistry, MetricsSnapshot, ObsKind, Recorder,
    Tee, Watchdog,
};

/// Runs a workload with the full observer stack attached.
fn observe(
    workload: workloads::Workload,
) -> (caex::RunReport, MetricsRegistry, Watchdog, Recorder) {
    let mut metrics = MetricsRegistry::new().with_law(analysis::messages_general);
    let mut watchdog = Watchdog::new();
    let mut recorder = Recorder::new();
    let report = {
        let mut tee = Tee::new()
            .with(&mut metrics)
            .with(&mut watchdog)
            .with(&mut recorder);
        workload.scenario.run_observed(&mut tee)
    };
    (report, metrics, watchdog, recorder)
}

/// §4.4 case 1 (single raise, no nested): the registry's per-round
/// message count must equal the closed form `3(N−1)`.
#[test]
fn case1_round_matches_law() {
    for n in [2, 4, 8] {
        let (report, metrics, watchdog, _) = observe(workloads::case1(n, NetConfig::default()));
        assert!(report.is_clean());
        assert!(watchdog.is_clean(), "{:?}", watchdog.violations());
        assert_eq!(metrics.resolutions().len(), 1);
        let r = &metrics.resolutions()[0];
        assert_eq!(r.n, u64::from(n));
        assert_eq!((r.p, r.q), (1, 0));
        assert_eq!(r.messages, analysis::messages_case1(u64::from(n)));
        assert_eq!(r.predicted, Some(r.messages));
        assert_eq!(r.law_holds, Some(true));
        assert!(metrics.law_holds());
    }
}

/// §4.4 case 2: one raiser, every other object inside a nested action
/// — `3N(N−1)`.
#[test]
fn case2_round_matches_law() {
    let (_, metrics, watchdog, _) = observe(workloads::case2(5, NetConfig::default()));
    assert!(watchdog.is_clean(), "{:?}", watchdog.violations());
    let r = &metrics.resolutions()[0];
    assert_eq!((r.n, r.p, r.q), (5, 1, 4));
    assert_eq!(r.messages, analysis::messages_case2(5));
    assert_eq!(r.law_holds, Some(true));
}

/// §4.4 case 3: all `N` objects raise simultaneously — `(N−1)(2N+1)`.
#[test]
fn case3_round_matches_law() {
    let (_, metrics, watchdog, _) = observe(workloads::case3(6, NetConfig::default()));
    assert!(watchdog.is_clean(), "{:?}", watchdog.violations());
    let r = &metrics.resolutions()[0];
    assert_eq!((r.n, r.p, r.q), (6, 6, 0));
    assert_eq!(r.messages, analysis::messages_case3(6));
    assert_eq!(r.law_holds, Some(true));
}

/// The general `(N, P, Q)` workload across a grid: the live per-round
/// count always equals `(N−1)(2P+3Q+1)`.
#[test]
fn general_rounds_match_law() {
    for (n, p, q) in [(3, 1, 1), (5, 2, 1), (6, 3, 2), (8, 2, 5)] {
        let (_, metrics, watchdog, _) =
            observe(workloads::general(n, p, q, NetConfig::default()));
        assert!(watchdog.is_clean(), "({n},{p},{q}): {:?}", watchdog.violations());
        assert_eq!(metrics.resolutions().len(), 1, "({n},{p},{q})");
        let r = &metrics.resolutions()[0];
        assert_eq!(
            (r.n, r.p, r.q),
            (u64::from(n), u64::from(p), u64::from(q)),
            "({n},{p},{q})"
        );
        assert_eq!(
            r.messages,
            analysis::messages_general(u64::from(n), u64::from(p), u64::from(q)),
            "({n},{p},{q})"
        );
        assert_eq!(r.law_holds, Some(true));
    }
}

/// Every built-in workload family runs watchdog-clean.
#[test]
fn watchdog_is_clean_over_every_builtin() {
    let builds: Vec<(&str, workloads::Workload)> = vec![
        ("general(6,3,2)", workloads::general(6, 3, 2, NetConfig::default())),
        ("case1(4)", workloads::case1(4, NetConfig::default())),
        ("case2(4)", workloads::case2(4, NetConfig::default())),
        ("case3(8)", workloads::case3(8, NetConfig::default())),
        ("fig3", workloads::fig3(NetConfig::default())),
        ("example1", workloads::example1(NetConfig::default()).0),
        ("example2", workloads::example2(NetConfig::default()).0),
    ];
    for (name, workload) in builds {
        let (_, _, watchdog, _) = observe(workload);
        assert!(watchdog.is_clean(), "{name}: {:?}", watchdog.violations());
    }
}

/// Formats one event as a compact golden line.
fn golden_line(e: &caex_obs::ObsEvent) -> String {
    format!("{} {} {} {}", e.at.as_micros(), e.object, e.span, e.kind.label())
}

/// Golden span snapshot of Example 1 (§4.3): the full structural event
/// stream (message sends and state transitions elided for brevity; the
/// law tests above count those).
#[test]
fn example1_golden_span_snapshot() {
    let (_, _, _, recorder) = observe(workloads::example1(NetConfig::default()).0);
    let got: Vec<String> = recorder
        .events
        .iter()
        .filter(|e| {
            !matches!(
                e.kind,
                ObsKind::MessageSent { .. }
                    | ObsKind::MessageReceived { .. }
                    | ObsKind::StateTransition { .. }
            )
        })
        .map(golden_line)
        .collect();
    let want = [
        "0 O1 A0#r0 action_enter",
        "0 O2 A0#r0 action_enter",
        "0 O3 A0#r0 action_enter",
        "10 O1 A0#r1 resolution_start",
        "10 O1 A0#r1 raise",
        "10 O2 A0#r1 raise",
        "210 O2 A0#r1 resolver_elected",
        "210 O2 A0#r1 resolution_commit",
        "210 O2 A0#r1 handler_start",
        "210 O2 A0#r1 handler_end",
        "210 O2 A0#r1 action_leave",
        "310 O1 A0#r1 handler_start",
        "310 O3 A0#r1 handler_start",
        "310 O1 A0#r1 handler_end",
        "310 O1 A0#r1 action_leave",
        "310 O3 A0#r1 handler_end",
        "310 O3 A0#r1 action_leave",
    ];
    assert_eq!(got, want);
}

/// Golden span snapshot of Example 2's abortion phase: the nested
/// actions unwind innermost-first, every abortion ends before the
/// commit, and O2's nested raise opens its own (never-committed) round
/// `A2#r1` — distinct from the outer `A0#r1` correlation id.
#[test]
fn example2_abortion_spans_are_correlated() {
    let (_, _, _, recorder) = observe(workloads::example2(NetConfig::default()).0);
    let lines: Vec<String> = recorder.events.iter().map(golden_line).collect();
    // O2 is caught inside A2 (nested in A1): its raise correlates to A2.
    assert!(lines.contains(&"10 O2 A2#r1 resolution_start".to_owned()));
    assert!(lines.contains(&"10 O2 A2#r1 raise".to_owned()));
    // The chain unwinds innermost-first: A2 leaves before A1 on O2.
    let pos = |l: &str| {
        lines
            .iter()
            .position(|x| x == l)
            .unwrap_or_else(|| panic!("missing {l}"))
    };
    assert!(pos("110 O2 A2#r1 action_leave") < pos("110 O2 A1#r0 action_leave"));
    assert!(pos("110 O2 A1#r0 action_leave") < pos("110 O2 A0#r1 abortion_start"));
    // O2's abortion handler signals E3: abortion end, then the
    // synthesized raise, all before the commit.
    assert!(pos("115 O2 A0#r1 abortion_end") < pos("115 O2 A0#r1 raise"));
    assert!(pos("115 O2 A0#r1 raise") < pos("315 O2 A0#r1 resolution_commit"));
    // Exactly one abortion per participant of A1, all ended.
    let count = |label: &str| {
        recorder
            .events
            .iter()
            .filter(|e| e.kind.label() == label)
            .count()
    };
    assert_eq!(count("abortion_start"), 3);
    assert_eq!(count("abortion_end"), 3);
}

/// Golden metrics snapshot of Example 2, pinned as the exact JSON the
/// snapshot serializes to, and round-tripped through the hand-rolled
/// parser.
#[test]
fn example2_golden_metrics_snapshot_roundtrips() {
    let (_, metrics, _, _) = observe(workloads::example2(NetConfig::default()).0);
    let snapshot = metrics.snapshot();
    let json = snapshot.to_json();
    let golden = concat!(
        r#"{"events_total":{"abortion_end":3,"abortion_start":3,"action_enter":8,"#,
        r#""action_leave":8,"handler_end":4,"handler_start":4,"message_received":37,"#,
        r#""message_sent":37,"#,
        r#""raise":3,"resolution_commit":1,"resolution_start":2,"resolver_elected":1,"#,
        r#""state_transition":11},"messages_total":{"ack":12,"commit":3,"exception":4,"#,
        r#""have_nested":9,"nested_completed":9},"state_dwell_us":{"N":39998680,"R":200,"#,
        r#""S":615,"X":505},"resolutions":[{"action":0,"round":1,"latency_us":305,"#,
        r#""wall_latency_us":null,"messages":36,"by_kind":{"ack":12,"commit":3,"#,
        r#""exception":3,"have_nested":9,"nested_completed":9},"n":4,"p":2,"q":3,"#,
        r#""predicted":null,"law_holds":null,"resolved":"e1"}],"resolution_latency":"#,
        r#"{"bounds":[1,10,100,1000,10000,100000,1000000,10000000],"#,
        r#""counts":[0,0,0,1,0,0,0,0,0],"sum":305,"count":1,"#,
        r#""p50":305,"p99":305,"p999":305},"resolution_latency_wall":"#,
        r#"{"bounds":[1,10,100,1000,10000,100000,1000000,10000000],"#,
        r#""counts":[0,0,0,0,0,0,0,0,0],"sum":0,"count":0,"#,
        r#""p50":0,"p99":0,"p999":0},"handler_durations":"#,
        r#"{"bounds":[1,10,100,1000,10000,100000,1000000,10000000],"#,
        r#""counts":[4,0,0,0,0,0,0,0,0],"sum":0,"count":4,"#,
        r#""p50":0,"p99":0,"p999":0}}"#,
    );
    assert_eq!(json, golden);
    let parsed = MetricsSnapshot::from_json(&json).expect("snapshot json parses");
    assert_eq!(parsed, snapshot);
}

/// Example 2's Chrome trace: loadable JSON, one track per participant,
/// every `B` matched by an `E` on the same track with non-decreasing
/// timestamps.
#[test]
fn example2_chrome_trace_roundtrips() {
    let mut chrome = ChromeTraceExporter::new();
    let _ = workloads::example2(NetConfig::default())
        .0
        .scenario
        .run_observed(&mut chrome);
    let text = chrome.to_json();
    let doc = caex_obs::json::parse(&text).expect("chrome trace parses");
    let spans = check_balanced(&doc).expect("spans balance");
    assert!(spans >= 8, "A0 on four objects plus nested spans: {spans}");
    let tracks = track_ids(&doc);
    assert_eq!(tracks.len(), 4, "one track per participant: {tracks:?}");
    assert_eq!(&tracks, chrome.tracks());
}

/// The JSONL exporter writes one parseable object per event.
#[test]
fn jsonl_exports_one_line_per_event() {
    let mut jsonl = JsonlExporter::new();
    let mut recorder = Recorder::new();
    {
        let mut tee = Tee::new().with(&mut jsonl).with(&mut recorder);
        let _ = workloads::example1(NetConfig::default())
            .0
            .scenario
            .run_observed(&mut tee);
    }
    assert_eq!(jsonl.len(), recorder.events.len());
    for line in jsonl.contents().lines() {
        let value = caex_obs::json::parse(line).expect("every line is JSON");
        assert!(value.get("kind").is_some(), "line lacks kind: {line}");
    }
}

/// The threaded engine streams the same protocol with wall-clock
/// timestamps: the §4.4 law holds on real threads and the latency is
/// measured in real microseconds.
#[test]
fn thread_engine_observed_matches_law_with_wall_clock() {
    use caex::thread_engine::ThreadRunner;
    use caex_action::{ActionRegistry, ActionScope};
    use caex_net::NodeId;
    use caex_tree::{chain_tree, Exception, ExceptionId};
    use std::sync::Arc;

    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut metrics = MetricsRegistry::new().with_law(analysis::messages_general);
    let mut watchdog = Watchdog::new();
    {
        let mut tee = Tee::new().with(&mut metrics).with(&mut watchdog);
        let _ = ThreadRunner::new(Arc::new(reg))
            .enter_all_at(SimTime::ZERO, a1)
            .raise_at(
                SimTime::from_millis(1),
                NodeId::new(0),
                Exception::new(ExceptionId::new(1)),
            )
            .raise_at(
                SimTime::from_millis(1),
                NodeId::new(2),
                Exception::new(ExceptionId::new(2)),
            )
            .run_observed(&mut tee);
    }
    assert!(watchdog.is_clean(), "{:?}", watchdog.violations());
    assert_eq!(metrics.resolutions().len(), 1);
    let r = &metrics.resolutions()[0];
    assert_eq!((r.n, r.p, r.q), (3, 2, 0));
    assert_eq!(r.messages, analysis::messages_general(3, 2, 0));
    assert_eq!(r.law_holds, Some(true));
    let wall = r.wall_latency_us.expect("thread engine carries wall time");
    assert!(wall > 0, "commit strictly after the 1 ms raise");
}

/// The centralized baseline reports its fixed coordinator as the
/// elected resolver and its `central_report`/`central_commit` traffic.
#[test]
fn central_observed_reports_coordinator_election() {
    use caex::central;
    use caex_net::NodeId;
    use caex_tree::{chain_tree, ExceptionId};
    use std::sync::Arc;

    let mut metrics = MetricsRegistry::new();
    let mut recorder = Recorder::new();
    let raises: Vec<_> = (1..4)
        .map(|i| (NodeId::new(i), ExceptionId::new(i)))
        .collect();
    {
        let mut tee = Tee::new().with(&mut metrics).with(&mut recorder);
        let report = central::run_observed(
            6,
            Arc::new(chain_tree(4)),
            NodeId::new(0),
            &raises,
            SimTime::from_millis(1),
            NetConfig::default(),
            &mut tee,
        );
        assert!(report.resolved_everywhere(6));
    }
    assert_eq!(metrics.messages_total().get("central_report"), Some(&3));
    assert_eq!(metrics.messages_total().get("central_commit"), Some(&5));
    assert!(recorder.events.iter().any(|e| matches!(
        e.kind,
        caex_obs::ObsKind::ResolverElected { resolver } if resolver == NodeId::new(0)
    )));
    assert_eq!(metrics.resolutions().len(), 1);
    assert!(metrics.resolutions()[0].latency_us >= 1_000, "window floor");
}

/// The CR baseline's §3.3 domino is visible as a chain of `Raise`
/// events inside one round, and every counted send has an event.
#[test]
fn cr_observed_domino_raises_and_message_parity() {
    use caex::cr;
    use caex_net::NodeId;
    use caex_tree::{chain_tree, interleaved_reduced_trees, ExceptionId};
    use std::sync::Arc;

    let tree = Arc::new(chain_tree(8));
    let (odd, even) = interleaved_reduced_trees(&tree, 8);
    let mut recorder = Recorder::new();
    let report = cr::run_observed(
        2,
        tree,
        vec![odd, even],
        &[(NodeId::new(1), ExceptionId::new(8))],
        NetConfig::default(),
        &mut recorder,
    );
    let raises = recorder
        .events
        .iter()
        .filter(|e| e.kind.label() == "raise")
        .count();
    assert_eq!(raises as u32, report.raised_total);
    assert!(raises >= 8, "the domino climbed the chain: {raises}");
    let sends = recorder
        .events
        .iter()
        .filter(|e| e.kind.label() == "message_sent")
        .count();
    assert_eq!(sends as u64, report.total_messages());
    assert_eq!(report.committed, ExceptionId::ROOT);
}

/// The watchdog flags protocol-impossible streams that the real
/// engines never produce: an `N→R` jump, a handler inside an open
/// abortion, and a handler end without a start.
#[test]
fn watchdog_flags_synthetic_violations() {
    use caex_action::ActionId;
    use caex_net::NodeId;
    use caex_obs::{CorrelationId, ObsEvent, ObsState, Observer};

    let event = |kind: ObsKind| ObsEvent {
        at: SimTime::from_micros(1),
        wall_micros: None,
        object: NodeId::new(0),
        span: CorrelationId {
            action: ActionId::new(0),
            round: 1,
        },
        kind,
    };
    let mut jump = Watchdog::new();
    jump.on_event(&event(ObsKind::StateTransition {
        from: ObsState::N,
        to: ObsState::R,
    }));
    assert!(!jump.is_clean(), "N→R skips the X/S phases");

    let mut during = Watchdog::new();
    during.on_event(&event(ObsKind::AbortionStart { depth: 1 }));
    during.on_event(&event(ObsKind::HandlerStart {
        exception: caex_tree::ExceptionId::new(1),
    }));
    assert!(!during.is_clean(), "handler inside an open abortion");

    let mut unbalanced = Watchdog::new();
    unbalanced.on_event(&event(ObsKind::HandlerEnd { signalled: false }));
    assert!(!unbalanced.is_clean(), "handler end without start");
}

mod span_properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_npq() -> impl Strategy<Value = (u32, u32, u32)> {
        (2u32..8).prop_flat_map(|n| {
            (1u32..=n).prop_flat_map(move |p| (0u32..=(n - p)).prop_map(move |q| (n, p, q)))
        })
    }

    proptest! {
        /// Over random `(N, P, Q)` workloads, the Chrome trace always
        /// balances: every `B` has a matching same-name `E` on its
        /// track with non-decreasing timestamps, and the trace carries
        /// one track per participant.
        #[test]
        fn chrome_spans_balance_on_random_workloads((n, p, q) in arb_npq()) {
            let workload = workloads::general(n, p, q, NetConfig::default());
            let mut chrome = ChromeTraceExporter::new();
            let _ = workload.scenario.run_observed(&mut chrome);
            let doc = caex_obs::json::parse(&chrome.to_json()).expect("trace parses");
            let spans = check_balanced(&doc).expect("B/E pairs balance");
            prop_assert!(spans >= n as usize, "at least one span per object");
            prop_assert_eq!(track_ids(&doc).len(), n as usize);
        }
    }
}
