//! Cross-crate integration: the resolution protocol driving real
//! recovery of external atomic objects (Fig. 2) and conversations.

use caex::Scenario;
use caex_action::atomic::Store;
use caex_action::conversation::Conversation;
use caex_action::{ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_net::{NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Fig. 2(a) wired to the protocol: the resolved exception's handler
/// performs forward recovery on a shared atomic store — abort the
/// damaged transaction, start a repair transaction, commit it.
#[test]
fn resolved_handler_repairs_atomic_objects() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "transfer",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();

    let store = Arc::new(Mutex::new(Store::<i64>::new()));
    let (account, attempt) = {
        let mut s = store.lock();
        let account = s.define("account", 100);
        // The action's ongoing attempt has already damaged the balance.
        let attempt = s.begin_top_level();
        s.write(attempt, account, -999).unwrap();
        (account, attempt)
    };

    // O1's handler for e1 performs the Fig. 2(a) forward recovery.
    let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    {
        let store = Arc::clone(&store);
        table.on(ExceptionId::new(1), SimTime::from_micros(50), move |_| {
            let mut s = store.lock();
            s.abort(attempt).unwrap(); // abort the damaged attempt
            let repair = s.begin_top_level(); // start
            s.write(repair, account, 100).unwrap(); // repaired state
            s.commit(repair).unwrap(); // commit
            HandlerOutcome::Recovered
        });
    }

    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .handlers(NodeId::new(1), a1, table)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();

    assert!(report.is_clean());
    assert_eq!(report.handlers_for(a1).len(), 2);
    let s = store.lock();
    assert_eq!(
        s.committed(account),
        100,
        "forward recovery restored a valid state"
    );
    assert_eq!(s.abort_count(account), 1);
    assert_eq!(s.commit_count(account), 1);
}

/// "The transaction associated with a CA action could be aborted
/// transparently once an exception is propagated to the containing
/// action" (§3.1): a failing handler signals, and the abort happens.
#[test]
fn failure_signal_aborts_the_associated_transaction() {
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "outer",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "inner",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();

    let store = Arc::new(Mutex::new(Store::<i64>::new()));
    let (obj, inner_txn) = {
        let mut s = store.lock();
        let obj = s.define("ledger", 10);
        let txn = s.begin_top_level();
        s.write(txn, obj, 77).unwrap();
        (obj, txn)
    };

    // O1's handler in A2 cannot recover: it aborts the inner
    // transaction and signals e3 to A1.
    let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    {
        let store = Arc::clone(&store);
        table.on(ExceptionId::new(1), SimTime::ZERO, move |_| {
            store.lock().abort(inner_txn).unwrap();
            HandlerOutcome::Signal(Exception::new(ExceptionId::new(3)))
        });
    }

    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .handlers(NodeId::new(1), a2, table)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(1),
            Exception::new(ExceptionId::new(1)),
        )
        .run();

    assert!(report.is_clean(), "{report}");
    // The signal cascaded: a second resolution ran in A1 over e3.
    let outer = report.resolution_for(a1).expect("outer resolution");
    assert_eq!(outer.resolved.id(), ExceptionId::new(3));
    // The uncommitted write was rolled back.
    assert_eq!(store.lock().committed(obj), 10);
}

/// Backward recovery as the bottom line (§3.1): the handler itself
/// runs a conversation whose alternate passes.
#[test]
fn handler_uses_conversation_for_backward_recovery() {
    let tree = Arc::new(chain_tree(1));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "conv-action",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();

    let accepted = Arc::new(Mutex::new(None::<usize>));
    let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    {
        let accepted = Arc::clone(&accepted);
        table.on(ExceptionId::new(1), SimTime::ZERO, move |_| {
            let mut conv = Conversation::new(vec![0_i32, 0]);
            conv.attempt(|s| {
                s[0] = 999; // primary: wrong
                s[1] = 1;
            });
            conv.attempt(|s| {
                s[0] = 1; // alternate: right
                s[1] = 1;
            });
            match conv.run(|s| s.iter().all(|&x| x < 10)) {
                Ok(report) => {
                    *accepted.lock() = Some(report.accepted_attempt);
                    HandlerOutcome::Recovered
                }
                Err(_) => HandlerOutcome::Signal(Exception::new(ExceptionId::new(1))),
            }
        });
    }

    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .handlers(NodeId::new(0), a1, table)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();

    assert!(report.is_clean());
    assert!(report.failures.is_empty(), "recovery succeeded, no signal");
    assert_eq!(*accepted.lock(), Some(1), "the alternate was accepted");
}

/// Competing actions: two top-level actions sharing a store; the loser
/// of the lock race raises, resolves alone, repairs and retries.
#[test]
fn competing_actions_resolve_their_own_conflicts() {
    let tree = Arc::new(chain_tree(1));
    let mut reg = ActionRegistry::new();
    // Action A: objects 0, 1. Action B: objects 2, 3. (Separately
    // designed activities, §3's competitive concurrency.)
    let a = reg
        .declare(ActionScope::top_level(
            "A",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let b = reg
        .declare(ActionScope::top_level(
            "B",
            [NodeId::new(2), NodeId::new(3)],
            Arc::clone(&tree),
        ))
        .unwrap();

    let store = Arc::new(Mutex::new(Store::<i64>::new()));
    let shared = store.lock().define("shared", 0);

    // Action A's transaction holds the lock.
    let txn_a = {
        let mut s = store.lock();
        let t = s.begin_top_level();
        s.write(t, shared, 5).unwrap();
        t
    };

    // Action B's object 3 hits the conflict and raises e1; its handler
    // waits for A to finish (modelled by the handler running after A's
    // commit) and then applies B's update.
    let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    {
        let store = Arc::clone(&store);
        table.on(ExceptionId::new(1), SimTime::from_micros(500), move |_| {
            let mut s = store.lock();
            // By handler time, A has committed (see below).
            let t = s.begin_top_level();
            let v = s.read(t, shared).unwrap();
            s.write(t, shared, v + 10).unwrap();
            s.commit(t).unwrap();
            HandlerOutcome::Recovered
        });
    }

    // A commits quickly.
    store.lock().commit(txn_a).unwrap();

    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a)
        .enter_all_at(SimTime::ZERO, b)
        .handlers(NodeId::new(3), b, table)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(3),
            Exception::new(ExceptionId::new(1)).with_detail("lock conflict on `shared`"),
        )
        .run();

    assert!(report.is_clean());
    // Only action B resolved; action A was untouched (no messages to
    // its participants beyond B's own).
    assert_eq!(report.resolutions.len(), 1);
    assert_eq!(report.resolutions[0].action, b);
    assert_eq!(store.lock().committed(shared), 15, "A's 5 then B's +10");
}
