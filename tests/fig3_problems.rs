//! The five problems of §3.3 (Fig. 3) that the CR algorithm left open,
//! each demonstrated solved by the new algorithm.
//!
//! Fig. 3 topology: `A1 = {O0,O1,O2,O3} ⊃ A2 = {O2,O3} ⊃ A3 = {O3}`
//! (shape per the figure: O1 raises; O2 and O3 are inside nested
//! actions of different depth).

use caex::{workloads, Note, Scenario};
use caex_action::{AbortionOutcome, ActionId, ActionRegistry, ActionScope, HandlerTable};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use std::sync::Arc;

struct Fig3 {
    registry: Arc<ActionRegistry>,
    a1: ActionId,
    a2: ActionId,
    a3: ActionId,
}

fn fig3() -> Fig3 {
    let tree = Arc::new(chain_tree(6));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(2), NodeId::new(3)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let a3 = reg
        .declare(ActionScope::nested(
            "A3",
            [NodeId::new(3)],
            Arc::clone(&tree),
            a2,
        ))
        .unwrap();
    Fig3 {
        registry: Arc::new(reg),
        a1,
        a2,
        a3,
    }
}

fn base_scenario(f: &Fig3) -> Scenario {
    Scenario::new(Arc::clone(&f.registry))
        .enter_all_at(SimTime::ZERO, f.a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), f.a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(3), f.a2)
        .enter_at(SimTime::from_micros(2), NodeId::new(3), f.a3)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(1),
            Exception::new(ExceptionId::new(1)).with_origin("O1"),
        )
}

/// Problem 1: "A3 should be aborted before A2" — O3's abortion chain is
/// innermost-first.
#[test]
fn problem1_abortion_order() {
    let f = fig3();
    let report = base_scenario(&f).run();
    let o3_chain = report.notes.iter().find_map(|n| match n {
        Note::AbortedNested { object, chain, .. } if *object == NodeId::new(3) => {
            Some(chain.clone())
        }
        _ => None,
    });
    assert_eq!(o3_chain, Some(vec![f.a3, f.a2]), "A3 strictly before A2");
}

/// Problem 2: "both O2 and O3 are responsible for aborting A2" — each
/// participant runs its own abortion handler for A2; neither waits for
/// the other.
#[test]
fn problem2_both_participants_abort_a2() {
    let f = fig3();
    let report = base_scenario(&f).run();
    let aborters: Vec<NodeId> = report
        .notes
        .iter()
        .filter_map(|n| match n {
            Note::AbortedNested { object, chain, .. } if chain.contains(&f.a2) => Some(*object),
            _ => None,
        })
        .collect();
    assert!(aborters.contains(&NodeId::new(2)));
    assert!(aborters.contains(&NodeId::new(3)));
    assert!(report.is_clean());
}

/// Problem 3: a belated participant of the nested actions must not be
/// waited for. O1 was supposed to enter A2/A3-like actions but never
/// does; abortion proceeds promptly and resolution completes.
#[test]
fn problem3_no_waiting_for_belated_participants() {
    // Variant where A2 also lists O1, who never enters it.
    let tree = Arc::new(chain_tree(4));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(3), a2)
        // O1 is belated for A2 forever (entry scheduled far in the
        // future, void once A2 aborts).
        .enter_at(SimTime::from_millis(60_000), NodeId::new(1), a2)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    assert!(report.is_clean(), "{report}");
    let r = report.resolution_for(a1).expect("resolution in A1");
    // Resolution completed long before the belated entry would fire.
    assert!(r.at < SimTime::from_millis(1_000));
    assert_eq!(report.handlers_for(a1).len(), 4);
}

/// Problem 4: "the lower level resolution performed by O2 should be
/// ignored when the resolution is started by O1 within A1". O2 raises
/// inside A2 concurrently with O1's raise in A1.
#[test]
fn problem4_lower_level_resolution_ignored() {
    let f = fig3();
    let report = base_scenario(&f)
        // O2 concurrently raises inside A2 (its active action).
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(2),
            Exception::new(ExceptionId::new(2)).with_origin("O2-in-A2"),
        )
        .run();
    assert!(report.is_clean(), "{report}");
    // Only one resolution commits — in A1. The A2 resolution O2 started
    // was eliminated.
    assert_eq!(report.resolutions.len(), 1);
    let r = report.resolution_for(f.a1).expect("resolution in A1");
    // O2's E2 vanished with the eliminated resolution (it did not
    // become part of the outer resolved set, §3.3 problem 4).
    assert!(
        r.raised.iter().all(|(_, e)| e.id() != ExceptionId::new(2)),
        "raised set {:?}",
        r.raised
    );
}

/// Problem 5: "all exceptions signalled by abortion handlers in a
/// nested action have to be ignored unless the action is nested
/// directly in the action where an exception was raised" — A3's signal
/// is masked, A2's is honoured.
#[test]
fn problem5_deep_signals_masked() {
    let f = fig3();
    let tree = Arc::new(chain_tree(6));
    // O3's abortion handlers: A3 signals e5 (must be masked), A2
    // signals e4 (must be honoured).
    let mk = |id: u32| {
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        t.on_abort(SimTime::from_micros(2), move || {
            AbortionOutcome::Signal(Exception::new(ExceptionId::new(id)))
        });
        t
    };
    let report = base_scenario(&f)
        .handlers(NodeId::new(3), f.a3, mk(5))
        .handlers(NodeId::new(3), f.a2, mk(4))
        .run();
    let r = report.resolution_for(f.a1).expect("resolution");
    let raised: Vec<_> = r.raised.iter().map(|(_, e)| e.id()).collect();
    assert!(
        raised.contains(&ExceptionId::new(4)),
        "A2's signal honoured"
    );
    assert!(!raised.contains(&ExceptionId::new(5)), "A3's signal masked");
    assert!(report
        .notes
        .iter()
        .any(|n| matches!(n, Note::DeepSignalIgnored { action, .. } if *action == f.a3)));
}

/// The complete Fig. 3 story, end to end: O1 raises, O0 suspends, O2
/// and O3 abort, everyone converges on one handler.
#[test]
fn fig3_end_to_end() {
    let f = fig3();
    let report = base_scenario(&f).run();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.resolutions.len(), 1);
    assert_eq!(report.handlers_for(f.a1).len(), 4);
    report.agreed_exception(f.a1).expect("agreement");
    // Message accounting: P=1 raiser, Q=2 nested objects, N=4 ⟹
    // (N−1)(2P+3Q+1) = 3 × 9 = 27.
    assert_eq!(
        report.total_messages(),
        caex::analysis::messages_general(4, 1, 2)
    );
}

/// The same Fig. 3 shape under workloads::general cross-check: Q nested
/// objects with two-deep chains still satisfy the Q-law because each
/// object sends exactly one HaveNested and one NestedCompleted no
/// matter how deep its chain is.
#[test]
fn chain_depth_does_not_change_message_count() {
    // general(4,1,2) builds singleton one-deep nests; fig3 has a
    // two-deep nest for O3 — counts must match anyway.
    let flat = workloads::general(4, 1, 2, NetConfig::default()).run();
    let f = fig3();
    let deep = base_scenario(&f).run();
    assert_eq!(flat.total_messages(), deep.total_messages());
}
