//! Golden-trace test: the complete message sequence of the paper's
//! Example 2 is pinned, line by line. Deterministic by construction
//! (fixed seed, constant latency); if the protocol implementation
//! changes its message behaviour in any way, this test shows the exact
//! diff.

use caex::workloads;
use caex_net::NetConfig;

/// The full Example 2 trace with default constant 100µs latency.
/// Regenerate with:
/// `cargo run --example nested_recovery` (prints the same trace).
const GOLDEN: &str = "\
[       0us] local     O1 -> O1 : local_enter
[       0us] local     O2 -> O2 : local_enter
[       0us] local     O3 -> O3 : local_enter
[       0us] local     O4 -> O4 : local_enter
[       1us] local     O2 -> O2 : local_enter
[       1us] local     O3 -> O3 : local_enter
[       1us] local     O4 -> O4 : local_enter
[       2us] local     O2 -> O2 : local_enter
[      10us] local     O1 -> O1 : local_raise
[      10us] sent      O1 -> O2 : exception
[      10us] sent      O1 -> O3 : exception
[      10us] sent      O1 -> O4 : exception
[      10us] local     O2 -> O2 : local_raise
[      10us] sent      O2 -> O3 : exception
[     110us] delivered O1 -> O2 : exception
[     110us] sent      O2 -> O1 : have_nested
[     110us] sent      O2 -> O3 : have_nested
[     110us] sent      O2 -> O4 : have_nested
[     110us] delivered O1 -> O3 : exception
[     110us] sent      O3 -> O1 : have_nested
[     110us] sent      O3 -> O2 : have_nested
[     110us] sent      O3 -> O4 : have_nested
[     110us] delivered O1 -> O4 : exception
[     110us] sent      O4 -> O1 : have_nested
[     110us] sent      O4 -> O2 : have_nested
[     110us] sent      O4 -> O3 : have_nested
[     110us] delivered O2 -> O3 : exception
[     110us] local     O3 -> O3 : local_abortion_done
[     110us] sent      O3 -> O1 : nested_completed
[     110us] sent      O3 -> O2 : nested_completed
[     110us] sent      O3 -> O4 : nested_completed
[     110us] sent      O3 -> O1 : ack
[     110us] local     O4 -> O4 : local_abortion_done
[     110us] sent      O4 -> O1 : nested_completed
[     110us] sent      O4 -> O2 : nested_completed
[     110us] sent      O4 -> O3 : nested_completed
[     110us] sent      O4 -> O1 : ack
[     115us] local     O2 -> O2 : local_abortion_done
[     115us] sent      O2 -> O1 : nested_completed
[     115us] sent      O2 -> O3 : nested_completed
[     115us] sent      O2 -> O4 : nested_completed
[     115us] sent      O2 -> O1 : ack
[     210us] delivered O2 -> O1 : have_nested
[     210us] delivered O2 -> O3 : have_nested
[     210us] delivered O2 -> O4 : have_nested
[     210us] delivered O3 -> O1 : have_nested
[     210us] delivered O3 -> O2 : have_nested
[     210us] delivered O3 -> O4 : have_nested
[     210us] delivered O4 -> O1 : have_nested
[     210us] delivered O4 -> O2 : have_nested
[     210us] delivered O4 -> O3 : have_nested
[     210us] delivered O3 -> O1 : nested_completed
[     210us] sent      O1 -> O3 : ack
[     210us] delivered O3 -> O2 : nested_completed
[     210us] sent      O2 -> O3 : ack
[     210us] delivered O3 -> O4 : nested_completed
[     210us] sent      O4 -> O3 : ack
[     210us] delivered O3 -> O1 : ack
[     210us] delivered O4 -> O1 : nested_completed
[     210us] sent      O1 -> O4 : ack
[     210us] delivered O4 -> O2 : nested_completed
[     210us] sent      O2 -> O4 : ack
[     210us] delivered O4 -> O3 : nested_completed
[     210us] sent      O3 -> O4 : ack
[     210us] delivered O4 -> O1 : ack
[     215us] delivered O2 -> O1 : nested_completed
[     215us] sent      O1 -> O2 : ack
[     215us] delivered O2 -> O3 : nested_completed
[     215us] sent      O3 -> O2 : ack
[     215us] delivered O2 -> O4 : nested_completed
[     215us] sent      O4 -> O2 : ack
[     215us] delivered O2 -> O1 : ack
[     310us] delivered O1 -> O3 : ack
[     310us] delivered O2 -> O3 : ack
[     310us] delivered O4 -> O3 : ack
[     310us] delivered O1 -> O4 : ack
[     310us] delivered O2 -> O4 : ack
[     310us] delivered O3 -> O4 : ack
[     315us] delivered O1 -> O2 : ack
[     315us] delivered O3 -> O2 : ack
[     315us] delivered O4 -> O2 : ack
[     315us] sent      O2 -> O1 : commit
[     315us] sent      O2 -> O3 : commit
[     315us] sent      O2 -> O4 : commit
[     315us] local     O2 -> O2 : local_handler_done
[     415us] delivered O2 -> O1 : commit
[     415us] delivered O2 -> O3 : commit
[     415us] delivered O2 -> O4 : commit
[     415us] local     O1 -> O1 : local_handler_done
[     415us] local     O3 -> O3 : local_handler_done
[     415us] local     O4 -> O4 : local_handler_done
[10000000us] local     O3 -> O3 : local_enter
";

#[test]
fn example2_golden_trace() {
    let (w, _ids) = workloads::example2(NetConfig::default().with_trace(true));
    let report = w.run();
    let rendered = report.trace.render();
    if rendered != GOLDEN {
        // Show a usable diff on failure.
        for (i, (got, want)) in rendered.lines().zip(GOLDEN.lines()).enumerate() {
            if got != want {
                panic!(
                    "trace diverges at line {}:\n  got : {got}\n  want: {want}",
                    i + 1
                );
            }
        }
        panic!(
            "trace length changed: got {} lines, want {}",
            rendered.lines().count(),
            GOLDEN.lines().count()
        );
    }
}
