//! Trace-level checks of the paper's worked examples: not just the
//! outcome, but the message-by-message narrative of §4.3.

use caex::workloads;
use caex_net::{NetConfig, NodeId, TraceEventKind};

/// Example 1's narrative, checked against the actual delivery trace.
#[test]
fn example1_trace_matches_narrative() {
    let (w, ids) = workloads::example1(NetConfig::default().with_trace(true));
    let report = w.run();
    let o1 = NodeId::new(1);
    let o2 = NodeId::new(2);
    let o3 = NodeId::new(3);

    // "O1: sends Exception to O2 and O3".
    let o1_exceptions: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.label == "exception" && e.from == o1)
        .map(|e| e.to)
        .collect();
    assert_eq!(o1_exceptions, vec![o2, o3]);

    // "O2: sends Exception to O1 and O3".
    let o2_exceptions: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.label == "exception" && e.from == o2)
        .map(|e| e.to)
        .collect();
    assert_eq!(o2_exceptions, vec![o1, o3]);

    // "O3: receives Exceptions from O1 and O2, sends ACKs for two
    // Exception messages to them."
    let o3_acks: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.label == "ack" && e.from == o3)
        .map(|e| e.to)
        .collect();
    assert_eq!(o3_acks.len(), 2);
    assert!(o3_acks.contains(&o1) && o3_acks.contains(&o2));

    // "O2 ... sends Commit(E) to O1 and O3" — and only O2 commits.
    let commit_senders: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.label == "commit")
        .map(|e| e.from)
        .collect();
    assert_eq!(commit_senders, vec![o2, o2]);

    // Commit is the last protocol activity: every commit send comes
    // after every exception send.
    let last_exception_send = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.label == "exception")
        .map(|e| e.at)
        .max()
        .unwrap();
    let first_commit_send = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.label == "commit")
        .map(|e| e.at)
        .min()
        .unwrap();
    assert!(first_commit_send >= last_exception_send);

    let r = report.resolution_for(ids.a1).unwrap();
    assert_eq!(r.resolver, o2);
}

/// Example 2's narrative: HaveNested fan-out, NestedCompleted with the
/// abortion signal, and O2's deferred ACK to O1.
#[test]
fn example2_trace_matches_narrative() {
    let (w, ids) = workloads::example2(NetConfig::default().with_trace(true));
    let report = w.run();
    let o1 = NodeId::new(1);
    let o2 = NodeId::new(2);
    let o3 = NodeId::new(3);
    let o4 = NodeId::new(4);

    // "O2 ... has to send HaveNested to O1, O3 and O4."
    for (sender, peers) in [(o2, [o1, o3, o4]), (o3, [o1, o2, o4]), (o4, [o1, o2, o3])] {
        let sent: Vec<_> = report
            .trace
            .iter()
            .filter(|e| {
                e.kind == TraceEventKind::Sent && e.label == "have_nested" && e.from == sender
            })
            .map(|e| e.to)
            .collect();
        assert_eq!(sent, peers.to_vec(), "HaveNested fan-out of {sender}");
    }

    // Each nested object sends NestedCompleted to the other three.
    for sender in [o2, o3, o4] {
        let count = report
            .trace
            .iter()
            .filter(|e| {
                e.kind == TraceEventKind::Sent && e.label == "nested_completed" && e.from == sender
            })
            .count();
        assert_eq!(count, 3, "NestedCompleted fan-out of {sender}");
    }

    // O1 raised but never sends HaveNested (it has no nested actions).
    assert_eq!(
        report
            .trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::Sent && e.label == "have_nested" && e.from == o1)
            .count(),
        0
    );

    // FIFO discipline on the O2 -> O1 channel: HaveNested before
    // NestedCompleted before the (deferred) ACK.
    let o2_to_o1: Vec<&str> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.from == o2 && e.to == o1)
        .map(|e| e.label.as_str())
        .collect();
    let hn = o2_to_o1.iter().position(|&l| l == "have_nested").unwrap();
    let nc = o2_to_o1
        .iter()
        .position(|&l| l == "nested_completed")
        .unwrap();
    let ack = o2_to_o1.iter().position(|&l| l == "ack").unwrap();
    assert!(hn < nc && nc < ack, "order was {o2_to_o1:?}");

    // Only O2 commits, to its three peers.
    let commits: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::Sent && e.label == "commit")
        .map(|e| (e.from, e.to))
        .collect();
    assert_eq!(commits.len(), 3);
    assert!(commits.iter().all(|&(from, _)| from == o2));

    let r = report.resolution_for(ids.a1).unwrap();
    assert_eq!(
        r.resolved.id(),
        ids.e1,
        "resolve({{e1,e3}}) on the chain = e1"
    );
}

/// Message totals of Example 2 decompose as expected: 1 visible raiser
/// exception broadcast (O2's A3 exception is buffered-then-cleaned,
/// O1's counts), Q = 3 nested objects, plus O2's nested raise that only
/// produced one (cleaned) message.
#[test]
fn example2_message_totals() {
    let (w, _ids) = workloads::example2(NetConfig::default());
    let report = w.run();
    // O1's Exception broadcast: 3. O2's Exception inside A3: 1 (to O3).
    assert_eq!(report.messages_of("exception"), 4);
    assert_eq!(report.messages_of("have_nested"), 9); // 3 objects × 3 peers
    assert_eq!(report.messages_of("nested_completed"), 9);
    // ACKs: 3 for O1's exception + 9 for the NestedCompleteds. O2's A3
    // exception is never ACKed (cleaned up at belated O3).
    assert_eq!(report.messages_of("ack"), 12);
    assert_eq!(report.messages_of("commit"), 3);
    assert_eq!(report.total_messages(), 4 + 9 + 9 + 12 + 3);
}

/// Example 2's core properties are interleaving-independent: under
/// heavy latency jitter, every schedule still eliminates the nested
/// resolution, elects O2, and keeps E2 out of the resolved set.
#[test]
fn example2_properties_hold_under_jitter() {
    use caex_net::{LatencyModel, SimTime};
    for seed in 0..60u64 {
        let config = NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(10),
                max: SimTime::from_micros(4_000),
            });
        let (w, ids) = workloads::example2(config);
        let report = w.run();
        assert!(report.is_clean(), "seed {seed}: {report}");
        assert_eq!(report.resolutions.len(), 1, "seed {seed}");
        let r = report.resolution_for(ids.a1).expect("resolution in A1");
        assert_eq!(r.resolver, NodeId::new(2), "seed {seed}");
        assert!(
            r.raised.iter().all(|(_, e)| e.id() != ids.e2),
            "seed {seed}: E2 must be eliminated"
        );
        assert!(
            r.raised.iter().any(|(_, e)| e.id() == ids.e3),
            "seed {seed}: the abortion signal must join"
        );
        assert_eq!(report.handlers_for(ids.a1).len(), 4, "seed {seed}");
    }
}

/// Example 1's totals are interleaving-independent too.
#[test]
fn example1_counts_hold_under_jitter() {
    use caex_net::{LatencyModel, SimTime};
    for seed in 0..60u64 {
        let config = NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(10),
                max: SimTime::from_micros(4_000),
            });
        let (w, ids) = workloads::example1(config);
        let report = w.run();
        assert!(report.is_clean(), "seed {seed}");
        assert_eq!(
            report.total_messages(),
            caex::analysis::messages_general(3, 2, 0),
            "seed {seed}"
        );
        assert_eq!(
            report.resolution_for(ids.a1).unwrap().resolver,
            NodeId::new(2),
            "seed {seed}"
        );
    }
}

/// Determinism of the full example traces under a fixed seed.
#[test]
fn example_traces_are_reproducible() {
    let render = || {
        let (w, _) = workloads::example2(NetConfig::default().with_seed(5).with_trace(true));
        w.run().trace.render()
    };
    assert_eq!(render(), render());
}
