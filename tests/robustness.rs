//! Robustness of the protocol outside its assumed fault model:
//! partitions, loss sweeps, crash placement. The algorithm assumes
//! reliable FIFO channels (§4.2); these tests document exactly how it
//! degrades when lower layers fail to provide that, and that it always
//! *fails safe* (stalls detectably) rather than violating agreement.

use caex::{workloads, RunReport};
use caex_net::{FaultPlan, LatencyModel, NetConfig, NodeId, SimTime};

fn agreement_holds(report: &RunReport) -> bool {
    report.resolutions.iter().all(|r| {
        let handled: Vec<_> = report
            .handler_starts
            .iter()
            .filter(|h| h.action == r.action)
            .map(|h| h.exc.id())
            .collect();
        handled.windows(2).all(|w| w[0] == w[1])
    })
}

#[test]
fn partition_during_resolution_stalls_but_never_splits_brain() {
    // Nodes {0,1} are cut off from {2,3,4} exactly while the exception
    // broadcast is in flight.
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_partition(
            [NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            SimTime::from_millis(100),
        ));
    let report = workloads::case3(5, config).run();
    // The protocol cannot finish (it needs everyone), but it must not
    // commit contradictory resolutions either.
    assert!(!report.is_clean());
    assert!(agreement_holds(&report));
}

#[test]
fn partition_healing_before_raise_is_harmless() {
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_partition(
            [NodeId::new(0)],
            SimTime::ZERO,
            SimTime::from_micros(1), // heals before the raise at t=2
        ));
    let report = workloads::case1(5, config).run();
    assert!(report.is_clean());
    assert_eq!(report.resolutions.len(), 1);
}

#[test]
fn loss_sweep_never_violates_agreement() {
    // Sweep drop probabilities; resolution may stall (loss breaks the
    // reliability assumption) but committed handlers always agree.
    for (i, drop) in [0.01, 0.05, 0.1, 0.3].iter().enumerate() {
        for seed in 0..10u64 {
            let config = NetConfig::default()
                .with_seed(seed.wrapping_mul(31).wrapping_add(i as u64))
                .with_faults(FaultPlan::none().with_drop_probability(*drop));
            let report = workloads::case3(5, config).run();
            assert!(
                agreement_holds(&report),
                "agreement violated at drop={drop} seed={seed}"
            );
        }
    }
}

#[test]
fn crash_of_the_prospective_resolver_stalls_cleanly_without_failover() {
    // The max raiser (the resolver-to-be) crashes mid-protocol. The
    // paper's literal §4.2 machine (failover off) has no failure
    // handling: nobody may usurp the commit, so the run stalls with no
    // resolution — detectably, and without violating agreement.
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(
            // In case3(5) the raisers are O0..O4; resolver is O4.
            FaultPlan::none().with_crash(NodeId::new(4), SimTime::from_micros(50)),
        );
    let report = workloads::case3(5, config).with_failover(false).run();
    assert!(report.resolutions.is_empty());
    assert!(!report.is_clean());
    assert!(agreement_holds(&report));
}

#[test]
fn crash_of_the_prospective_resolver_fails_over_by_default() {
    // Same crash, failover on (the default): the survivors suspect O4,
    // re-elect the next-highest live raiser O3, and the resolution
    // completes over the full raised set — survivors all handle the
    // same exception.
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_crash(NodeId::new(4), SimTime::from_micros(50)));
    let report = workloads::case3(5, config).run();
    assert_eq!(report.resolutions.len(), 1);
    assert_eq!(report.resolutions[0].resolver, NodeId::new(3));
    assert!(agreement_holds(&report));
    // Every survivor (not the crashed O4) starts the resolved handler.
    assert_eq!(report.handlers_for(report.resolutions[0].action).len(), 4);
}

#[test]
fn crash_after_commit_does_not_disturb_survivors() {
    // The resolver commits at ~t=400µs (two latency rounds + slack);
    // crashing a bystander *after* the commit leaves the others intact.
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_crash(NodeId::new(0), SimTime::from_millis(50)));
    let report = workloads::case1(5, config).run();
    // Everything finished long before the crash point.
    assert!(report.is_clean());
    assert_eq!(report.handlers_for(report.resolutions[0].action).len(), 5);
}

#[test]
fn duplicates_and_jitter_combined_preserve_all_invariants() {
    for seed in 0..10 {
        let config = NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(10),
                max: SimTime::from_micros(2_000),
            })
            .with_faults(FaultPlan::none().with_duplicate_probability(0.25));
        let report = workloads::general(6, 3, 2, config).run();
        assert!(report.is_clean(), "seed {seed}: {report}");
        assert!(agreement_holds(&report), "seed {seed}");
        assert_eq!(report.resolutions.len(), 1, "seed {seed}");
        // Duplicated deliveries may trigger duplicate ACKs (the
        // protocol does not dedupe; extra ACKs are harmless), so the
        // law becomes a lower bound here.
        assert!(
            report.total_messages() >= caex::analysis::messages_general(6, 3, 2),
            "seed {seed}"
        );
    }
}
