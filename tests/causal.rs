//! Integration tests for `caex_obs::causal` over the real engines:
//! golden happens-before DAG and critical-path snapshots for the
//! paper's Examples 1 and 2 on the simulator, the same structural
//! guarantees on the thread/central/cr engines, and property tests
//! that the DAG stays acyclic with every receive matched to a send
//! over random `(N, P, Q)` workloads.

use caex::workloads;
use caex_net::{NetConfig, NodeId, SimTime};
use caex_obs::causal::{render_table, CausalGraph, CriticalPath, Phase};
use caex_obs::Recorder;

/// Runs a sim workload under a recorder and builds its DAG.
fn graph_of(workload: workloads::Workload) -> CausalGraph {
    let mut recorder = Recorder::new();
    let _ = workload.scenario.run_observed(&mut recorder);
    CausalGraph::build(&recorder.events)
}

fn phase_us(path: &CriticalPath, phase: Phase) -> u64 {
    path.phase_totals()
        .into_iter()
        .find(|(p, _)| *p == phase)
        .map_or(0, |(_, us)| us)
}

/// Every critical path's phase durations must telescope to exactly the
/// measured end-to-end latency.
fn assert_phase_sums(paths: &[CriticalPath]) {
    for path in paths {
        let sum: u64 = path.phase_totals().iter().map(|(_, us)| us).sum();
        assert_eq!(sum, path.total_us(), "phase sum breaks on {}", path.span);
    }
}

/// Example 1 (§4.3): the golden DAG shape and critical path. One round
/// resolves; its 300 µs split evenly across raise propagation (the
/// informing `exception` messages), election (the ACK wave), and
/// commit distribution — one 100 µs message hop each under the default
/// constant-latency network.
#[test]
fn example1_golden_dag_and_critical_path() {
    let graph = graph_of(workloads::example1(NetConfig::default()).0);
    assert_eq!(graph.events().len(), 44);
    assert_eq!(graph.edge_count(), 51);
    assert!(graph.is_acyclic());
    assert!(graph.unmatched_receives().is_empty());
    assert!(graph.unmatched_sends().is_empty());

    let paths = graph.critical_paths();
    assert_eq!(paths.len(), 1, "one resolution round");
    let path = &paths[0];
    assert_eq!(path.span.to_string(), "A0#r1");
    assert_eq!(path.total_us(), 300);
    assert_eq!(phase_us(path, Phase::RaisePropagation), 100);
    assert_eq!(phase_us(path, Phase::Election), 100);
    assert_eq!(phase_us(path, Phase::CommitAbort), 100);
    assert_phase_sums(&paths);
    // The path crosses objects over message edges — the latency lives
    // on the wire, not inside any one participant.
    assert!(path.segments.iter().filter(|s| s.via_message).count() >= 3);

    let table = render_table(&paths);
    assert!(table.contains("A0#r1"), "{table}");
    assert!(table.contains("300"), "{table}");
}

/// Example 2 (§4.3, Fig. 4): the golden DAG shape and both rounds'
/// critical paths. The outer action's resolution costs 405 µs — raise
/// propagation dominates (205 µs) because the nested action's
/// completion report rides ahead of the exception wave — while the
/// nested action's round is a single 100 µs message hop.
#[test]
fn example2_golden_dag_and_critical_paths() {
    let graph = graph_of(workloads::example2(NetConfig::default()).0);
    assert_eq!(graph.events().len(), 122);
    assert_eq!(graph.edge_count(), 155);
    assert!(graph.is_acyclic());
    assert!(graph.unmatched_receives().is_empty());
    assert!(graph.unmatched_sends().is_empty());

    let paths = graph.critical_paths();
    assert_eq!(paths.len(), 2, "outer and nested rounds");
    assert_eq!(paths[0].span.to_string(), "A0#r1");
    assert_eq!(paths[0].total_us(), 405);
    assert_eq!(phase_us(&paths[0], Phase::RaisePropagation), 205);
    assert_eq!(phase_us(&paths[0], Phase::Election), 100);
    assert_eq!(phase_us(&paths[0], Phase::CommitAbort), 100);
    assert_eq!(paths[1].span.to_string(), "A2#r1");
    assert_eq!(paths[1].total_us(), 100);
    assert_phase_sums(&paths);
}

/// The centralized baseline's critical path exposes its latency floor:
/// the 1 ms collection window dwarfs the two 100 µs message hops
/// around it, and the window wait is charged to the election phase
/// (the coordinator standing in for an elected resolver).
#[test]
fn central_baseline_critical_path_shows_window_floor() {
    use caex::central;
    use caex_tree::{chain_tree, ExceptionId};
    use std::sync::Arc;

    let raises: Vec<_> = (1..6)
        .map(|i| (NodeId::new(i), ExceptionId::new(i)))
        .collect();
    let mut recorder = Recorder::new();
    let _ = central::run_observed(
        6,
        Arc::new(chain_tree(6)),
        NodeId::new(0),
        &raises,
        SimTime::from_millis(1),
        NetConfig::default(),
        &mut recorder,
    );
    let graph = CausalGraph::build(&recorder.events);
    assert!(graph.is_acyclic());
    assert!(graph.unmatched_receives().is_empty());
    assert!(graph.unmatched_sends().is_empty());
    let paths = graph.critical_paths();
    assert_eq!(paths.len(), 1);
    assert_eq!(paths[0].total_us(), 1_200);
    assert_eq!(phase_us(&paths[0], Phase::Election), 1_000, "window wait");
    assert_phase_sums(&paths);
}

/// The CR baseline's domino (§3.3) shows up in the critical path as a
/// long election phase: each proposal/ack exchange climbs one link of
/// the exception chain before the idealised resolver can commit.
#[test]
fn cr_baseline_critical_path_shows_domino_cost() {
    use caex::cr;
    use caex_tree::{chain_tree, interleaved_reduced_trees, ExceptionId};
    use std::sync::Arc;

    let tree = Arc::new(chain_tree(8));
    let (odd, even) = interleaved_reduced_trees(&tree, 8);
    let mut recorder = Recorder::new();
    let _ = cr::run_observed(
        2,
        tree,
        vec![odd, even],
        &[(NodeId::new(1), ExceptionId::new(8))],
        NetConfig::default(),
        &mut recorder,
    );
    let graph = CausalGraph::build(&recorder.events);
    assert!(graph.is_acyclic());
    assert!(graph.unmatched_receives().is_empty());
    assert!(graph.unmatched_sends().is_empty());
    let paths = graph.critical_paths();
    assert_eq!(paths.len(), 1);
    assert_eq!(paths[0].total_us(), 1_100);
    assert!(
        phase_us(&paths[0], Phase::Election) >= 800,
        "the domino's re-raise rounds dominate: {:?}",
        paths[0].phase_totals()
    );
    assert_phase_sums(&paths);
}

/// The thread engine runs on wall clocks, so its timings are not
/// pinnable — but the causal structure must hold: an acyclic DAG,
/// every receive matched to a send, and the phase-sum identity on
/// every round.
#[test]
fn thread_engine_graph_is_causally_sound() {
    use caex::thread_engine::ThreadRunner;
    use caex_action::{ActionRegistry, ActionScope};
    use caex_tree::{chain_tree, Exception, ExceptionId};
    use std::sync::Arc;

    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut recorder = Recorder::new();
    let _ = ThreadRunner::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(
            SimTime::from_millis(1),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run_observed(&mut recorder);
    let graph = CausalGraph::build(&recorder.events);
    assert!(graph.is_acyclic());
    assert!(
        graph.unmatched_receives().is_empty(),
        "orphans at {:?}",
        graph.unmatched_receives()
    );
    let paths = graph.critical_paths();
    assert!(!paths.is_empty(), "the raise resolves in one round");
    assert_phase_sums(&paths);
    assert!(paths[0].segments.iter().any(|s| s.via_message));
}

mod causal_properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_npq() -> impl Strategy<Value = (u32, u32, u32)> {
        (2u32..8).prop_flat_map(|n| {
            (1u32..=n).prop_flat_map(move |p| (0u32..=(n - p)).prop_map(move |q| (n, p, q)))
        })
    }

    proptest! {
        /// Over random `(N, P, Q)` workloads, the happens-before graph
        /// is acyclic, every receive pairs with a send (and vice
        /// versa — the sim delivers everything), and every round's
        /// phase attribution sums exactly to its end-to-end latency.
        #[test]
        fn dag_is_acyclic_and_receives_match((n, p, q) in arb_npq()) {
            let graph = graph_of(workloads::general(n, p, q, NetConfig::default()));
            prop_assert!(graph.is_acyclic());
            prop_assert!(graph.unmatched_receives().is_empty());
            prop_assert!(graph.unmatched_sends().is_empty());
            let paths = graph.critical_paths();
            prop_assert!(!paths.is_empty());
            for path in &paths {
                let sum: u64 = path.phase_totals().iter().map(|(_, us)| us).sum();
                prop_assert_eq!(sum, path.total_us());
            }
        }
    }
}
