//! Systematic fault-matrix sweep: every combination of drop /
//! duplication / crash / partition across seeds, asserting that the
//! protocol **never** violates a safety invariant — it may stall
//! (liveness needs the paper's reliable-multicast/membership layer,
//! §4.5), but committed resolutions always agree and always elect the
//! max raiser.

use caex::explore::{verify_report, Expect};
use caex::workloads;
use caex_net::{FaultPlan, LatencyModel, NetConfig, NodeId, SimTime};

#[derive(Clone, Copy, Debug)]
struct Cell {
    drop_p: f64,
    dup_p: f64,
    crash: bool,
    partition: bool,
}

fn plan(cell: Cell) -> FaultPlan {
    let mut plan = FaultPlan::none()
        .with_drop_probability(cell.drop_p)
        .with_duplicate_probability(cell.dup_p);
    if cell.crash {
        plan = plan.with_crash(NodeId::new(1), SimTime::from_micros(150));
    }
    if cell.partition {
        plan = plan.with_partition(
            [NodeId::new(0), NodeId::new(2)],
            SimTime::from_micros(50),
            SimTime::from_micros(400),
        );
    }
    plan
}

fn matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &drop_p in &[0.0, 0.1] {
        for &dup_p in &[0.0, 0.2] {
            for &crash in &[false, true] {
                for &partition in &[false, true] {
                    cells.push(Cell {
                        drop_p,
                        dup_p,
                        crash,
                        partition,
                    });
                }
            }
        }
    }
    cells
}

#[test]
fn safety_holds_across_the_entire_fault_matrix() {
    let mut total_runs = 0;
    let mut stalled_runs = 0;
    for cell in matrix() {
        for seed in 0..6u64 {
            let config = NetConfig::default()
                .with_seed(seed)
                .with_latency(LatencyModel::Uniform {
                    min: SimTime::from_micros(20),
                    max: SimTime::from_micros(800),
                })
                .with_faults(plan(cell));
            let report = workloads::general(5, 3, 1, config).run();
            let violations = verify_report(&report, Expect::SafetyOnly, seed);
            assert!(
                violations.is_empty(),
                "safety violated under {cell:?} seed {seed}: {violations:?}"
            );
            total_runs += 1;
            if !report.is_clean() || report.resolutions.is_empty() {
                stalled_runs += 1;
            }
        }
    }
    // Sanity on the sweep itself: faults actually bit somewhere, and
    // the benign cells actually completed.
    assert!(stalled_runs > 0, "no fault ever disturbed a run?");
    assert!(
        stalled_runs < total_runs,
        "even benign cells stalled — sweep is broken"
    );
}

#[test]
fn benign_cell_of_the_matrix_is_fully_live() {
    // The (0, 0, no-crash, no-partition) corner must be clean for every
    // seed — it is the paper's assumed regime.
    for seed in 0..12u64 {
        let config = NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(20),
                max: SimTime::from_micros(800),
            });
        let report = workloads::general(5, 3, 1, config).run();
        let violations = verify_report(&report, Expect::Clean, seed);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

#[test]
fn duplication_alone_never_hurts_liveness() {
    // Duplicates are absorbed: with only duplication in the plan the
    // run must stay fully clean.
    for seed in 0..12u64 {
        let config = NetConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_duplicate_probability(0.4));
        let report = workloads::case3(5, config).run();
        let violations = verify_report(&report, Expect::Clean, seed);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}
