//! Guards on the committed artifacts: `TABLES.md` must exist, cover
//! every experiment table, and contain no mismatches (it is the
//! checked-in output of `cargo run -p caex-bench --bin tables`).

const TABLES: &str = include_str!("../TABLES.md");

#[test]
fn tables_artifact_covers_every_experiment() {
    for table in 1..=16 {
        assert!(
            TABLES.contains(&format!("## Table {table} ")),
            "TABLES.md is missing Table {table}"
        );
    }
}

#[test]
fn tables_artifact_has_no_mismatches() {
    assert!(
        !TABLES.contains("MISMATCH"),
        "TABLES.md records a formula mismatch"
    );
    // Every formula-checked row is exact.
    assert!(TABLES.matches("exact").count() > 60);
}

#[test]
fn tables_artifact_records_the_headline_results() {
    // O(N²) vs O(N³): the CR/new ratio at N=32.
    assert!(TABLES.contains("33.5x"));
    // The Fig. 1(a) deadlock.
    assert!(TABLES.contains("DEADLOCK"));
    // Zero-overhead happy path at N=128.
    assert!(TABLES.contains("| 128 |                 0 |"));
}

#[test]
fn experiments_doc_references_every_experiment() {
    let experiments = include_str!("../EXPERIMENTS.md");
    for e in 1..=19 {
        assert!(
            experiments.contains(&format!("## E{e} ")),
            "EXPERIMENTS.md is missing E{e}"
        );
    }
}

/// Fig. 3's end-to-end behaviour is interleaving-independent. Under
/// *extreme* jitter the message total may fall slightly below the
/// §4.4 law: a suspended bystander that accepts the `Commit` before a
/// straggler `NestedCompleted` arrives treats the straggler as stale
/// and elides its ACK — harmless, because only `X`-state objects wait
/// on ACKs and they are gone by commit time. The law is exact on
/// canonical schedules (`fig3_end_to_end` and the grid tests) and an
/// upper bound here.
#[test]
fn fig3_holds_under_jitter() {
    use caex::{analysis, workloads};
    use caex_net::{LatencyModel, NetConfig, SimTime};
    let law = analysis::messages_general(4, 1, 2);
    let mut elided_somewhere = 0u32;
    for seed in 0..40u64 {
        let config = NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(10),
                max: SimTime::from_micros(3_000),
            });
        let report = workloads::fig3(config).run();
        assert!(report.is_clean(), "seed {seed}");
        let total = report.total_messages();
        assert!(total <= law, "seed {seed}: {total} > law {law}");
        // At most the Q·(N−1) straggler ACKs can be elided.
        assert!(total >= law - 6, "seed {seed}: {total} too low");
        if total < law {
            elided_somewhere += 1;
        }
        assert_eq!(report.handlers_for(report.resolutions[0].action).len(), 4);
        // Elided ACKs never break agreement.
        assert!(report
            .agreed_exception(report.resolutions[0].action)
            .is_some());
    }
    assert!(
        elided_somewhere > 0,
        "the sweep should exhibit at least one elision (else tighten it)"
    );
}
