//! Large-scale and deep-nesting stress: the protocol at sizes well
//! beyond the worked examples, still exact against the laws and still
//! invariant-clean.

use caex::explore::{verify_report, Expect};
use caex::{analysis, workloads, Scenario};
use caex_action::{ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_net::{LatencyModel, NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use std::sync::Arc;

#[test]
fn n64_all_raise_matches_the_law() {
    let report = workloads::case3(64, NetConfig::default()).run();
    assert!(report.is_clean());
    assert_eq!(report.total_messages(), analysis::messages_case3(64));
    assert_eq!(report.handlers_for(report.resolutions[0].action).len(), 64);
}

#[test]
fn n48_mixed_with_heavy_jitter_is_clean() {
    for seed in 0..4u64 {
        let config = NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(5),
                max: SimTime::from_millis(3),
            });
        let report = workloads::general(48, 16, 20, config).run();
        assert!(verify_report(&report, Expect::Clean, seed).is_empty());
        assert_eq!(
            report.total_messages(),
            analysis::messages_general(48, 16, 20),
            "seed {seed}"
        );
    }
}

/// A three-level cascade: resolution in A3 → handlers signal to A2 →
/// resolution in A2 → handlers signal to A1 → resolution in A1. The
/// signalling chain of §3.1 exercised at full depth.
#[test]
fn three_level_cascade_resolves_at_every_level() {
    let tree = Arc::new(chain_tree(8));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            (1..4).map(NodeId::new),
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let a3 = reg
        .declare(ActionScope::nested(
            "A3",
            [NodeId::new(2), NodeId::new(3)],
            Arc::clone(&tree),
            a2,
        ))
        .unwrap();

    // Handlers: A3's handlers for e1 signal e4; A2's handlers for e4
    // signal e6; A1's handlers recover.
    let signaling = |from: u32, to: u32| {
        let tree = Arc::clone(&tree);
        move || {
            let mut t = HandlerTable::recover_all(Arc::clone(&tree));
            t.on(
                ExceptionId::new(from),
                SimTime::from_micros(10),
                move |_| HandlerOutcome::Signal(Exception::new(ExceptionId::new(to))),
            );
            t
        }
    };
    let mk_a3 = signaling(1, 4);
    let mk_a2 = signaling(4, 6);

    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(3), a2)
        .enter_at(SimTime::from_micros(2), NodeId::new(2), a3)
        .enter_at(SimTime::from_micros(2), NodeId::new(3), a3)
        .handlers(NodeId::new(2), a3, mk_a3())
        .handlers(NodeId::new(3), a3, mk_a3())
        .handlers(NodeId::new(1), a2, mk_a2())
        .handlers(NodeId::new(2), a2, mk_a2())
        .handlers(NodeId::new(3), a2, mk_a2())
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(2),
            Exception::new(ExceptionId::new(1)),
        )
        .run();

    assert!(report.is_clean(), "{report}");
    assert_eq!(report.resolutions.len(), 3, "{report}");
    assert_eq!(
        report.resolution_for(a3).unwrap().resolved.id(),
        ExceptionId::new(1)
    );
    assert_eq!(
        report.resolution_for(a2).unwrap().resolved.id(),
        ExceptionId::new(4)
    );
    assert_eq!(
        report.resolution_for(a1).unwrap().resolved.id(),
        ExceptionId::new(6)
    );
    // Participation widens level by level: 2, then 3, then 4 handlers.
    assert_eq!(report.handlers_for(a3).len(), 2);
    assert_eq!(report.handlers_for(a2).len(), 3);
    assert_eq!(report.handlers_for(a1).len(), 4);
}

/// Eight-deep nesting chain at one object: abortion unwinds all of it,
/// innermost first, in one resolution.
#[test]
fn eight_deep_chain_unwinds_in_order() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let top = reg
        .declare(ActionScope::top_level(
            "top",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut parent = top;
    let mut chain = Vec::new();
    for d in 0..8 {
        parent = reg
            .declare(ActionScope::nested(
                format!("d{d}"),
                [NodeId::new(1)],
                Arc::clone(&tree),
                parent,
            ))
            .unwrap();
        chain.push(parent);
    }
    let mut scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, top);
    for (d, &a) in chain.iter().enumerate() {
        scenario = scenario.enter_at(SimTime::from_micros(1 + d as u64), NodeId::new(1), a);
    }
    let report = scenario
        .raise_at(
            SimTime::from_micros(100),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    assert!(report.is_clean());
    let aborted_chain = report.notes.iter().find_map(|n| match n {
        caex::Note::AbortedNested { chain, .. } => Some(chain.clone()),
        _ => None,
    });
    let mut expected = chain.clone();
    expected.reverse();
    assert_eq!(aborted_chain, Some(expected), "innermost-first at depth 8");
    // Depth never changes the message law: Q = 1 nested object.
    assert_eq!(report.total_messages(), analysis::messages_general(2, 1, 1));
}

#[test]
fn wide_exception_trees_resolve_at_scale() {
    // 64 participants, each raising a distinct leaf of a big balanced
    // tree: resolution escalates exactly to the root.
    let tree = Arc::new(caex_tree::balanced_tree(4, 3)); // 85 classes, 64 leaves
    let leaves = tree.leaves();
    assert!(leaves.len() >= 64);
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "wide",
            (0..64).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, a);
    for i in 0..64u32 {
        scenario = scenario.raise_at(
            SimTime::from_micros(5),
            NodeId::new(i),
            Exception::new(leaves[i as usize]),
        );
    }
    let report = scenario.run();
    assert!(report.is_clean());
    let r = report.resolution_for(a).unwrap();
    assert!(r.resolved.id().is_root());
    assert_eq!(r.raised.len(), 64);
}

/// The combined static-then-dynamic pipeline at stress scale: the
/// linter vets each family first, the seed sweep then runs every
/// schedule, and any lint-clean family that still breaks an invariant
/// is reported as a cross-check violation — a gap in the static
/// analysis itself.
#[test]
fn lint_then_explore_agrees_at_scale() {
    use caex_lint::explore::lint_then_explore;
    use caex_lint::LintConfig;

    let families: [(&str, fn(u64) -> Scenario); 3] = [
        ("case1(8)", |seed| {
            workloads::case1(8, NetConfig::default().with_seed(seed)).scenario
        }),
        ("case2(6)", |seed| {
            workloads::case2(6, NetConfig::default().with_seed(seed)).scenario
        }),
        ("general(12,4,3)", |seed| {
            workloads::general(12, 4, 3, NetConfig::default().with_seed(seed)).scenario
        }),
    ];
    for (name, build) in families {
        let linted = lint_then_explore(0..16, Expect::Clean, LintConfig::new(), build);
        assert!(
            linted.is_ok(),
            "{name}: lint or exploration failed: {:?} / {:?}",
            linted.lint,
            linted.exploration.violations
        );
        assert_eq!(linted.exploration.runs, 16, "{name}");
    }
}
