//! Figure 1 of the paper, live: the two methods for treating a nested
//! action when an exception is raised in the containing action.
//!
//! - Fig. 1(a): **wait** for the nested action to complete — simple,
//!   but resolution latency is bounded by the nested action's remaining
//!   run time, and a nested action with a belated participant never
//!   completes: deadlock.
//! - Fig. 1(b): **abort** the nested action via abortion handlers — the
//!   paper's choice; latency is bounded by handler execution time.
//!
//! Run with: `cargo run --example fig1_strategies`

use caex::{NestedStrategy, Scenario};
use caex_action::{AbortionOutcome, ActionRegistry, ActionScope, HandlerTable};
use caex_net::{NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use std::sync::Arc;

/// Runs one configuration; returns the commit time, or `None` on
/// deadlock.
fn run(strategy: NestedStrategy, nested_remaining: Option<SimTime>) -> Option<SimTime> {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let mut table = HandlerTable::recover_all(Arc::clone(&tree));
    table.on_abort(SimTime::from_micros(50), || AbortionOutcome::Aborted);
    let report = Scenario::new(Arc::new(reg))
        .with_strategy(strategy)
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .handlers(NodeId::new(1), a2, table)
        .nested_remaining(NodeId::new(1), a2, nested_remaining)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    report.resolution_for(a1).map(|r| r.at)
}

fn main() {
    println!("=== Figure 1: wait (a) vs abort (b) for nested actions ===\n");
    println!(
        "{:>24} | {:>14} | {:>14}",
        "nested remaining", "wait (1a)", "abort (1b)"
    );
    println!("{:-<24}-+-{:-<14}-+-{:-<14}", "", "", "");
    for remaining_us in [0u64, 500, 5_000, 50_000, 500_000] {
        let remaining = Some(SimTime::from_micros(remaining_us));
        let wait = run(NestedStrategy::Wait, remaining);
        let abort = run(NestedStrategy::Abort, remaining);
        println!(
            "{:>22}us | {:>14} | {:>14}",
            remaining_us,
            wait.map_or("DEADLOCK".into(), |t| t.to_string()),
            abort.map_or("DEADLOCK".into(), |t| t.to_string()),
        );
    }
    // The belated-participant case the paper uses to reject waiting:
    // "a process detecting an error is expected to enter the nested
    // action but will never be able to, so other processes in the
    // nested action would wait forever".
    let wait = run(NestedStrategy::Wait, None);
    let abort = run(NestedStrategy::Abort, None);
    println!(
        "{:>24} | {:>14} | {:>14}",
        "belated (never ends)",
        wait.map_or("DEADLOCK".into(), |t| t.to_string()),
        abort.map_or("DEADLOCK".into(), |t| t.to_string()),
    );
    assert!(
        wait.is_none(),
        "waiting must deadlock on a belated participant"
    );
    assert!(abort.is_some(), "aborting must not");
    println!(
        "\nOK: abort latency is flat; wait latency tracks the nested action \
         and deadlocks when it can never complete (the paper's argument for 1b)."
    );
}
