//! Walkthrough of the `caex-obs` observability stack on Example 2 of
//! the paper (§4.3, Fig. 4): four objects, two concurrent exceptions,
//! nested actions aborted with a signalled abortion exception.
//!
//! Run with: `cargo run --example observability`
//!
//! The run is observed by four observers at once:
//! - a [`MetricsRegistry`] checking the §4.4 message law live and
//!   printing Prometheus text exposition,
//! - an invariant [`Watchdog`],
//! - a [`ChromeTraceExporter`] whose output loads in Perfetto
//!   (ui.perfetto.dev) or `chrome://tracing`,
//! - a [`JsonlExporter`] streaming one JSON object per event.

use caex::{analysis, workloads};
use caex_net::NetConfig;
use caex_obs::{ChromeTraceExporter, JsonlExporter, MetricsRegistry, Tee, Watchdog};

fn main() {
    let (workload, _ids) = workloads::example2(NetConfig::default());

    let mut metrics = MetricsRegistry::new().with_law(analysis::messages_general);
    let mut watchdog = Watchdog::new();
    let mut chrome = ChromeTraceExporter::new();
    let mut jsonl = JsonlExporter::new();

    let report = {
        let mut tee = Tee::new()
            .with(&mut metrics)
            .with(&mut watchdog)
            .with(&mut chrome)
            .with(&mut jsonl);
        workload.scenario.run_observed(&mut tee)
    };

    println!("=== run outcome ===");
    println!(
        "clean: {}, total protocol messages: {}",
        report.is_clean(),
        report.total_messages()
    );

    println!("\n=== resolution rounds (correlation id = action#round) ===");
    for r in metrics.resolutions() {
        println!(
            "A{}#r{}: N={} P={} Q={} resolved={} latency={}us messages={} law={:?}",
            r.action.index(),
            r.round,
            r.n,
            r.p,
            r.q,
            r.resolved.as_deref().unwrap_or("?"),
            r.latency_us,
            r.messages,
            r.law_holds,
        );
    }

    println!("\n=== watchdog ===");
    if watchdog.is_clean() {
        println!("clean ({} events checked against the §4.2 invariants)", jsonl.len());
    } else {
        for v in watchdog.violations() {
            println!("VIOLATION at {}us on {}: {}", v.at_us, v.object, v.message);
        }
    }

    println!("\n=== first 5 JSONL events ===");
    for line in jsonl.contents().lines().take(5) {
        println!("{line}");
    }

    println!("\n=== Prometheus exposition (excerpt) ===");
    for line in metrics.prometheus().lines().take(14) {
        println!("{line}");
    }

    let trace = chrome.to_json();
    let path = std::env::temp_dir().join("caex_example2_trace.json");
    std::fs::write(&path, &trace).expect("trace written");
    println!("\n=== Chrome trace ===");
    println!(
        "{} span tracks, {} bytes written to {}",
        chrome.tracks().len(),
        trace.len(),
        path.display()
    );
    println!("open ui.perfetto.dev and drop the file in to see one track per object:");
    println!("action spans nest abortion and handler spans, instants mark raises/commits");
}
