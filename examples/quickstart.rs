//! Quickstart: Example 1 of the paper (§4.3).
//!
//! Three objects `O1 O2 O3` cooperate in a CA action `A1`. `O1` and
//! `O2` detect errors concurrently and raise `E1` and `E2`. The
//! resolution protocol runs; because `name(O2) > name(O1)`, `O2` is
//! elected resolver, resolves `{E1, E2}` against the action's exception
//! tree, and commits — after which all three objects start the handler
//! for the same resolved exception.
//!
//! Run with: `cargo run --example quickstart`

use caex::workloads;
use caex_net::{NetConfig, NodeId};

fn main() {
    // Build the paper's Example 1 with full tracing enabled.
    let (workload, ids) = workloads::example1(NetConfig::default().with_trace(true));
    let report = workload.run();

    println!("=== Example 1 (paper §4.3) ===\n");
    println!("Message sequence chart (O1..O3 are columns 2..4; column 1 is unused):");
    print!("{}", report.trace.render_sequence_chart(4));

    let resolution = report
        .resolution_for(ids.a1)
        .expect("a resolution must commit");
    println!("\nResolution:");
    println!(
        "  raised   : {:?}",
        resolution
            .raised
            .iter()
            .map(|(o, e)| format!("{o} raised {}", e.id()))
            .collect::<Vec<_>>()
    );
    println!(
        "  resolver : {} (the biggest name among raisers)",
        resolution.resolver
    );
    println!("  resolved : {}", resolution.resolved.id());
    assert_eq!(resolution.resolver, NodeId::new(2));

    println!("\nHandlers started:");
    for h in report.handlers_for(ids.a1) {
        println!("  {} handles {} at {}", h.object, h.exc.id(), h.at);
    }
    let agreed = report.agreed_exception(ids.a1).expect("handlers ran");
    println!(
        "\nAll {} objects agreed on {}.",
        report.handlers_for(ids.a1).len(),
        agreed.id()
    );

    println!("\nMessage accounting (paper §4.4, P=2 raisers, Q=0 nested, N=3):");
    println!("  exception        : {}", report.messages_of("exception"));
    println!("  ack              : {}", report.messages_of("ack"));
    println!("  commit           : {}", report.messages_of("commit"));
    println!("  total            : {}", report.total_messages());
    println!(
        "  formula (N-1)(2P+3Q+1) = {}",
        caex::analysis::messages_general(3, 2, 0)
    );
    assert_eq!(
        report.total_messages(),
        caex::analysis::messages_general(3, 2, 0)
    );
    println!("\nOK: executed message count matches the paper's formula.");
}
