//! External atomic objects under forward and backward recovery —
//! Fig. 2(a)/(b) of the paper, on a funds-transfer workload.
//!
//! Two separately designed activities *compete* for shared account
//! objects (the paper's competitive concurrency) while the objects
//! guarantee their own integrity through transactions. The example
//! shows the three handler-visible functions `start`, `abort`, `commit`:
//!
//! - **Forward recovery** (Fig. 2a): an exception handler repairs the
//!   accounts into a *new valid state* instead of merely undoing —
//!   aborting the damaged attempt, starting a fresh transaction and
//!   committing the repaired balances.
//! - **Backward recovery** (Fig. 2b): a conversation checkpoints the
//!   clerks' states, runs the primary transfer, fails its acceptance
//!   test, rolls everyone back and passes with the alternate.
//!
//! Run with: `cargo run --example banking`

use caex_action::atomic::Store;
use caex_action::conversation::Conversation;
use caex_action::ActionError;

fn main() {
    forward_recovery();
    backward_recovery();
    competing_transfers();
}

/// Fig. 2(a): the handler puts the atomic objects into a new valid
/// state by explicit abort / start / commit.
fn forward_recovery() {
    println!("=== Forward recovery (Fig. 2a) ===");
    let mut store: Store<i64> = Store::new();
    let checking = store.define("checking", 1_000);
    let savings = store.define("savings", 5_000);

    // The CA action's attempt: move 700 from savings to checking.
    let attempt = store.begin_top_level();
    let s = store.read(attempt, savings).unwrap();
    store.write(attempt, savings, s - 700).unwrap();
    // Error detected mid-way: the checking update would overdraw a
    // business rule (say, a daily inflow cap of 500). An exception is
    // raised; the handler performs *forward* recovery: it knows a valid
    // alternative (split the transfer across both limits).
    println!(
        "  attempt damaged mid-transfer: savings={} checking={}",
        store.read(attempt, savings).unwrap(),
        store.read(attempt, checking).unwrap()
    );

    store.abort(attempt).unwrap(); // handler: abort the damaged attempt
    let repair = store.begin_top_level(); // handler: start
    let s = store.read(repair, savings).unwrap();
    let c = store.read(repair, checking).unwrap();
    store.write(repair, savings, s - 500).unwrap();
    store.write(repair, checking, c + 500).unwrap();
    store.commit(repair).unwrap(); // handler: commit

    println!(
        "  after forward recovery: savings={} checking={} (new valid state)",
        store.committed(savings),
        store.committed(checking)
    );
    assert_eq!(store.committed(savings), 4_500);
    assert_eq!(store.committed(checking), 1_500);
}

/// Fig. 2(b): backward recovery through a conversation — coordinated
/// checkpoints, acceptance test, rollback, alternate.
fn backward_recovery() {
    println!("\n=== Backward recovery (Fig. 2b) ===");
    // Two clerks jointly process a batch; state = processed totals.
    let mut conv = Conversation::new(vec![0_i64, 0]);
    conv.attempt(|clerks| {
        // Primary algorithm: fast path, but it double-counts.
        clerks[0] = 840;
        clerks[1] = 840;
    });
    conv.attempt(|clerks| {
        // Alternate: slower reconciliation, correct.
        clerks[0] = 420;
        clerks[1] = 420;
    });
    let report = conv
        .run(|clerks| clerks.iter().sum::<i64>() == 840)
        .expect("an alternate passes");
    println!(
        "  attempt {} accepted after {} rollback(s): totals {:?}",
        report.accepted_attempt, report.rollbacks, report.states
    );
    assert_eq!(report.accepted_attempt, 1);
}

/// Competitive concurrency: two activities contend for the same atomic
/// object; the loser observes a lock conflict, which a CA action would
/// surface as a raised exception, and retries after the winner commits.
fn competing_transfers() {
    println!("\n=== Competing activities on shared atomic objects ===");
    let mut store: Store<i64> = Store::new();
    let escrow = store.define("escrow", 100);

    let alice = store.begin_top_level();
    let bob = store.begin_top_level();

    let a = store.read(alice, escrow).unwrap();
    store.write(alice, escrow, a + 10).unwrap();

    match store.read(bob, escrow) {
        Err(ActionError::LockConflict { object }) => {
            println!("  bob conflicts on `{object}` -> raises an exception in his action");
        }
        other => panic!("expected a lock conflict, got {other:?}"),
    }

    store.commit(alice).unwrap();
    // Bob's retry (a new attempt of his CA action) now proceeds.
    let b = store.read(bob, escrow).unwrap();
    store.write(bob, escrow, b - 30).unwrap();
    store.commit(bob).unwrap();

    println!("  final escrow = {}", store.committed(escrow));
    assert_eq!(store.committed(escrow), 80);
    println!("\nOK: atomicity, isolation and handler-driven recovery all hold.");
}
