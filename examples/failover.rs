//! Resolver failover: Example 2's elected resolver crashes
//! mid-resolution and the survivors finish the job.
//!
//! O2 sits at the centre of the paper's Example 2 — it raises E2 from
//! the innermost nested action, its abortion handler signals E3, and
//! it is the max raiser, so §4.2 elects it to resolve A1. This run
//! kills O2 exactly between its election and its commit. The failure
//! detector reports the desertion, the surviving raiser O1 inherits
//! the election, and — because a deserter's raises are retained as
//! *ghost* entries — O1 resolves over the full raised set, committing
//! the same exception the dead resolver would have.
//!
//! Run with: `cargo run --example failover`

use caex::workloads;
use caex::Note;
use caex_net::{FaultPlan, LatencyModel, NetConfig, NodeId, SimTime};

fn main() {
    let victim = NodeId::new(2);
    // With 100µs links the abort cascade and ACK collection put O2's
    // commit at t=315µs; crashing at 250µs lands squarely between its
    // election and its commit.
    let crash_at = SimTime::from_micros(250);
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_crash(victim, crash_at));

    let (workload, ids) = workloads::example2(config);
    let report = workload.run();

    println!("=== Example 2 with the elected resolver ({victim}) crashed at {crash_at} ===\n");

    for note in &report.notes {
        match note {
            Note::Deserted { object, peer } => {
                println!("t+detect  {object} suspects {peer} (failure detector)");
            }
            Note::ResolverSuspected { object, action, peer } => {
                println!("          {object}: elected resolver {peer} of {action} is gone");
            }
            Note::ResolverReelected { action, resolver, replaced } => {
                println!("          {resolver} takes over {action}'s resolution from {replaced}");
            }
            Note::ResolutionCommitted { action, resolver, resolved, raised } => {
                println!(
                    "          {resolver} commits {} for {action} over {} raised exception(s)",
                    resolved.id(),
                    raised.len()
                );
            }
            _ => {}
        }
    }

    let resolution = report
        .resolution_for(ids.a1)
        .expect("failover must still resolve A1");
    assert_ne!(
        resolution.resolver, victim,
        "a crashed resolver cannot commit"
    );
    assert!(
        resolution.raised.iter().any(|(o, _)| *o == victim),
        "the deserter's raise must survive as a ghost entry"
    );
    let handlers = report.handlers_for(ids.a1);
    println!(
        "\nresolved: {} by {} — {} survivor handler(s), {} messages",
        resolution.resolved.id(),
        resolution.resolver,
        handlers.len(),
        report.total_messages()
    );
    assert!(
        handlers.iter().all(|h| h.object != victim),
        "the victim cannot run a handler"
    );

    // Contrast: the paper's literal machine (failover off) stalls.
    let legacy_config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_crash(victim, crash_at));
    let (legacy, _) = workloads::example2(legacy_config);
    let legacy_report = legacy.with_failover(false).run();
    println!(
        "without failover: {} resolution(s), {} object(s) stuck mid-resolution",
        legacy_report.resolutions.len(),
        legacy_report.deadlocked.len()
    );
    assert!(!legacy_report.is_clean(), "the legacy machine must stall");

    println!("\nOK: survivors re-elected and committed; the legacy machine stalls.");
}
