//! Example 2 of the paper (§4.3, Fig. 4): nested CA actions, a belated
//! participant, abortion handlers that signal, and the elimination of a
//! nested resolution by a containing one.
//!
//! Structure: `A1 = {O1,O2,O3,O4} ⊃ A2 = {O2,O3,O4} ⊃ A3 = {O2,O3}`,
//! where `O3` is *belated* for `A3` (it was supposed to enter but never
//! does). `O1` raises `E1` in `A1` while `O2` concurrently raises `E2`
//! inside `A3`. The protocol must:
//!
//! 1. deliver `O2`'s `Exception(A3)` nowhere (O3 is belated — buffered,
//!    then cleaned up when `A3` is aborted);
//! 2. have `O2`, `O3`, `O4` announce `HaveNested` and abort their
//!    nested actions innermost-first (`A3` before `A2`);
//! 3. honour the exception `E3` signalled by `O2`'s abortion handler of
//!    `A2` (the action *directly* nested in `A1`);
//! 4. eliminate the resolution `O2` started in `A3` (E2 is forgotten);
//! 5. elect `O2` (max raiser) to resolve `{E1, E3}` in `A1`.
//!
//! Run with: `cargo run --example nested_recovery`

use caex::{workloads, Note};
use caex_net::{NetConfig, NodeId};

fn main() {
    let (workload, ids) = workloads::example2(NetConfig::default().with_trace(true));
    let report = workload.run();

    println!("=== Example 2 (paper §4.3, Fig. 4) ===\n");
    println!("Full protocol trace:");
    print!("{}", report.trace.render());

    println!("\nKey protocol moments:");
    for note in &report.notes {
        match note {
            Note::Raised {
                object,
                action,
                exc,
            } => {
                println!("  {object} raised {} in {action}", exc.id());
            }
            Note::AbortedNested { object, chain, .. } => {
                println!(
                    "  {object} aborted nested actions {:?} (innermost first)",
                    chain.iter().map(ToString::to_string).collect::<Vec<_>>()
                );
            }
            Note::CleanedNestedMessages { object, action } => {
                println!("  {object} cleaned up buffered messages of aborted {action}");
            }
            Note::ResolutionCommitted {
                resolver,
                resolved,
                raised,
                ..
            } => {
                println!(
                    "  {resolver} resolved {{{}}} -> {}",
                    raised
                        .iter()
                        .map(|(o, e)| format!("{o}:{}", e.id()))
                        .collect::<Vec<_>>()
                        .join(", "),
                    resolved.id()
                );
            }
            _ => {}
        }
    }

    println!("\nPer-object timelines:");
    print!("{}", caex::timeline::render_timelines(&report));

    let r = report.resolution_for(ids.a1).expect("resolution in A1");
    assert_eq!(r.resolver, NodeId::new(2), "O2 resolves (biggest raiser)");
    assert!(
        r.raised.iter().all(|(_, e)| e.id() != ids.e2),
        "E2 must be eliminated with the nested resolution"
    );
    assert!(report.is_clean());

    println!("\nAll four objects handled {}:", r.resolved.id());
    for h in report.handlers_for(ids.a1) {
        println!("  {} at {}", h.object, h.at);
    }
    println!(
        "\nOK: nested resolution eliminated, abortion signal honoured, {} messages total.",
        report.total_messages()
    );
}
