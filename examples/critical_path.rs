//! Critical-path latency attribution on Example 2 (§4.3, Fig. 4) —
//! where does the resolution's end-to-end latency actually go?
//!
//! Runs the worked example twice: once on the default uniform network,
//! and once with one slow participant (every link touching O4 carries
//! 2 ms instead of 100 µs). The happens-before analysis pins the
//! difference: on the slow run the critical path routes through O4's
//! links and the raise-propagation/election phases absorb the extra
//! milliseconds, while the fast run's phases stay balanced. This is
//! the time-domain companion to the §4.4 message-count law: the law
//! prices a resolution in messages, the critical path prices the same
//! protocol in time and names the hop you would have to speed up.
//!
//! Run with: `cargo run --example critical_path`

use caex::workloads;
use caex_net::{LatencyModel, NetConfig, NodeId, SimTime};
use caex_obs::causal::{render_table, CausalGraph};
use caex_obs::Recorder;

/// Runs Example 2 under `config` and returns its happens-before DAG.
fn run(config: NetConfig) -> CausalGraph {
    let (workload, _ids) = workloads::example2(config);
    let mut recorder = Recorder::new();
    let _ = workload.scenario.run_observed(&mut recorder);
    CausalGraph::build(&recorder.events)
}

fn main() {
    let fast = run(NetConfig::default());

    // One slow participant: every directed link touching O4.
    let slow_link = LatencyModel::Constant(SimTime::from_millis(2));
    let mut config = NetConfig::default();
    for other in 1..=3u32 {
        config = config
            .with_link_latency(NodeId::new(4), NodeId::new(other), slow_link)
            .with_link_latency(NodeId::new(other), NodeId::new(4), slow_link);
    }
    let slow = run(config);

    println!("Example 2, uniform 100 us links:\n");
    println!("{}", render_table(&fast.critical_paths()));
    println!("Example 2, O4 behind 2 ms links:\n");
    println!("{}", render_table(&slow.critical_paths()));

    let fast_outer = &fast.critical_paths()[0];
    let slow_outer = &slow.critical_paths()[0];
    println!(
        "outer-round latency: {} us -> {} us (+{} us, all attributable to O4's links)",
        fast_outer.total_us(),
        slow_outer.total_us(),
        slow_outer.total_us() - fast_outer.total_us()
    );
    let via_o4 = slow_outer
        .segments
        .iter()
        .filter(|s| s.via_message && s.object == NodeId::new(4))
        .count();
    println!("critical-path message hops landing at O4: {via_o4}");
    assert!(
        slow_outer.total_us() >= fast_outer.total_us() + 1_900,
        "the slow participant must dominate the critical path"
    );
}
