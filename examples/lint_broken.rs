//! Static analysis demo: lint a deliberately broken action declaration
//! and print the report, then show the same checks passing on a
//! well-formed declaration.
//!
//! The broken declaration violates four static obligations at once:
//!
//! - two declared raisables only meet at the universal exception
//!   (`CAEX001` — §4.2's resolution would lose all diagnosis);
//! - a declared raisable is not a class of the tree (`CAEX009`);
//! - a nested action smuggles in a stranger participant (`CAEX007` —
//!   §3.1 requires nested participants to be a subset);
//! - an explicit handler table covers only one class (`CAEX006` —
//!   §3.3 handler totality) and has no abortion handler (`CAEX008`).
//!
//! Run with: `cargo run --example lint_broken`

use caex_action::{ActionId, ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_lint::Linter;
use caex_net::{NodeId, SimTime};
use caex_tree::{ExceptionId, TreeBuilder};
use std::sync::Arc;

fn main() {
    let linter = Linter::new();

    // A forked tree: io and memory exceptions share no ancestor but
    // the universal exception.
    let mut b = TreeBuilder::new("universal_exception");
    let io = b.child_of_root("io_exception").expect("fresh name");
    let mem = b.child_of_root("memory_exception").expect("fresh name");
    let tree = Arc::new(b.build().expect("valid tree"));

    println!("=== Broken declaration ===\n");
    let scopes = vec![
        (
            ActionId::new(0),
            ActionScope::top_level("transfer", (0..3).map(NodeId::new), Arc::clone(&tree))
                // e42 is not in the tree; io and mem only meet at root.
                .with_declared_exceptions([io, mem, ExceptionId::new(42)]),
        ),
        (
            ActionId::new(1),
            // O7 is a stranger to the parent action.
            ActionScope::nested(
                "audit",
                [NodeId::new(1), NodeId::new(7)],
                Arc::clone(&tree),
                ActionId::new(0),
            ),
        ),
    ];
    let mut report = linter.lint_scopes(&scopes);

    // A handler table that covers only `io`, bound to a participant of
    // a nested action, with no abortion handler.
    let mut reg = ActionRegistry::new();
    let top = reg
        .declare(ActionScope::top_level(
            "transfer",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    let audit = reg
        .declare(ActionScope::nested(
            "audit",
            [NodeId::new(1)],
            Arc::clone(&tree),
            top,
        ))
        .expect("valid");
    let mut partial = HandlerTable::new(Arc::clone(&tree));
    partial.on(io, SimTime::ZERO, |_| HandlerOutcome::Recovered);
    report.merge(linter.lint_handlers(&reg, [(NodeId::new(1), audit, &partial)]));

    print!("{}", report.render());
    assert!(report.has_denials(), "the broken fixture must fail");

    println!("\n=== Well-formed declaration ===\n");
    let mut good = ActionRegistry::new();
    let top = good
        .declare(
            ActionScope::top_level("transfer", (0..3).map(NodeId::new), Arc::clone(&tree))
                // Declaring the shared parent too gives every pair a
                // non-root meeting point. Here that parent is the root
                // itself, so declare just one subtree as raisable.
                .with_declared_exceptions([io]),
        )
        .expect("valid");
    let total = HandlerTable::recover_all(Arc::clone(&tree));
    let mut clean = linter.lint_registry(&good);
    clean.merge(linter.lint_handlers(&good, [(NodeId::new(0), top, &total)]));
    print!("{}", clean.render());
    assert!(!clean.has_denials(), "the well-formed fixture must pass");
}
