//! The same resolution protocol on real OS threads.
//!
//! Everything else in this repository runs on the deterministic
//! discrete-event simulator (the measurement instrument). This example
//! runs the identical [`caex::Participant`] state machine on one OS
//! thread per object over crossbeam channels, showing the algorithm is
//! an executable distributed protocol: five objects, three concurrent
//! exceptions, one agreed outcome.
//!
//! Run with: `cargo run --example threads`

use caex::thread_engine::ThreadRunner;
use caex_action::{ActionRegistry, ActionScope};
use caex_net::{NodeId, SimTime};
use caex_tree::{balanced_tree, Exception};
use std::sync::Arc;

fn main() {
    let tree = Arc::new(balanced_tree(2, 3)); // 15 exception classes
    let leaves = tree.leaves();
    let mut registry = ActionRegistry::new();
    let action = registry
        .declare(ActionScope::top_level(
            "threaded-action",
            (0..5).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();

    let report = ThreadRunner::new(Arc::new(registry))
        .enter_all_at(SimTime::ZERO, action)
        .raise_at(
            SimTime::from_millis(2),
            NodeId::new(0),
            Exception::new(leaves[0]).with_origin("thread-0"),
        )
        .raise_at(
            SimTime::from_millis(2),
            NodeId::new(2),
            Exception::new(leaves[1]).with_origin("thread-2"),
        )
        .raise_at(
            SimTime::from_millis(2),
            NodeId::new(4),
            Exception::new(leaves[3]).with_origin("thread-4"),
        )
        .run();

    println!("=== Threaded run over crossbeam channels ===");
    let handled = report.handled_exceptions(action);
    for (object, exc) in &handled {
        println!("  {object} started handler for {}", exc.id());
    }
    let agreed = report
        .agreed_exception(action)
        .expect("resolution must commit");
    assert_eq!(handled.len(), 5, "all five objects must handle");
    println!(
        "\nAgreement across threads on {} ({} protocol messages).",
        agreed.id(),
        report.stats.sent_total()
    );
    // Coverage: the agreed exception dominates every raised leaf.
    for raised in [leaves[0], leaves[1], leaves[3]] {
        assert!(tree.is_ancestor(agreed.id(), raised).unwrap());
    }
    println!("OK: coverage and agreement hold outside the simulator too.");
}
