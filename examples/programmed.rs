//! The Result-based programming model: CA actions driven by ordinary
//! Rust fallible code instead of scripted raise events.
//!
//! Rust has no exceptions; the paper's model maps onto `Result`. Each
//! object's work inside the action is a program of `work`/`check`
//! steps; a `check` returning `Err(exception)` raises at exactly the
//! virtual time the step runs, and the full resolution machinery takes
//! over. This example runs a three-stage data pipeline where two stages
//! fail concurrently with different (but related) errors.
//!
//! Run with: `cargo run --example programmed`

use caex::program::ActionProgram;
use caex_action::{ActionRegistry, ActionScope};
use caex_net::{NodeId, SimTime};
use caex_tree::{Exception, TreeBuilder};
use std::sync::Arc;

fn main() {
    // Error hierarchy of the pipeline.
    let mut b = TreeBuilder::new("pipeline_error");
    let data_error = b.child_of_root("data_error").unwrap();
    let parse_error = b.child("parse_error", data_error).unwrap();
    let range_error = b.child("range_error", data_error).unwrap();
    let _io_error = b.child_of_root("io_error").unwrap();
    let tree = Arc::new(b.build().unwrap());

    let reader = NodeId::new(0);
    let transformer = NodeId::new(1);
    let writer = NodeId::new(2);

    let mut registry = ActionRegistry::new();
    let batch = registry
        .declare(ActionScope::top_level(
            "process-batch",
            [reader, transformer, writer],
            Arc::clone(&tree),
        ))
        .unwrap();

    // Plain fallible Rust functions — the kind of code a user already
    // has. Both fail on the same corrupted record.
    fn parse_record(raw: &str) -> Result<i64, String> {
        raw.trim().parse::<i64>().map_err(|e| e.to_string())
    }
    fn validate_range(v: i64) -> Result<(), String> {
        if (0..=100).contains(&v) {
            Ok(())
        } else {
            Err(format!("{v} out of range"))
        }
    }

    let corrupted = "9x9"; // the poisoned input record
    let oversized = 4_096; // and an out-of-range one

    let mut program = ActionProgram::new(Arc::new(registry), batch);
    program
        .object(reader)
        .work(SimTime::from_micros(120))
        .check(move || {
            parse_record(corrupted).map(|_| ()).map_err(|detail| {
                Exception::new(parse_error)
                    .with_origin("reader")
                    .with_detail(detail)
            })
        })
        .complete();
    program
        .object(transformer)
        .work(SimTime::from_micros(130))
        .check(move || {
            validate_range(oversized).map_err(|detail| {
                Exception::new(range_error)
                    .with_origin("transformer")
                    .with_detail(detail)
            })
        })
        .complete();
    program
        .object(writer)
        .work(SimTime::from_micros(500))
        .complete();

    let report = program.run();

    println!("=== Result-based CA action ===\n");
    let r = report.resolution_for(batch).expect("resolution");
    println!(
        "concurrent failures: {}",
        r.raised
            .iter()
            .map(|(o, e)| format!(
                "{o}:{} ({})",
                tree.name(e.id()).unwrap(),
                e.detail().unwrap_or("-")
            ))
            .collect::<Vec<_>>()
            .join(" + ")
    );
    println!(
        "resolved by {} to the covering class: {}",
        r.resolver,
        tree.name(r.resolved.id()).unwrap()
    );
    assert_eq!(r.resolved.id(), data_error);
    assert_eq!(report.handlers_for(batch).len(), 3);
    assert!(report.is_clean());
    println!(
        "\nOK: two Err(..) values from ordinary Rust code became one \
         cooperative recovery from `data_error` in all 3 objects."
    );
}
