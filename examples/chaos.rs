//! Chaos run: the resolution protocol under a hostile network —
//! congestion windows, a transient partition and duplicated messages,
//! all at once — visualised as a sequence chart.
//!
//! The algorithm assumes reliable FIFO channels (§4.2). Slowdowns and
//! duplicates stay within that assumption (just a bad network), so the
//! protocol must still resolve correctly; the partition breaks the
//! assumption for a window and the protocol must *stall safely* until
//! it heals — here the raise happens after healing, so the run
//! completes.
//!
//! Run with: `cargo run --example chaos`

use caex::explore::{verify_report, Expect};
use caex::workloads;
use caex_net::{FaultPlan, LatencyModel, NetConfig, NodeId, SimTime};

fn main() {
    let faults = FaultPlan::none()
        // Congestion: the first 300µs run 3x slow.
        .with_slowdown(3, SimTime::ZERO, SimTime::from_micros(300))
        // A partition covers the network until shortly before the
        // exceptions fire.
        .with_partition(
            [NodeId::new(0), NodeId::new(1)],
            SimTime::ZERO,
            SimTime::from_micros(1),
        )
        // And 20% of messages are delivered twice.
        .with_duplicate_probability(0.2);

    let config = NetConfig::default()
        .with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(60),
            max: SimTime::from_micros(220),
        })
        .with_seed(1996)
        .with_faults(faults)
        .with_trace(true);

    let report = workloads::general(5, 2, 1, config).run();

    println!("=== Chaos run: N=5, P=2 raisers, Q=1 nested ===\n");
    print!("{}", report.trace.render_sequence_chart(5));

    println!(
        "\nduplicated deliveries absorbed as stale: {}",
        report.stale_messages()
    );
    println!(
        "resolution: {} resolved {} exception(s) at {}",
        report.resolutions[0].resolver,
        report.resolutions[0].raised.len(),
        report.resolutions[0].at
    );

    let violations = verify_report(&report, Expect::Clean, 1996);
    assert!(violations.is_empty(), "{violations:?}");
    println!(
        "\nOK: all invariants hold under congestion + duplication \
         ({} messages, {} deliveries).",
        report.stats.sent_total(),
        report.stats.delivered_total()
    );
}
