//! The aircraft-engine scenario the paper uses to motivate exception
//! trees (§2.2, §3.2).
//!
//! A flight-control CA action coordinates four objects: two engine
//! controllers, a fuel manager and an autopilot. When *both* engine
//! controllers detect failures concurrently — `left_engine_exception`
//! and `right_engine_exception` — neither handler alone is the right
//! response: the two errors are "symptoms of a different, more serious
//! fault". The exception tree resolves them to
//! `emergency_engine_loss_exception`, whose handler every object runs.
//!
//! ```text
//! universal_exception
//! └── emergency_engine_loss_exception
//!     ├── left_engine_exception
//!     └── right_engine_exception
//! ```
//!
//! Run with: `cargo run --example aircraft`

use caex::Scenario;
use caex_action::{ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_net::{LatencyModel, NetConfig, NodeId, SimTime};
use caex_tree::{aircraft_tree, Exception, Severity};
use std::sync::Arc;

fn main() {
    let tree = Arc::new(aircraft_tree());
    let left = tree.id_of("left_engine_exception").unwrap();
    let right = tree.id_of("right_engine_exception").unwrap();
    let emergency = tree.id_of("emergency_engine_loss_exception").unwrap();

    let left_ctl = NodeId::new(0);
    let right_ctl = NodeId::new(1);
    let fuel = NodeId::new(2);
    let autopilot = NodeId::new(3);

    let mut registry = ActionRegistry::new();
    let flight = registry
        .declare(ActionScope::top_level(
            "flight-control",
            [left_ctl, right_ctl, fuel, autopilot],
            Arc::clone(&tree),
        ))
        .unwrap();

    // Each object's handlers: single-engine handlers trim and recover;
    // the emergency handler runs the glide procedure (more costly, but
    // still cooperative recovery).
    let table_for = |name: &'static str| {
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        t.on(left, SimTime::from_micros(200), move |_| {
            println!("  [{name}] trim for left-engine-out, recovered");
            HandlerOutcome::Recovered
        });
        t.on(right, SimTime::from_micros(200), move |_| {
            println!("  [{name}] trim for right-engine-out, recovered");
            HandlerOutcome::Recovered
        });
        t.on(emergency, SimTime::from_micros(900), move |_| {
            println!("  [{name}] BOTH engines lost: glide procedure engaged");
            HandlerOutcome::Recovered
        });
        t
    };

    // A realistic avionics bus: 150–450µs jitter.
    let config = NetConfig::default()
        .with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(150),
            max: SimTime::from_micros(450),
        })
        .with_seed(2026);

    let report = Scenario::new(Arc::new(registry))
        .with_config(config)
        .enter_all_at(SimTime::ZERO, flight)
        .handlers(left_ctl, flight, table_for("left-ctl"))
        .handlers(right_ctl, flight, table_for("right-ctl"))
        .handlers(fuel, flight, table_for("fuel"))
        .handlers(autopilot, flight, table_for("autopilot"))
        // Bird strike: both engines flame out within 40µs of each other.
        .raise_at(
            SimTime::from_micros(100),
            left_ctl,
            Exception::new(left)
                .with_severity(Severity::Serious)
                .with_origin("left engine N1 sensor")
                .with_detail("flameout detected"),
        )
        .raise_at(
            SimTime::from_micros(140),
            right_ctl,
            Exception::new(right)
                .with_severity(Severity::Serious)
                .with_origin("right engine N1 sensor")
                .with_detail("flameout detected"),
        )
        .run();

    println!("\n=== Aircraft engine-loss resolution ===");
    let r = report.resolution_for(flight).expect("resolution");
    println!(
        "raised: {}",
        r.raised
            .iter()
            .map(|(o, e)| format!("{o}:{}", tree.name(e.id()).unwrap()))
            .collect::<Vec<_>>()
            .join(" + ")
    );
    println!(
        "resolved by {}: {} (the covering exception)",
        r.resolver,
        tree.name(r.resolved.id()).unwrap()
    );
    assert_eq!(r.resolved.id(), emergency);
    assert_eq!(report.handlers_for(flight).len(), 4);
    assert!(report.is_clean());
    println!(
        "\nOK: concurrent single-engine exceptions resolved to the emergency \
         class in {} with {} messages.",
        report.finished_at,
        report.total_messages()
    );
}
