//! Exploring the algorithm outside its assumed fault model.
//!
//! The paper's algorithm assumes reliable FIFO channels (§4.2); its
//! fault model (§2) nevertheless admits node crashes and transient
//! network errors, to be masked by lower layers (§4.5 points at group
//! communication). This example injects faults the algorithm does *not*
//! mask, to show how it degrades — and why the paper demands a reliable
//! multicast underneath:
//!
//! 1. message loss → the protocol stalls (a raiser waits forever for a
//!    lost ACK), detected here as quiescent deadlock;
//! 2. a crashed *bystander* → same stall: resolution needs every
//!    participant of the action;
//! 3. with faults off → clean resolution on the same scenario and seed.
//!
//! Run with: `cargo run --example fault_injection`

use caex::workloads;
use caex_net::{FaultPlan, NetConfig, NodeId, SimTime};

fn main() {
    println!("=== 1. Reliable network (the assumed regime) ===");
    let report = workloads::case3(5, NetConfig::default().with_seed(7)).run();
    println!(
        "  resolved {} with {} messages, clean={}",
        report.resolutions[0].resolved.id(),
        report.total_messages(),
        report.is_clean()
    );
    assert!(report.is_clean());

    println!("\n=== 2. 20% message loss ===");
    let lossy = NetConfig::default()
        .with_seed(7)
        .with_faults(FaultPlan::none().with_drop_probability(0.2));
    let report = workloads::case3(5, lossy).run();
    println!(
        "  dropped {} of {} messages; resolutions committed: {}; stuck objects: {:?}",
        report.stats.dropped_total(),
        report.stats.sent_total(),
        report.resolutions.len(),
        report.deadlocked
    );
    if !report.is_clean() {
        println!(
            "  -> the protocol stalls without reliable delivery, as the paper assumes it would"
        );
    }

    println!("\n=== 3. A crashed bystander ===");
    let crashed = NetConfig::default()
        .with_seed(7)
        .with_faults(FaultPlan::none().with_crash(NodeId::new(0), SimTime::from_micros(50)));
    let report = workloads::case1(5, crashed).run();
    println!(
        "  O0 crashed at t=50us; resolutions: {}; stuck objects: {:?}",
        report.resolutions.len(),
        report.deadlocked
    );
    assert!(
        !report.is_clean(),
        "a crash the membership layer does not exclude must stall resolution"
    );
    println!(
        "  -> §4.5: a group membership service must exclude crashed members\n\
         \x20    (or a reliable multicast must mask the loss) for resolution to proceed."
    );

    println!("\n=== 4. Message duplication (idempotence) ===");
    let dup = NetConfig::default()
        .with_seed(7)
        .with_faults(FaultPlan::none().with_duplicate_probability(0.3));
    let report = workloads::case1(5, dup).run();
    println!(
        "  with 30% duplicates: resolutions={}, clean={}, stale messages dropped={}",
        report.resolutions.len(),
        report.is_clean(),
        report.stale_messages()
    );
    assert_eq!(
        report.resolutions.len(),
        1,
        "duplicates must not break agreement"
    );
    let _ = report.agreed_exception(report.resolutions[0].action);
    println!("  -> duplicated messages are absorbed; agreement still holds.");
}
