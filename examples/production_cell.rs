//! The fault-tolerant production cell — the classic CA-action case
//! study — exercising every part of the library together: nested
//! actions, concurrent exceptions, exception-tree resolution, abortion
//! handlers, and transactional atomic objects under forward recovery.
//!
//! Devices (participating objects): feed belt, rotary table, robot,
//! press. Processing one metal blank is a top-level CA action; the
//! robot and press cooperate in a nested "press blank" action. The
//! blank itself is an external atomic object.
//!
//! Scenario: while the nested press action runs, the **feed belt**
//! detects a blank misalignment (raises in the outer action) at the
//! same moment the **press** detects a jam (raises inside the nested
//! action). The protocol must abort the nested action (its abortion
//! handler signals `press_failure` upward after retracting the press),
//! eliminate the nested resolution, resolve `{misalignment,
//! press_failure}` to the covering `cell_fault`, and run the cell-fault
//! handler in all four devices — which repairs the blank's state
//! transactionally.
//!
//! Run with: `cargo run --example production_cell`

use caex::{Note, Scenario};
use caex_action::atomic::Store;
use caex_action::{AbortionOutcome, ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_net::{LatencyModel, NetConfig, NodeId, SimTime};
use caex_tree::{Exception, Severity, TreeBuilder};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlankState {
    OnTable,
    InPress,
    Safe,
}

fn main() {
    // Exception hierarchy of the cell.
    let mut b = TreeBuilder::new("universal_exception");
    let cell_fault = b.child_of_root("cell_fault").unwrap();
    let misalignment = b.child("blank_misalignment", cell_fault).unwrap();
    let press_failure = b.child("press_failure", cell_fault).unwrap();
    let press_jam = b.child("press_jam", press_failure).unwrap();
    let tree = Arc::new(b.build().unwrap());

    // Devices.
    let feed_belt = NodeId::new(0);
    let table = NodeId::new(1);
    let robot = NodeId::new(2);
    let press = NodeId::new(3);

    // Actions: process ⊃ press_op{robot, press}.
    let mut registry = ActionRegistry::new();
    let process = registry
        .declare(ActionScope::top_level(
            "process-blank",
            [feed_belt, table, robot, press],
            Arc::clone(&tree),
        ))
        .unwrap();
    let press_op = registry
        .declare(ActionScope::nested(
            "press-blank",
            [robot, press],
            Arc::clone(&tree),
            process,
        ))
        .unwrap();

    // The blank: an external atomic object.
    let store = Arc::new(Mutex::new(Store::<BlankState>::new()));
    let blank = store.lock().define("blank-042", BlankState::OnTable);
    let press_txn = {
        let mut s = store.lock();
        let txn = s.begin_top_level();
        s.write(txn, blank, BlankState::InPress).unwrap();
        txn
    };

    // The press's abortion handler for the nested action: physically
    // retract the press, abort the blank's transaction, and signal
    // press_failure to the containing action.
    let press_abort_table = {
        let store = Arc::clone(&store);
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        t.on_abort(SimTime::from_micros(800), move || {
            store.lock().abort(press_txn).unwrap();
            println!("  [press] retracted, press transaction aborted");
            AbortionOutcome::Signal(
                Exception::new(press_failure)
                    .with_origin("press abortion handler")
                    .with_severity(Severity::Serious),
            )
        });
        t
    };

    // Every device's cell_fault handler cooperates; the robot is the
    // one that moves the blank to the safe position (forward recovery
    // via abort/start/commit on the atomic object).
    let robot_fault_table = {
        let store = Arc::clone(&store);
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        t.on(cell_fault, SimTime::from_micros(1_500), move |_| {
            let mut s = store.lock();
            let recovery = s.begin_top_level();
            s.write(recovery, blank, BlankState::Safe).unwrap();
            s.commit(recovery).unwrap();
            println!("  [robot] blank moved to safe position");
            HandlerOutcome::Recovered
        });
        t
    };

    let report = Scenario::new(Arc::new(registry))
        .with_config(
            NetConfig::default()
                .with_latency(LatencyModel::Uniform {
                    min: SimTime::from_micros(80),
                    max: SimTime::from_micros(240),
                })
                .with_seed(42)
                .with_trace(true),
        )
        .enter_all_at(SimTime::ZERO, process)
        .enter_at(SimTime::from_micros(10), robot, press_op)
        .enter_at(SimTime::from_micros(10), press, press_op)
        .handlers(press, press_op, press_abort_table)
        .handlers(robot, process, robot_fault_table)
        // Concurrent failures: belt sees misalignment in the outer
        // action; press detects a jam inside the nested action.
        .raise_at(
            SimTime::from_micros(500),
            feed_belt,
            Exception::new(misalignment)
                .with_origin("feed belt optical sensor")
                .with_severity(Severity::Serious),
        )
        .raise_at(
            SimTime::from_micros(500),
            press,
            Exception::new(press_jam)
                .with_origin("press torque monitor")
                .with_severity(Severity::Serious),
        )
        .run();

    println!("=== Production cell: concurrent failure recovery ===\n");
    for note in &report.notes {
        match note {
            Note::Raised {
                object,
                action,
                exc,
            } => {
                println!(
                    "  {object} raised {} in {action}",
                    tree.name(exc.id()).unwrap()
                );
            }
            Note::AbortedNested { object, chain, .. } => {
                println!("  {object} aborted nested {chain:?}");
            }
            Note::ResolutionCommitted {
                resolver,
                resolved,
                raised,
                ..
            } => {
                println!(
                    "  {resolver} resolved {{{}}} -> {}",
                    raised
                        .iter()
                        .map(|(o, e)| format!("{o}:{}", tree.name(e.id()).unwrap()))
                        .collect::<Vec<_>>()
                        .join(", "),
                    tree.name(resolved.id()).unwrap()
                );
            }
            _ => {}
        }
    }

    let r = report.resolution_for(process).expect("resolution");
    assert_eq!(r.resolved.id(), cell_fault, "covering exception chosen");
    assert!(
        r.raised.iter().any(|(_, e)| e.id() == press_failure),
        "the nested abortion signal joined the resolution"
    );
    assert!(
        r.raised.iter().all(|(_, e)| e.id() != press_jam),
        "the nested-level jam itself was eliminated with the nested resolution"
    );
    assert_eq!(report.handlers_for(process).len(), 4);
    assert!(report.is_clean());

    let final_state = store.lock().read_committed(blank);
    println!("\nblank final state: {final_state:?}");
    assert_eq!(final_state, BlankState::Safe);
    assert_eq!(store.lock().abort_count(blank), 1);
    println!(
        "\nOK: nested press action aborted, cell fault resolved cooperatively, \
         blank recovered transactionally ({} messages, finished at {}).",
        report.total_messages(),
        report.finished_at
    );
}
