//! Pins the checked-in `BENCH_PR10.json` to a live regeneration: the
//! load generator, the fleet engine and the baseline replays are all
//! virtual-time-deterministic, so the saturation study at the repo
//! root must match what the code produces today, bit for bit.

use caex_load::suite::{bench_pr10, bench_pr10_json, validate_bench_pr10};
use caex_obs::JsonValue;

fn checked_in() -> JsonValue {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    let text = std::fs::read_to_string(path).expect("BENCH_PR10.json exists at the repo root");
    caex_obs::json::parse(&text).expect("BENCH_PR10.json parses")
}

#[test]
fn checked_in_saturation_study_validates() {
    assert_eq!(validate_bench_pr10(&checked_in()), Ok(27));
}

#[test]
fn checked_in_saturation_study_matches_live_regeneration() {
    let live = bench_pr10_json(&bench_pr10());
    assert_eq!(
        checked_in(),
        live,
        "BENCH_PR10.json is stale — regenerate with \
         `cargo run -p caex-load --bin caex-load -- saturation --out BENCH_PR10.json`"
    );
}

#[test]
fn sim_rows_hold_the_law_and_baselines_are_marked_inapplicable() {
    let doc = checked_in();
    let rows = doc.get("rows").and_then(JsonValue::as_array).unwrap();
    let law = doc
        .get("workload")
        .and_then(|w| w.get("law_messages"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert_eq!(law, 24, "(N-1)(2P+3Q+1) with N=4, P=2, Q=1");
    for row in rows {
        match row.get("engine").and_then(JsonValue::as_str).unwrap() {
            "sim" => {
                assert_eq!(row.get("law_holds").and_then(JsonValue::as_bool), Some(true));
                assert_eq!(
                    row.get("messages_per_action").and_then(JsonValue::as_u64),
                    Some(law)
                );
            }
            _ => assert_eq!(row.get("law_holds"), Some(&JsonValue::Null)),
        }
    }
}

#[test]
fn low_load_rows_miss_no_deadlines() {
    let doc = checked_in();
    let rows = doc.get("rows").and_then(JsonValue::as_array).unwrap();
    for row in rows {
        let offered = row.get("offered_per_sec").and_then(JsonValue::as_f64).unwrap();
        if offered <= 800.0 {
            assert_eq!(
                row.get("deadline_misses").and_then(JsonValue::as_u64),
                Some(0),
                "low-load cell missed deadlines: {row}"
            );
        }
    }
}

#[test]
fn saturation_caps_achieved_throughput_below_offered() {
    // The saturated cells are the study's point: at 12800/s offered
    // over one 2-slot shard, every engine's achieved throughput must
    // fall visibly short of the offered rate.
    let doc = checked_in();
    let rows = doc.get("rows").and_then(JsonValue::as_array).unwrap();
    for row in rows {
        let offered = row.get("offered_per_sec").and_then(JsonValue::as_f64).unwrap();
        let shards = row.get("shards").and_then(JsonValue::as_u64).unwrap();
        let capacity = row.get("capacity").and_then(JsonValue::as_u64).unwrap();
        let achieved = row.get("achieved_per_sec").and_then(JsonValue::as_f64).unwrap();
        if offered >= 12_800.0 && shards == 1 && capacity == 2 {
            assert!(
                achieved < 0.8 * offered,
                "expected saturation at (1,2) offered {offered}: achieved {achieved}"
            );
        }
    }
}
