//! Behavioural tests of the load generator: seeded reproducibility,
//! low-load cleanliness, burst arrivals, sharding speed-up in virtual
//! time, and flame-stack collection under load.

use caex_load::arrivals::ArrivalSpec;
use caex_load::suite::{bench_pr10_json, run_load, Engine, LoadConfig};
use caex_net::SimTime;

fn low_load(engine: Engine) -> LoadConfig {
    LoadConfig {
        engine,
        arrivals: ArrivalSpec::parse("poisson:500").unwrap(),
        actions: 80,
        shards: 2,
        capacity: 2,
        deadline: Some(SimTime::from_millis(20)),
        seed: 42,
        collect_flame: false,
    }
}

#[test]
fn same_seed_regenerates_bit_identical_results() {
    let a = run_load(&low_load(Engine::Sim));
    let b = run_load(&low_load(Engine::Sim));
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.makespan_us, b.makespan_us);
    assert_eq!(a.hist.p50(), b.hist.p50());
    assert_eq!(a.hist.p999(), b.hist.p999());
    assert_eq!(a.hist.sum(), b.hist.sum());
    // And a different seed genuinely reshuffles the arrival schedule.
    let mut other = low_load(Engine::Sim);
    other.seed = 43;
    assert_ne!(run_load(&other).makespan_us, a.makespan_us);
}

#[test]
fn low_load_commits_everything_on_time_with_the_law() {
    for engine in Engine::all() {
        let config = low_load(engine);
        let outcome = run_load(&config);
        assert_eq!(outcome.completed, config.actions, "{engine}: all commit");
        assert_eq!(outcome.deadline_misses, 0, "{engine}: no misses at low load");
        assert_eq!(outcome.deadlocked, 0, "{engine}: clean");
        if engine == Engine::Sim {
            assert_eq!(outcome.law_holds, Some(true), "§4.4 law under multiplexing");
            assert_eq!(outcome.messages_per_action, 24, "(N-1)(2P+3Q+1), N=4 P=2 Q=1");
        } else {
            assert_eq!(outcome.law_holds, None, "law is §4.2-specific");
        }
    }
}

#[test]
fn burst_arrivals_queue_behind_capacity() {
    // 16 actions arriving simultaneously into one 2-slot shard must
    // serialize: eight waves of service, tail latency far above the
    // front's.
    let config = LoadConfig {
        engine: Engine::Sim,
        arrivals: ArrivalSpec::parse("burst:16@50").unwrap(),
        actions: 16,
        shards: 1,
        capacity: 2,
        deadline: Some(SimTime::from_millis(20)),
        seed: 1,
        collect_flame: false,
    };
    let outcome = run_load(&config);
    assert_eq!(outcome.completed, 16);
    assert_eq!(outcome.law_holds, Some(true));
    assert!(
        outcome.hist.max() >= 4 * outcome.hist.min().max(1),
        "burst tail ({} us) should dwarf the head ({} us)",
        outcome.hist.max(),
        outcome.hist.min()
    );
}

#[test]
fn more_shards_cut_the_saturated_makespan() {
    let mut config = low_load(Engine::Sim);
    config.arrivals = ArrivalSpec::parse("poisson:20000").unwrap();
    config.actions = 120;
    config.shards = 1;
    config.capacity = 2;
    let narrow = run_load(&config);
    config.shards = 4;
    let wide = run_load(&config);
    assert_eq!(narrow.completed, 120);
    assert_eq!(wide.completed, 120);
    assert!(
        wide.makespan_us < narrow.makespan_us,
        "4 shards ({} us) should beat 1 shard ({} us) under overload",
        wide.makespan_us,
        narrow.makespan_us
    );
    assert!(narrow.law_holds == Some(true) && wide.law_holds == Some(true));
}

#[test]
fn flame_collection_yields_per_fleet_folded_stacks() {
    let mut config = low_load(Engine::Sim);
    config.shards = 1;
    config.actions = 6;
    config.collect_flame = true;
    let outcome = run_load(&config);
    let folded = outcome.folded.expect("flame stacks collected");
    // Six instances on nodes 0..24: the first and last instance's
    // objects both appear, and every line is `stack count`.
    assert!(folded.contains("O0;"), "first instance present:\n{folded}");
    assert!(folded.contains("O20;"), "last instance present:\n{folded}");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded format");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().is_ok(), "bad count in `{line}`");
    }
}

#[test]
fn json_document_is_reproducible_across_processes() {
    // The full study is exercised by the pin test; here just check the
    // document builder is a pure function of its cells.
    let cells = caex_load::suite::bench_pr10_seeded(5);
    let a = bench_pr10_json(&cells).to_string();
    let b = bench_pr10_json(&caex_load::suite::bench_pr10_seeded(5)).to_string();
    assert_eq!(a, b);
}
