//! An hdrhistogram-style log-bucketed latency recorder.
//!
//! [`LogHistogram`] keeps exact counts for values below 64 and
//! logarithmic buckets with 32 linear sub-buckets per octave above
//! that, bounding relative quantile error at ~3% across the full `u64`
//! range — the classic High Dynamic Range histogram layout. Unlike
//! [`caex_obs::MetricsRegistry`]'s fixed-bound histograms (whose
//! buckets must be declared up front), this recorder needs no a-priori
//! knowledge of the latency range, which is exactly what an open-loop
//! saturation sweep requires: under overload, latencies grow without
//! bound.

/// Log-bucketed histogram of `u64` values (microseconds, by
/// convention). Recording is O(1); quantiles are nearest-rank over the
/// bucket array, reported as the bucket's upper bound clamped to the
/// observed maximum.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Values below this are their own bucket (exact); above, each octave
/// splits into `LINEAR` sub-buckets.
const EXACT: u64 = 64;
const LINEAR: usize = 32;

fn index_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    // Shift so the value lands in [32, 64): `shift` is the octave
    // above the exact range, the shifted value the sub-bucket.
    let shift = 63 - u64::from(v.leading_zeros()) - 5;
    #[allow(clippy::cast_possible_truncation)]
    let sub = (v >> shift) as usize;
    shift as usize * LINEAR + sub
}

fn upper_bound_of(index: usize) -> u64 {
    if index < EXACT as usize {
        return index as u64;
    }
    let shift = index / LINEAR - 1;
    let sub = (index - shift * LINEAR) as u64;
    ((sub + 1) << shift) - 1
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = index_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if self.count == 1 {
            self.min = v;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 if empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The nearest-rank `q`-quantile (`0 < q <= 1`), reported as the
    /// containing bucket's upper bound, clamped to the recorded
    /// maximum. Returns 0 when empty.
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound_of(i).min(self.max);
            }
        }
        self.max
    }

    /// The median.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// The 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut prev = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_535, 1 << 40] {
            let idx = index_of(v);
            assert!(idx >= prev, "index not monotonic at {v}");
            assert!(upper_bound_of(idx) >= v, "upper bound below value at {v}");
            // Relative error of the upper bound is under 1/32.
            assert!(
                upper_bound_of(idx) - v <= v / 32 + 1,
                "bucket too wide at {v}: ub {}",
                upper_bound_of(idx)
            );
            prev = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 10); // 10us .. 100ms
        }
        for (q, exact) in [(0.50, 50_000u64), (0.99, 99_000), (0.999, 99_900)] {
            let got = h.percentile(q);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err < 0.04, "q={q}: got {got}, exact {exact}, err {err}");
        }
        assert_eq!(h.percentile(1.0), 100_000);
    }

    #[test]
    fn outlier_clamps_to_max_and_merge_sums() {
        let mut a = LogHistogram::new();
        a.record(100);
        let mut b = LogHistogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.p999(), 1_000_000, "p999 clamps to the recorded max");
        assert_eq!(a.p50(), upper_bound_of(index_of(100)));
    }
}
