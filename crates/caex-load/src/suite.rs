//! The saturation study: offered load vs achieved throughput and tail
//! latency, for the paper's decentralized resolution engine against
//! the two baselines.
//!
//! Every cell of the study is open-loop: arrivals come from a seeded
//! [`ArrivalSpec`] schedule regardless of how the engine keeps up.
//! The unit of work is one **action instance** of the §4.4 general
//! workload with `N = 4`, `P = 2`, `Q = 1` — four participants, two
//! concurrent raisers, one nested action — whose per-instance message
//! cost the paper's law fixes at `(N−1)(2P+3Q+1) = 24`.
//!
//! Engines:
//!
//! - `sim` — the paper's §4.2 algorithm, multiplexed by
//!   [`caex::shard::FleetEngine`]: instances are sharded round-robin
//!   across workers and queue for `capacity` admission slots per
//!   shard, so queueing delay is part of the measured latency;
//! - `central` — the fixed-coordinator design ([`caex::central`],
//!   E18's baseline). It has no nested-action support, so its service
//!   time is measured once on the *flat* equivalent (`N = 4`, two
//!   raisers, 1 ms collection window) and offered load is then played
//!   through a deterministic queue replay with the same shard/slot
//!   discipline as the fleet;
//! - `cr` — the Campbell–Randell 1986 exception-tree baseline
//!   ([`caex::cr`]), measured and replayed the same way.
//!
//! Measuring baseline service once and replaying the queue is exact,
//! not an approximation: both baselines are deterministic under the
//! constant-latency default model, so every request would take the
//! same virtual service time the single run measures. The replay is
//! conservative *in their favour* — the flat workload omits the
//! nested-action abort/completion traffic the `sim` engine pays for.
//!
//! All quantities are virtual time: the study is bit-reproducible for
//! a given seed, which is what lets `BENCH_PR10.json` be pinned by a
//! test.

use crate::arrivals::ArrivalSpec;
use crate::hist::LogHistogram;
use caex::shard::{ActionInstance, FleetConfig, FleetEngine};
use caex::{analysis, central, cr, workloads};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_obs::JsonValue;
use caex_tree::{chain_tree, ExceptionId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Participants per action instance.
pub const WORKLOAD_N: u32 = 4;
/// Concurrent raisers per instance.
pub const WORKLOAD_P: u32 = 2;
/// Nested actions per instance.
pub const WORKLOAD_Q: u32 = 1;
/// Actions declared per instance (the top-level one plus `Q` nested).
const ACTIONS_PER_INSTANCE: u32 = WORKLOAD_Q + 1;
/// The central baseline's collection window (E18's Table 16 value).
fn central_window() -> SimTime {
    SimTime::from_millis(1)
}

/// Which resolution engine serves the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's decentralized algorithm under the fleet engine.
    Sim,
    /// Fixed-coordinator baseline (measured service + queue replay).
    Central,
    /// Campbell–Randell 1986 baseline (measured service + queue replay).
    Cr,
}

impl Engine {
    /// Parses `sim`, `central` or `cr`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values otherwise.
    pub fn parse(s: &str) -> Result<Engine, String> {
        match s {
            "sim" => Ok(Engine::Sim),
            "central" => Ok(Engine::Central),
            "cr" => Ok(Engine::Cr),
            other => Err(format!("unknown engine `{other}` (sim|central|cr)")),
        }
    }

    /// The canonical lowercase name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Engine::Sim => "sim",
            Engine::Central => "central",
            Engine::Cr => "cr",
        }
    }

    /// All engines, in report order.
    #[must_use]
    pub fn all() -> [Engine; 3] {
        [Engine::Sim, Engine::Central, Engine::Cr]
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One load-generation run: the arrival process, how much of it, and
/// which engine at which concurrency serves it.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Engine under test.
    pub engine: Engine,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Total action instances to generate.
    pub actions: usize,
    /// Worker shards (fleet) / shard groups (replay).
    pub shards: usize,
    /// Concurrent admission slots per shard.
    pub capacity: usize,
    /// Per-request latency budget, if any.
    pub deadline: Option<SimTime>,
    /// Seed for the arrival schedule and the network model.
    pub seed: u64,
    /// Collect folded flame-graph stacks (`sim` only).
    pub collect_flame: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            engine: Engine::Sim,
            arrivals: ArrivalSpec::Poisson { rate_per_sec: 1000.0 },
            actions: 200,
            shards: 1,
            capacity: 2,
            deadline: Some(SimTime::from_millis(20)),
            seed: 10,
            collect_flame: false,
        }
    }
}

/// What one load run measured.
#[derive(Debug)]
pub struct LoadOutcome {
    /// Offered rate, actions per virtual second.
    pub offered_per_sec: f64,
    /// Instances whose resolution committed.
    pub completed: usize,
    /// Committed instances over the makespan, per virtual second.
    pub achieved_per_sec: f64,
    /// Arrival-to-commit latency distribution, µs.
    pub hist: LogHistogram,
    /// Instances that blew their deadline (or never committed).
    pub deadline_misses: usize,
    /// §4.4 law verdict across all instances (`None` for baselines —
    /// the law describes the decentralized algorithm only).
    pub law_holds: Option<bool>,
    /// Protocol messages per action instance.
    pub messages_per_action: u64,
    /// Virtual time the last shard went quiescent, µs.
    pub makespan_us: u64,
    /// Folded flame-graph stacks, when requested.
    pub folded: Option<String>,
    /// Objects stuck mid-resolution at quiescence (0 on healthy runs).
    pub deadlocked: usize,
}

impl LoadOutcome {
    /// Deadline misses over generated actions, in `[0, 1]`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn miss_rate(&self, actions: usize) -> f64 {
        if actions == 0 {
            return 0.0;
        }
        self.deadline_misses as f64 / actions as f64
    }
}

/// Runs one load cell against the configured engine.
///
/// # Panics
///
/// Panics on zero `shards`/`capacity`/`actions`, or if flame
/// collection is requested for a baseline engine.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn run_load(config: &LoadConfig) -> LoadOutcome {
    assert!(config.actions > 0, "need at least one action");
    let arrivals = config.arrivals.schedule(config.actions, config.seed);
    match config.engine {
        Engine::Sim => run_fleet(config, &arrivals),
        Engine::Central => {
            assert!(!config.collect_flame, "flame stacks need the sim engine");
            let (service_us, messages) = central_service(config.seed);
            replay(config, &arrivals, service_us, messages)
        }
        Engine::Cr => {
            assert!(!config.collect_flame, "flame stacks need the sim engine");
            let (service_us, messages) = cr_service(config.seed);
            replay(config, &arrivals, service_us, messages)
        }
    }
}

/// The sim path: relocate one §4.4 instance per arrival onto private
/// node/action ranges and let the fleet engine multiplex them.
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
fn run_fleet(config: &LoadConfig, arrivals: &[SimTime]) -> LoadOutcome {
    let instances: Vec<ActionInstance> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &at)| {
            let i = i as u32;
            let w = workloads::general_at(
                WORKLOAD_N,
                WORKLOAD_P,
                WORKLOAD_Q,
                i * WORKLOAD_N,
                i * ACTIONS_PER_INSTANCE,
                NetConfig::default(),
            );
            let inst = ActionInstance::from_scenario(w.scenario, at);
            match config.deadline {
                Some(d) => inst.with_deadline(d),
                None => inst,
            }
        })
        .collect();
    let fleet = FleetConfig {
        shards: config.shards,
        capacity: config.capacity,
        net: NetConfig::default().with_seed(config.seed),
        law: Some(analysis::messages_general),
        collect_flame: config.collect_flame,
        ..Default::default()
    };
    let report = FleetEngine::new(fleet).run(instances);
    let mut hist = LogHistogram::new();
    for us in report.latencies_us() {
        hist.record(us);
    }
    LoadOutcome {
        offered_per_sec: config.arrivals.offered_per_sec(),
        completed: report.committed_count(),
        achieved_per_sec: report.throughput_per_sec(),
        deadline_misses: report.deadline_misses(),
        law_holds: Some(report.law_all_hold()),
        messages_per_action: report.outcomes.iter().map(|o| o.messages).max().unwrap_or(0),
        makespan_us: report.makespan().as_micros(),
        deadlocked: report.deadlocked.len(),
        folded: report.folded,
        hist,
    }
}

/// Measures the central baseline's service time once, on the flat
/// equivalent of the workload (no nested actions: `N = 4`, raisers at
/// the two highest-numbered objects, the E18 collection window).
fn central_service(seed: u64) -> (u64, u64) {
    let tree = Arc::new(chain_tree(WORKLOAD_N));
    let raises = flat_raises();
    let report = central::run(
        WORKLOAD_N,
        tree,
        NodeId::new(0),
        &raises,
        central_window(),
        NetConfig::default().with_seed(seed),
    );
    assert!(report.committed.is_some(), "central baseline must commit");
    (report.finished_at.as_micros(), report.total_messages())
}

/// Measures the Campbell–Randell baseline's service time once, on the
/// same flat equivalent (interleaved reduced trees, two concurrent
/// raisers).
fn cr_service(seed: u64) -> (u64, u64) {
    let tree = Arc::new(chain_tree(WORKLOAD_N));
    let reduced = cr::interleaved_parties(&tree, WORKLOAD_N, WORKLOAD_N);
    let raises = flat_raises();
    let report = cr::run(
        WORKLOAD_N,
        tree,
        reduced,
        &raises,
        NetConfig::default().with_seed(seed),
    );
    (report.finished_at.as_micros(), report.total_messages())
}

/// The flat workload's raise set: the two highest-numbered objects
/// raise distinct exceptions concurrently, mirroring `P = 2` raisers
/// of [`workloads::general`].
fn flat_raises() -> [(NodeId, ExceptionId); WORKLOAD_P as usize] {
    [
        (NodeId::new(WORKLOAD_N - 2), ExceptionId::new(WORKLOAD_N - 2)),
        (NodeId::new(WORKLOAD_N - 1), ExceptionId::new(WORKLOAD_N - 1)),
    ]
}

/// Plays an arrival schedule through `shards × capacity` deterministic
/// servers with fixed per-request service time, using the fleet's
/// discipline: instance `i` goes to shard group `i % shards`, then to
/// the earliest-free slot in that group. Exact for deterministic
/// baselines; see the module docs.
#[allow(clippy::cast_precision_loss)]
fn replay(
    config: &LoadConfig,
    arrivals: &[SimTime],
    service_us: u64,
    messages: u64,
) -> LoadOutcome {
    assert!(config.shards >= 1 && config.capacity >= 1);
    let mut servers: Vec<BinaryHeap<Reverse<u64>>> = (0..config.shards)
        .map(|_| (0..config.capacity).map(|_| Reverse(0)).collect())
        .collect();
    let mut hist = LogHistogram::new();
    let mut misses = 0usize;
    let mut makespan = 0u64;
    for (i, &at) in arrivals.iter().enumerate() {
        let group = &mut servers[i % config.shards];
        let Reverse(free) = group.pop().expect("capacity >= 1");
        let start = free.max(at.as_micros());
        let done = start + service_us;
        group.push(Reverse(done));
        let latency = done - at.as_micros();
        hist.record(latency);
        if config.deadline.is_some_and(|d| latency > d.as_micros()) {
            misses += 1;
        }
        makespan = makespan.max(done);
    }
    let completed = arrivals.len();
    LoadOutcome {
        offered_per_sec: config.arrivals.offered_per_sec(),
        completed,
        achieved_per_sec: if makespan == 0 {
            0.0
        } else {
            completed as f64 * 1_000_000.0 / makespan as f64
        },
        deadline_misses: misses,
        law_holds: None,
        messages_per_action: messages,
        makespan_us: makespan,
        deadlocked: 0,
        folded: None,
        hist,
    }
}

// ---------------------------------------------------------------------
// The pinned PR10 study.
// ---------------------------------------------------------------------

/// Seed of the pinned study.
pub const BENCH_SEED: u64 = 10;
/// Actions generated per cell.
pub const BENCH_ACTIONS: usize = 240;
/// Per-request deadline of the pinned study.
pub const BENCH_DEADLINE_MS: u64 = 20;
/// Offered Poisson rates swept, actions per virtual second. The
/// single-server service times are roughly 200 µs (`sim`), 410 µs
/// (`cr`) and 1.2 ms (`central`, window-dominated), so 800/s is
/// comfortable for every engine at every concurrency, 3200/s
/// saturates `central` at `(1, 2)`, and 12800/s pushes all three
/// engines past their lowest-concurrency capacity.
pub const BENCH_RATES: [f64; 3] = [800.0, 3200.0, 12_800.0];
/// Concurrency levels swept, as `(shards, capacity)`.
pub const BENCH_CONCURRENCY: [(usize, usize); 3] = [(1, 2), (2, 4), (4, 8)];

/// One cell of the pinned study: its configuration plus what it
/// measured.
#[derive(Debug)]
pub struct SaturationCell {
    /// The cell's configuration.
    pub config: LoadConfig,
    /// The cell's measurements.
    pub outcome: LoadOutcome,
}

/// Runs the full PR10 saturation study: 3 engines × 3 concurrency
/// levels × 3 offered rates, 240 Poisson arrivals per cell, 20 ms
/// deadline, seed 10.
#[must_use]
pub fn bench_pr10() -> Vec<SaturationCell> {
    bench_pr10_seeded(BENCH_SEED)
}

/// [`bench_pr10`] at an arbitrary seed (the pinned document uses
/// [`BENCH_SEED`]).
#[must_use]
pub fn bench_pr10_seeded(seed: u64) -> Vec<SaturationCell> {
    let mut cells = Vec::new();
    for engine in Engine::all() {
        for &(shards, capacity) in &BENCH_CONCURRENCY {
            for &rate in &BENCH_RATES {
                let config = LoadConfig {
                    engine,
                    arrivals: ArrivalSpec::Poisson { rate_per_sec: rate },
                    actions: BENCH_ACTIONS,
                    shards,
                    capacity,
                    deadline: Some(SimTime::from_millis(BENCH_DEADLINE_MS)),
                    seed,
                    collect_flame: false,
                };
                let outcome = run_load(&config);
                cells.push(SaturationCell { config, outcome });
            }
        }
    }
    cells
}

/// Rounds to 3 decimals so the pinned JSON stays tidy.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Renders the study as the `BENCH_PR10.json` document.
#[must_use]
pub fn bench_pr10_json(cells: &[SaturationCell]) -> JsonValue {
    let rows: Vec<JsonValue> = cells
        .iter()
        .map(|cell| {
            let c = &cell.config;
            let o = &cell.outcome;
            JsonValue::Obj(vec![
                ("engine".into(), JsonValue::str(c.engine.as_str())),
                ("shards".into(), JsonValue::num(c.shards as u64)),
                ("capacity".into(), JsonValue::num(c.capacity as u64)),
                ("arrivals".into(), JsonValue::str(c.arrivals.to_string())),
                ("offered_per_sec".into(), JsonValue::Num(round3(o.offered_per_sec))),
                ("actions".into(), JsonValue::num(c.actions as u64)),
                ("completed".into(), JsonValue::num(o.completed as u64)),
                ("achieved_per_sec".into(), JsonValue::Num(round3(o.achieved_per_sec))),
                ("p50_us".into(), JsonValue::num(o.hist.p50())),
                ("p99_us".into(), JsonValue::num(o.hist.p99())),
                ("p999_us".into(), JsonValue::num(o.hist.p999())),
                ("max_us".into(), JsonValue::num(o.hist.max())),
                ("deadline_misses".into(), JsonValue::num(o.deadline_misses as u64)),
                ("miss_rate".into(), JsonValue::Num(round3(o.miss_rate(c.actions)))),
                (
                    "law_holds".into(),
                    match o.law_holds {
                        Some(b) => JsonValue::Bool(b),
                        None => JsonValue::Null,
                    },
                ),
                ("messages_per_action".into(), JsonValue::num(o.messages_per_action)),
                ("makespan_us".into(), JsonValue::num(o.makespan_us)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::str("PR10")),
        ("seed".into(), JsonValue::num(BENCH_SEED)),
        ("actions_per_cell".into(), JsonValue::num(BENCH_ACTIONS as u64)),
        ("deadline_ms".into(), JsonValue::num(BENCH_DEADLINE_MS)),
        (
            "workload".into(),
            JsonValue::Obj(vec![
                ("n".into(), JsonValue::num(u64::from(WORKLOAD_N))),
                ("p".into(), JsonValue::num(u64::from(WORKLOAD_P))),
                ("q".into(), JsonValue::num(u64::from(WORKLOAD_Q))),
                (
                    "law_messages".into(),
                    JsonValue::num(analysis::messages_general(
                        u64::from(WORKLOAD_N),
                        u64::from(WORKLOAD_P),
                        u64::from(WORKLOAD_Q),
                    )),
                ),
            ]),
        ),
        ("rows".into(), JsonValue::Arr(rows)),
    ])
}

/// Structurally validates a `BENCH_PR10.json` document: the workload
/// law constant, every row's field sanity (quantile ordering, rates,
/// counts), all three engines present at three or more concurrency
/// levels and offered rates, and — the acceptance bar — the §4.4 law
/// holding with exactly `law_messages` protocol messages per action on
/// every `sim` row.
///
/// # Errors
///
/// Returns a message naming the first offending row/field.
#[allow(clippy::too_many_lines)]
pub fn validate_bench_pr10(doc: &JsonValue) -> Result<usize, String> {
    if doc.get("bench").and_then(JsonValue::as_str) != Some("PR10") {
        return Err("bench tag is not PR10".into());
    }
    let workload = doc.get("workload").ok_or("missing workload")?;
    let field = |obj: &JsonValue, key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let n = field(workload, "n")?;
    let p = field(workload, "p")?;
    let q = field(workload, "q")?;
    let law = field(workload, "law_messages")?;
    if law != analysis::messages_general(n, p, q) {
        return Err(format!(
            "law_messages {law} != (N-1)(2P+3Q+1) = {}",
            analysis::messages_general(n, p, q)
        ));
    }
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows array is empty".into());
    }
    let mut engines: Vec<&str> = Vec::new();
    let mut concurrency: Vec<(u64, u64)> = Vec::new();
    let mut rates: Vec<u64> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("row {i}: {msg}");
        let engine = row
            .get("engine")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing engine".into()))?;
        let shards = field(row, "shards").map_err(ctx)?;
        let capacity = field(row, "capacity").map_err(ctx)?;
        let actions = field(row, "actions").map_err(ctx)?;
        let completed = field(row, "completed").map_err(ctx)?;
        let p50 = field(row, "p50_us").map_err(ctx)?;
        let p99 = field(row, "p99_us").map_err(ctx)?;
        let p999 = field(row, "p999_us").map_err(ctx)?;
        let max = field(row, "max_us").map_err(ctx)?;
        let misses = field(row, "deadline_misses").map_err(ctx)?;
        let offered = row
            .get("offered_per_sec")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| ctx("missing offered_per_sec".into()))?;
        let achieved = row
            .get("achieved_per_sec")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| ctx("missing achieved_per_sec".into()))?;
        let miss_rate = row
            .get("miss_rate")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| ctx("missing miss_rate".into()))?;
        if completed > actions {
            return Err(ctx(format!("completed {completed} > actions {actions}")));
        }
        if completed == 0 || achieved <= 0.0 {
            return Err(ctx("no throughput".into()));
        }
        if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
            return Err(ctx(format!(
                "quantiles out of order: {p50}/{p99}/{p999}/{max}"
            )));
        }
        if misses > actions || !(0.0..=1.0).contains(&miss_rate) {
            return Err(ctx("bad deadline-miss accounting".into()));
        }
        if offered <= 0.0 {
            return Err(ctx("offered rate not positive".into()));
        }
        if engine == "sim" {
            if row.get("law_holds").and_then(JsonValue::as_bool) != Some(true) {
                return Err(ctx("§4.4 law does not hold".into()));
            }
            let messages = field(row, "messages_per_action").map_err(ctx)?;
            if messages != law {
                return Err(ctx(format!("messages_per_action {messages} != law {law}")));
            }
        }
        if !engines.contains(&engine) {
            engines.push(engine);
        }
        if !concurrency.contains(&(shards, capacity)) {
            concurrency.push((shards, capacity));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rate_key = offered.round() as u64;
        if !rates.contains(&rate_key) {
            rates.push(rate_key);
        }
    }
    for needed in ["sim", "central", "cr"] {
        if !engines.contains(&needed) {
            return Err(format!("engine `{needed}` missing from the study"));
        }
    }
    if concurrency.len() < 3 {
        return Err(format!(
            "only {} concurrency levels (need >= 3)",
            concurrency.len()
        ));
    }
    if rates.len() < 3 {
        return Err(format!("only {} offered rates (need >= 3)", rates.len()));
    }
    Ok(rows.len())
}

/// Renders a `BENCH_PR10.json` document as an aligned text table (one
/// row per cell), for `caex-load saturation` and
/// `tables --load-json` output.
///
/// # Panics
///
/// Panics if the document does not carry a `rows` array of objects —
/// validate first.
#[must_use]
pub fn render_saturation_table(doc: &JsonValue) -> String {
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .expect("validated document has rows");
    let mut body: Vec<Vec<String>> = Vec::new();
    for row in rows {
        let s = |k: &str| {
            row.get(k)
                .map(std::string::ToString::to_string)
                .unwrap_or_default()
        };
        body.push(vec![
            row.get("engine")
                .and_then(JsonValue::as_str)
                .unwrap_or("?")
                .to_owned(),
            format!("{}x{}", s("shards"), s("capacity")),
            s("offered_per_sec"),
            s("achieved_per_sec"),
            s("p50_us"),
            s("p99_us"),
            s("p999_us"),
            s("miss_rate"),
            s("messages_per_action"),
        ]);
    }
    let header = [
        "engine", "workers", "offered/s", "achieved/s", "p50 us", "p99 us", "p999 us",
        "miss rate", "msgs/action",
    ];
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &body {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::from(
        "Saturation study (open-loop Poisson arrivals, 240 actions/cell, 20 ms deadline)\n",
    );
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{cell:>w$}", w = widths[i]));
        }
        s.push('\n');
        s
    };
    let header: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&line(&header, &widths));
    for row in &body {
        out.push_str(&line(row, &widths));
    }
    out
}
