//! `caex-load` — open-loop load generator for the caex resolution
//! engines.
//!
//! ```text
//! caex-load run --arrivals poisson:1000 --actions 200 --engine sim \
//!     [--workers S] [--capacity C] [--deadline-ms D] [--seed N] \
//!     [--out row.json] [--folded stacks.folded] \
//!     [--assert-law] [--assert-no-misses]
//! caex-load saturation [--seed N] [--out BENCH_PR10.json]
//! ```
//!
//! `run` drives one load cell and prints a summary row; `--out` writes
//! the row as JSON, `--folded` writes the fleet's folded flame-graph
//! stacks (sim engine only). The `--assert-*` flags turn protocol
//! expectations into a non-zero exit status for CI smokes. `saturation`
//! regenerates the full pinned PR10 study, validates it, and writes
//! the document.

use caex_load::arrivals::ArrivalSpec;
use caex_load::suite::{
    bench_pr10, bench_pr10_json, render_saturation_table, run_load, validate_bench_pr10, Engine,
    LoadConfig,
};
use caex_net::SimTime;
use caex_obs::JsonValue;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let result = match mode {
        Some("run") => run_main(&args[1..]),
        Some("saturation") => saturation_main(&args[1..]),
        _ => Err("usage: caex-load run|saturation [flags] (see --help in crate docs)".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(why) => {
            eprintln!("caex-load: {why}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean `--key`
/// switches.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

const SWITCHES: &[&str] = &["assert-law", "assert-no-misses"];

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{arg}`"))?;
            if SWITCHES.contains(&key) {
                switches.push(key.to_owned());
            } else {
                let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                pairs.push((key.to_owned(), value.clone()));
            }
        }
        Ok(Flags { pairs, switches })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value `{v}`")),
        }
    }
}

fn run_main(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let arrivals = ArrivalSpec::parse(flags.get("arrivals").unwrap_or("poisson:1000"))?;
    let engine = Engine::parse(flags.get("engine").unwrap_or("sim"))?;
    let deadline_ms: u64 = flags.num("deadline-ms", 20)?;
    let config = LoadConfig {
        engine,
        arrivals,
        actions: flags.num("actions", 200)?,
        shards: flags.num("workers", 1)?,
        capacity: flags.num("capacity", 2)?,
        deadline: (deadline_ms > 0).then(|| SimTime::from_millis(deadline_ms)),
        seed: flags.num("seed", 10)?,
        collect_flame: flags.get("folded").is_some(),
    };
    if config.collect_flame && engine != Engine::Sim {
        return Err("--folded needs --engine sim (baselines replay a queue, no stacks)".into());
    }
    let outcome = run_load(&config);
    println!(
        "engine={} workers={}x{} offered={:.0}/s completed={}/{} achieved={:.1}/s \
         p50={}us p99={}us p999={}us misses={} law={} msgs/action={}",
        engine,
        config.shards,
        config.capacity,
        outcome.offered_per_sec,
        outcome.completed,
        config.actions,
        outcome.achieved_per_sec,
        outcome.hist.p50(),
        outcome.hist.p99(),
        outcome.hist.p999(),
        outcome.deadline_misses,
        outcome
            .law_holds
            .map_or_else(|| "n/a".into(), |b| b.to_string()),
        outcome.messages_per_action,
    );
    if let Some(path) = flags.get("folded") {
        let folded = outcome.folded.as_deref().unwrap_or("");
        std::fs::write(path, folded).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("folded stacks written to {path}");
    }
    if let Some(path) = flags.get("out") {
        let row = JsonValue::Obj(vec![
            ("engine".into(), JsonValue::str(engine.as_str())),
            ("arrivals".into(), JsonValue::str(arrivals.to_string())),
            ("actions".into(), JsonValue::num(config.actions as u64)),
            ("workers".into(), JsonValue::num(config.shards as u64)),
            ("capacity".into(), JsonValue::num(config.capacity as u64)),
            ("seed".into(), JsonValue::num(config.seed)),
            ("completed".into(), JsonValue::num(outcome.completed as u64)),
            ("achieved_per_sec".into(), JsonValue::Num(outcome.achieved_per_sec)),
            ("p50_us".into(), JsonValue::num(outcome.hist.p50())),
            ("p99_us".into(), JsonValue::num(outcome.hist.p99())),
            ("p999_us".into(), JsonValue::num(outcome.hist.p999())),
            ("deadline_misses".into(), JsonValue::num(outcome.deadline_misses as u64)),
            (
                "law_holds".into(),
                match outcome.law_holds {
                    Some(b) => JsonValue::Bool(b),
                    None => JsonValue::Null,
                },
            ),
            ("messages_per_action".into(), JsonValue::num(outcome.messages_per_action)),
        ]);
        std::fs::write(path, format!("{row}\n")).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("row written to {path}");
    }
    if flags.has("assert-law") {
        if engine != Engine::Sim {
            return Err("--assert-law needs --engine sim (the law describes §4.2)".into());
        }
        if outcome.law_holds != Some(true) {
            return Err("§4.4 law violated under load".into());
        }
        if outcome.completed != config.actions || outcome.deadlocked != 0 {
            return Err(format!(
                "{} of {} actions committed, {} deadlocked",
                outcome.completed, config.actions, outcome.deadlocked
            ));
        }
    }
    if flags.has("assert-no-misses") && outcome.deadline_misses != 0 {
        return Err(format!(
            "{} deadline misses at offered {:.0}/s",
            outcome.deadline_misses, outcome.offered_per_sec
        ));
    }
    Ok(())
}

fn saturation_main(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if let Some(seed) = flags.get("seed") {
        let pinned = caex_load::suite::BENCH_SEED;
        let seed: u64 = seed.parse().map_err(|_| format!("bad --seed `{seed}`"))?;
        if seed != pinned {
            return Err(format!(
                "the pinned study uses seed {pinned}; run `caex-load run --seed {seed} ...` \
                 for ad-hoc seeds"
            ));
        }
    }
    let cells = bench_pr10();
    let doc = bench_pr10_json(&cells);
    let count = validate_bench_pr10(&doc)?;
    print!("{}", render_saturation_table(&doc));
    if let Some(path) = flags.get("out") {
        std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("saturation study ({count} cells, laws ok) written to {path}");
    }
    Ok(())
}
