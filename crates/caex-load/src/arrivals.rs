//! Open-loop arrival processes.
//!
//! An open-loop generator decides arrival times *before* the system
//! responds: requests keep coming at the offered rate even while the
//! server is saturated, which is what exposes queueing collapse (a
//! closed-loop generator self-throttles and hides it). Two processes
//! are supported, both seeded and bit-reproducible:
//!
//! - `poisson:<rate>` — exponential inter-arrival gaps at `rate`
//!   actions per (virtual) second, the classic M/·/· arrival stream;
//! - `burst:<n>@<ms>` — `n` simultaneous arrivals every `ms`
//!   milliseconds, the adversarial bursty counterpart.

use caex_net::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A parsed arrival process specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson process: exponential gaps at `rate_per_sec` arrivals per
    /// virtual second.
    Poisson {
        /// Offered rate, actions per virtual second.
        rate_per_sec: f64,
    },
    /// Bursts of `group` simultaneous arrivals every `every`.
    Burst {
        /// Arrivals per burst.
        group: u32,
        /// Gap between consecutive bursts.
        every: SimTime,
    },
}

impl ArrivalSpec {
    /// Parses `poisson:<rate>` or `burst:<n>@<ms>`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the spec does not match
    /// either form or carries a non-positive rate/group/gap.
    pub fn parse(spec: &str) -> Result<ArrivalSpec, String> {
        if let Some(rate) = spec.strip_prefix("poisson:") {
            let rate_per_sec: f64 = rate
                .parse()
                .map_err(|_| format!("bad poisson rate `{rate}`"))?;
            if !(rate_per_sec > 0.0) || !rate_per_sec.is_finite() {
                return Err(format!("poisson rate must be positive, got {rate_per_sec}"));
            }
            return Ok(ArrivalSpec::Poisson { rate_per_sec });
        }
        if let Some(rest) = spec.strip_prefix("burst:") {
            let (n, ms) = rest
                .split_once('@')
                .ok_or_else(|| format!("burst spec `{rest}` needs <n>@<ms>"))?;
            let group: u32 = n.parse().map_err(|_| format!("bad burst size `{n}`"))?;
            let millis: u64 = ms.parse().map_err(|_| format!("bad burst gap `{ms}`"))?;
            if group == 0 || millis == 0 {
                return Err("burst size and gap must be positive".into());
            }
            return Ok(ArrivalSpec::Burst {
                group,
                every: SimTime::from_millis(millis),
            });
        }
        Err(format!(
            "unknown arrival spec `{spec}` (expected poisson:<rate> or burst:<n>@<ms>)"
        ))
    }

    /// The offered rate in actions per virtual second.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn offered_per_sec(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalSpec::Burst { group, every } => {
                f64::from(group) * 1_000_000.0 / every.as_micros() as f64
            }
        }
    }

    /// Generates the first `k` arrival times of the process, sorted,
    /// deterministically from `seed`. (Burst schedules ignore the seed
    /// — they are already deterministic.)
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn schedule(&self, k: usize, seed: u64) -> Vec<SimTime> {
        match *self {
            ArrivalSpec::Poisson { rate_per_sec } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut at_us = 0.0_f64;
                (0..k)
                    .map(|_| {
                        // Inverse-CDF exponential draw; the open
                        // interval keeps ln() finite.
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        at_us += -u.ln() * 1_000_000.0 / rate_per_sec;
                        SimTime::from_micros(at_us as u64)
                    })
                    .collect()
            }
            ArrivalSpec::Burst { group, every } => (0..k)
                .map(|i| {
                    let burst = (i / group as usize) as u64;
                    SimTime::from_micros(burst * every.as_micros())
                })
                .collect(),
        }
    }
}

impl fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ArrivalSpec::Poisson { rate_per_sec } => write!(f, "poisson:{rate_per_sec}"),
            ArrivalSpec::Burst { group, every } => {
                write!(f, "burst:{group}@{}", every.as_micros() / 1000)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_forms_and_rejects_junk() {
        assert_eq!(
            ArrivalSpec::parse("poisson:1500").unwrap(),
            ArrivalSpec::Poisson { rate_per_sec: 1500.0 }
        );
        assert_eq!(
            ArrivalSpec::parse("burst:8@5").unwrap(),
            ArrivalSpec::Burst { group: 8, every: SimTime::from_millis(5) }
        );
        assert!(ArrivalSpec::parse("poisson:-3").is_err());
        assert!(ArrivalSpec::parse("burst:0@5").is_err());
        assert!(ArrivalSpec::parse("uniform:10").is_err());
    }

    #[test]
    fn poisson_schedule_is_seeded_sorted_and_near_rate() {
        let spec = ArrivalSpec::parse("poisson:1000").unwrap();
        let a = spec.schedule(2000, 7);
        let b = spec.schedule(2000, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, spec.schedule(2000, 8), "different seed, different gaps");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // 2000 arrivals at 1000/s should span roughly 2 virtual
        // seconds; allow a generous statistical margin.
        let span = a.last().unwrap().as_micros();
        assert!((1_500_000..2_500_000).contains(&span), "span {span}us");
    }

    #[test]
    fn burst_schedule_groups_arrivals() {
        let spec = ArrivalSpec::parse("burst:3@10").unwrap();
        let times = spec.schedule(7, 0);
        let us: Vec<u64> = times.iter().map(|t| t.as_micros()).collect();
        assert_eq!(us, vec![0, 0, 0, 10_000, 10_000, 10_000, 20_000]);
        assert!((spec.offered_per_sec() - 300.0).abs() < 1e-9);
    }
}
