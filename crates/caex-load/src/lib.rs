//! Open-loop load generation and the saturation study for the caex
//! resolution engines.
//!
//! The paper analyses one resolution at a time: §4.4 prices a single
//! action's concurrent-exception round at `(N−1)(2P+3Q+1)` messages.
//! This crate asks the systems question that analysis leaves open:
//! what happens when a *stream* of independent actions hits one
//! resolution engine faster than it drains?
//!
//! Three pieces:
//!
//! - [`arrivals`] — seeded open-loop arrival processes
//!   (`poisson:<rate>`, `burst:<n>@<ms>`);
//! - [`hist`] — an hdrhistogram-style log-bucketed latency recorder
//!   (p50/p99/p999 with ~3% relative error, no a-priori bounds);
//! - [`suite`] — the saturation study itself: the paper's engine
//!   (via [`caex::shard::FleetEngine`]) against the `central` and
//!   `cr` baselines across offered rates and worker concurrency,
//!   rendered as the pinned `BENCH_PR10.json`.
//!
//! Everything is virtual-time deterministic: the same seed produces
//! bit-identical schedules, latencies and JSON, which is how the
//! checked-in study document can be enforced by a test.
//!
//! # Example
//!
//! One low-load cell through the paper's engine:
//!
//! ```
//! use caex_load::arrivals::ArrivalSpec;
//! use caex_load::suite::{run_load, Engine, LoadConfig};
//!
//! let outcome = run_load(&LoadConfig {
//!     engine: Engine::Sim,
//!     arrivals: ArrivalSpec::parse("poisson:200").unwrap(),
//!     actions: 40,
//!     ..Default::default()
//! });
//! assert_eq!(outcome.completed, 40);
//! assert_eq!(outcome.law_holds, Some(true));
//! assert_eq!(outcome.deadline_misses, 0);
//! ```

pub mod arrivals;
pub mod hist;
pub mod suite;

pub use arrivals::ArrivalSpec;
pub use hist::LogHistogram;
pub use suite::{
    bench_pr10, bench_pr10_json, render_saturation_table, run_load, validate_bench_pr10, Engine,
    LoadConfig, LoadOutcome, SaturationCell,
};
