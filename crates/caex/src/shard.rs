//! Multi-action engine sharding: one process multiplexing a fleet of
//! independent CA actions.
//!
//! [`Scenario`](crate::Scenario) owns a single action structure per
//! run. Under load, a resolution server faces a different shape: many
//! independent top-level actions arriving over time, each resolving
//! its own exceptions, sharing the process. This module supplies that
//! shape:
//!
//! - [`ActionInstance`] — one action structure plus its scripted
//!   timeline, relocated to a private `NodeId` range and a private
//!   [`ActionId`] range (via [`ActionRegistry::with_base`]), so every
//!   instance keys its protocol state, metrics and observability by
//!   its own `(ActionId, round)` spans;
//! - [`FleetEngine`] — shards instances round-robin across worker
//!   threads; each shard is one [`SimNet`] event loop interleaving all
//!   of its instances' deliveries in virtual-time order, with
//!   admission control (`capacity` concurrent slots per shard) so that
//!   offered load beyond capacity queues, exactly like a bounded
//!   worker pool;
//! - [`ActionOutcome`] / [`FleetReport`] — per-action arrival,
//!   admission, commit and completion times, message counts and the
//!   §4.4 `(N−1)(2P+3Q+1)` law verdict, plus fleet-wide stats.
//!
//! All measured quantities are *virtual time*: worker threads give
//! wall-clock speedup, but reports are bit-identical for a given seed
//! regardless of the host's scheduling.

use crate::{Effect, Event, LeaveMode, NestedStrategy, Note, Participant, Scenario};
use caex_action::{ActionId, ActionRegistry, HandlerTable};
use caex_net::{NetConfig, NetStats, NodeId, SimNet, SimTime};
use caex_tree::Exception;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// One relocatable action structure plus its scripted timeline, ready
/// to be multiplexed by a [`FleetEngine`].
///
/// Build one from any single-top-level-action [`Scenario`] (the
/// canonical path is [`crate::workloads::general_at`], which relocates
/// the §4.4 workload to per-instance node/action bases).
#[derive(Debug)]
pub struct ActionInstance {
    registry: Arc<ActionRegistry>,
    /// Scripted events as offsets from the instance's admission time.
    steps: Vec<(SimTime, NodeId, Event)>,
    handlers: Vec<(NodeId, ActionId, HandlerTable)>,
    strategy: NestedStrategy,
    resolver_group: u32,
    leave_mode: LeaveMode,
    failover: bool,
    /// Open-loop arrival time (absolute virtual time).
    arrival: SimTime,
    /// Latency budget from arrival, if the request carries a deadline.
    deadline: Option<SimTime>,
    /// The single top-level action; commit of this action defines the
    /// instance's latency.
    key: ActionId,
    nodes: Vec<NodeId>,
}

impl ActionInstance {
    /// Wraps a scenario as a fleet instance arriving at `arrival`.
    /// The scenario's scripted times become offsets from admission.
    ///
    /// # Panics
    ///
    /// Panics unless the scenario declares exactly one top-level
    /// action (an instance is one request; script several instances
    /// for several requests).
    #[must_use]
    pub fn from_scenario(scenario: Scenario, arrival: SimTime) -> Self {
        let strategy = scenario.strategy();
        let resolver_group = scenario.resolver_group_size();
        let leave_mode = scenario.leave_mode();
        let failover = scenario.failover();
        let (registry, steps, handlers) = scenario.into_script();
        let top = registry.top_level();
        assert_eq!(
            top.len(),
            1,
            "an ActionInstance is one top-level action, got {}",
            top.len()
        );
        let key = top[0];
        let nodes = registry
            .scope(key)
            .expect("top-level action is declared")
            .participants()
            .to_vec();
        ActionInstance {
            registry,
            steps,
            handlers,
            strategy,
            resolver_group,
            leave_mode,
            failover,
            arrival,
            deadline: None,
            key,
            nodes,
        }
    }

    /// Attaches a per-request latency budget, measured from arrival.
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The instance's open-loop arrival time.
    #[must_use]
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// The instance's top-level action id.
    #[must_use]
    pub fn key(&self) -> ActionId {
        self.key
    }

    /// The nodes this instance occupies (participants of the top-level
    /// action; nested participants are a subset by §3.1).
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The instance's action-id range as `base..base+len`.
    #[must_use]
    pub fn action_range(&self) -> std::ops::Range<u32> {
        self.registry.base()..self.registry.base() + self.registry.len() as u32
    }
}

/// Fleet engine configuration: how many shards, how many concurrent
/// admission slots each shard serves, and the shared network model.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker shards. Instances are assigned round-robin by index;
    /// shard `s` seeds its network with `net.seed` plus a per-shard
    /// offset (shard 0 keeps `net.seed` exactly, so a one-shard fleet
    /// of one instance reproduces `Scenario::run` bit-for-bit).
    pub shards: usize,
    /// Concurrent action slots per shard. Arrivals beyond capacity
    /// queue in arrival order; queueing delay shows up in virtual
    /// time, which is what the saturation curves measure.
    pub capacity: usize,
    /// Network model template applied per shard.
    pub net: NetConfig,
    /// Per-shard delivery cap (livelock guard).
    pub max_deliveries: u64,
    /// §4.4 message law injected into the per-round metrics check,
    /// e.g. [`crate::analysis::messages_general`].
    pub law: Option<fn(u64, u64, u64) -> u64>,
    /// Collect folded flame-graph stacks per shard (costs one string
    /// per distinct stack; off for pure throughput runs).
    pub collect_flame: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 1,
            capacity: 8,
            net: NetConfig::default(),
            max_deliveries: 50_000_000,
            law: None,
            collect_flame: false,
        }
    }
}

/// What happened to one action instance under load.
#[derive(Debug, Clone)]
pub struct ActionOutcome {
    /// Global instance index (fleet submission order).
    pub instance: usize,
    /// Shard that served the instance.
    pub shard: usize,
    /// The instance's top-level action id.
    pub key: ActionId,
    /// Open-loop arrival time.
    pub arrival: SimTime,
    /// Admission time (`>= arrival`; the difference is queueing delay).
    pub admitted: SimTime,
    /// Commit time of the resolution, if one committed.
    pub committed: Option<SimTime>,
    /// Time the instance fully drained (handlers done, participants
    /// back to normal) and released its slot.
    pub finished: Option<SimTime>,
    /// The elected resolver, if a resolution committed.
    pub resolver: Option<NodeId>,
    /// The resolving exception everyone handled.
    pub resolved: Option<Exception>,
    /// Protocol messages sent on behalf of this instance's actions.
    pub messages: u64,
    /// The §4.4 prediction for the instance's rounds, when a law was
    /// injected and applicable.
    pub law_predicted: Option<u64>,
    /// Per-instance law verdict: `Some(true)` iff every resolution
    /// round of this instance matched the prediction.
    pub law_holds: Option<bool>,
    /// Absolute deadline (arrival + budget), if one was attached.
    pub deadline: Option<SimTime>,
}

impl ActionOutcome {
    /// Queueing delay: admission minus arrival, in µs.
    #[must_use]
    pub fn queue_wait_us(&self) -> u64 {
        self.admitted.saturating_sub(self.arrival).as_micros()
    }

    /// Arrival-to-commit latency in µs (`None` if never committed).
    #[must_use]
    pub fn latency_us(&self) -> Option<u64> {
        self.committed
            .map(|c| c.saturating_sub(self.arrival).as_micros())
    }

    /// `true` if the instance carried a deadline and blew it (either
    /// committed late or never committed).
    #[must_use]
    pub fn deadline_missed(&self) -> bool {
        match self.deadline {
            None => false,
            Some(d) => self.committed.is_none_or(|c| c > d),
        }
    }
}

/// Everything a fleet run produced.
#[derive(Debug)]
pub struct FleetReport {
    /// One outcome per instance, in submission order.
    pub outcomes: Vec<ActionOutcome>,
    /// Merged network statistics across shards (per-action counters
    /// included, since every shard's net is shared by many actions).
    pub stats: NetStats,
    /// Virtual time each shard went quiescent.
    pub shard_finished: Vec<SimTime>,
    /// Objects stuck mid-resolution at quiescence, across shards.
    pub deadlocked: Vec<NodeId>,
    /// `true` if any shard hit its delivery cap.
    pub hit_delivery_limit: bool,
    /// Folded flame-graph stacks merged across shards (only with
    /// [`FleetConfig::collect_flame`]).
    pub folded: Option<String>,
}

impl FleetReport {
    /// The fleet makespan: the latest shard quiescence time.
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.shard_finished.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Instances whose resolution committed.
    #[must_use]
    pub fn committed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.committed.is_some()).count()
    }

    /// Instances that carried a deadline and missed it.
    #[must_use]
    pub fn deadline_misses(&self) -> usize {
        self.outcomes.iter().filter(|o| o.deadline_missed()).count()
    }

    /// `true` iff the §4.4 law held on every instance it applied to.
    #[must_use]
    pub fn law_all_hold(&self) -> bool {
        self.outcomes.iter().all(|o| o.law_holds != Some(false))
    }

    /// Arrival-to-commit latencies of all committed instances, µs.
    #[must_use]
    pub fn latencies_us(&self) -> Vec<u64> {
        self.outcomes.iter().filter_map(ActionOutcome::latency_us).collect()
    }

    /// Achieved throughput in actions per virtual second (committed
    /// count over the makespan).
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        let span_us = self.makespan().as_micros();
        if span_us == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.committed_count() as f64 * 1_000_000.0 / span_us as f64
        }
    }
}

/// The multi-action engine: shards a fleet of [`ActionInstance`]s
/// across worker threads and runs each shard's event loop to
/// quiescence.
///
/// # Examples
///
/// Two relocated §4.4 instances through one single-shard engine:
///
/// ```
/// use caex::shard::{ActionInstance, FleetConfig, FleetEngine};
/// use caex::{analysis, workloads};
/// use caex_net::SimTime;
///
/// let instances = (0..2)
///     .map(|i| {
///         let w = workloads::general_at(3, 1, 0, i * 3, i, Default::default());
///         ActionInstance::from_scenario(w.scenario, SimTime::from_micros(u64::from(i) * 10))
///     })
///     .collect();
/// let config = FleetConfig { law: Some(analysis::messages_general), ..Default::default() };
/// let report = FleetEngine::new(config).run(instances);
/// assert_eq!(report.committed_count(), 2);
/// assert!(report.law_all_hold());
/// assert_eq!(report.outcomes[0].messages, analysis::messages_general(3, 1, 0));
/// ```
#[derive(Debug, Default)]
pub struct FleetEngine {
    config: FleetConfig,
}

/// Per-shard golden-ratio seed stride, so shards draw independent
/// latency streams while shard 0 keeps the configured seed exactly.
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

impl FleetEngine {
    /// Creates an engine with the given fleet configuration.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        FleetEngine { config }
    }

    /// Runs the fleet to quiescence. Instances are assigned to shards
    /// round-robin by index; give them non-decreasing arrival times
    /// for open-loop semantics.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero, if two instances in
    /// one shard overlap in node range, or on scenario programming
    /// errors surfaced by participants.
    #[must_use]
    pub fn run(&self, instances: Vec<ActionInstance>) -> FleetReport {
        assert!(self.config.shards >= 1, "need at least one shard");
        assert!(self.config.capacity >= 1, "need at least one slot");
        let shards = self.config.shards;
        let mut per_shard: Vec<Vec<(usize, ActionInstance)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (i, inst) in instances.into_iter().enumerate() {
            per_shard[i % shards].push((i, inst));
        }

        let outputs: Vec<ShardOutput> = if shards == 1 {
            let batch = per_shard.pop().expect("one shard");
            vec![run_shard(batch, 0, &self.config, &mut ())]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = per_shard
                    .into_iter()
                    .enumerate()
                    .map(|(s, batch)| {
                        let config = &self.config;
                        scope.spawn(move || run_shard(batch, s, config, &mut ()))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard thread")).collect()
            })
        };
        merge_outputs(outputs, self.config.collect_flame)
    }

    /// Like [`FleetEngine::run`], but streams every shard's
    /// [`caex_obs::ObsEvent`]s to `obs`. Only available single-shard
    /// (an external observer cannot be shared across worker threads
    /// without destroying determinism).
    ///
    /// # Panics
    ///
    /// Panics if the configuration asks for more than one shard, plus
    /// the conditions of [`FleetEngine::run`].
    #[must_use]
    pub fn run_observed(
        &self,
        instances: Vec<ActionInstance>,
        obs: &mut dyn caex_obs::Observer,
    ) -> FleetReport {
        assert_eq!(self.config.shards, 1, "run_observed is single-shard");
        assert!(self.config.capacity >= 1, "need at least one slot");
        let batch = instances.into_iter().enumerate().collect();
        let output = run_shard(batch, 0, &self.config, obs);
        merge_outputs(vec![output], self.config.collect_flame)
    }
}

/// What one shard hands back to the merger.
struct ShardOutput {
    outcomes: Vec<ActionOutcome>,
    stats: NetStats,
    finished_at: SimTime,
    deadlocked: Vec<NodeId>,
    hit_delivery_limit: bool,
    folded: Option<String>,
}

fn merge_outputs(outputs: Vec<ShardOutput>, collect_flame: bool) -> FleetReport {
    let mut outcomes = Vec::new();
    let mut stats = NetStats::default();
    let mut shard_finished = Vec::new();
    let mut deadlocked = Vec::new();
    let mut hit_delivery_limit = false;
    let mut folded_merged: BTreeMap<String, u64> = BTreeMap::new();
    for out in outputs {
        outcomes.extend(out.outcomes);
        stats.merge(&out.stats);
        shard_finished.push(out.finished_at);
        deadlocked.extend(out.deadlocked);
        hit_delivery_limit |= out.hit_delivery_limit;
        if let Some(folded) = out.folded {
            for line in folded.lines() {
                if let Some((stack, count)) = line.rsplit_once(' ') {
                    if let Ok(us) = count.parse::<u64>() {
                        *folded_merged.entry(stack.to_owned()).or_default() += us;
                    }
                }
            }
        }
    }
    outcomes.sort_by_key(|o| o.instance);
    deadlocked.sort_unstable();
    let folded = collect_flame.then(|| {
        let mut out = String::new();
        for (stack, us) in &folded_merged {
            out.push_str(&format!("{stack} {us}\n"));
        }
        out
    });
    FleetReport {
        outcomes,
        stats,
        shard_finished,
        deadlocked,
        hit_delivery_limit,
        folded,
    }
}

/// Tracking state for one admitted instance.
struct Live {
    admitted: SimTime,
    committed: Option<SimTime>,
    finished: Option<SimTime>,
    resolver: Option<NodeId>,
    resolved: Option<Exception>,
    handlers_open: u64,
}

/// Runs one shard's event loop: interleave all assigned instances'
/// deliveries in virtual-time order, admitting instances into
/// `capacity` slots in arrival order.
#[allow(clippy::too_many_lines)]
fn run_shard(
    mut batch: Vec<(usize, ActionInstance)>,
    shard: usize,
    config: &FleetConfig,
    obs: &mut dyn caex_obs::Observer,
) -> ShardOutput {
    let num_nodes = batch
        .iter()
        .flat_map(|(_, inst)| inst.nodes.iter())
        .map(|n| n.index() + 1)
        .max()
        .unwrap_or(0);
    // Node ranges must be disjoint: one node serves one instance.
    {
        let mut owners: HashMap<NodeId, usize> = HashMap::new();
        for (i, inst) in &batch {
            for &n in &inst.nodes {
                assert!(
                    owners.insert(n, *i).is_none(),
                    "node {n} assigned to two instances in shard {shard}"
                );
            }
        }
    }

    let mut net_config = config.net.clone();
    net_config.seed = net_config
        .seed
        .wrapping_add(SHARD_SEED_STRIDE.wrapping_mul(shard as u64));
    let mut net: SimNet<Event> = SimNet::new(net_config, num_nodes);

    let mut metrics = match config.law {
        Some(law) => caex_obs::MetricsRegistry::new().with_law(law),
        None => caex_obs::MetricsRegistry::new(),
    };
    let mut flame = caex_obs::FlameBuilder::new();

    // node -> local slot in `batch`; action id -> local slot.
    let mut node_owner: HashMap<NodeId, usize> = HashMap::new();
    let mut action_owner: HashMap<ActionId, usize> = HashMap::new();
    for (local, (_, inst)) in batch.iter().enumerate() {
        for &n in &inst.nodes {
            node_owner.insert(n, local);
        }
        for a in inst.action_range() {
            action_owner.insert(ActionId::new(a), local);
        }
    }

    let mut participants: HashMap<NodeId, Participant> = HashMap::new();
    let mut live: Vec<Option<Live>> = (0..batch.len()).map(|_| None).collect();
    let mut pending: VecDeque<usize> = (0..batch.len()).collect();
    let mut active = 0usize;
    let mut bridge = crate::ObsBridge::new();
    let mut leave_requests: HashMap<ActionId, std::collections::BTreeSet<NodeId>> = HashMap::new();
    let mut hit_delivery_limit = false;

    // Admission: fill free slots in arrival order. Steps are offsets
    // from admission time, so an instance admitted after its arrival
    // (all slots were busy) starts late — that wait is the queueing
    // delay the saturation study measures.
    macro_rules! admit_ready {
        () => {
            while active < config.capacity {
                let Some(local) = pending.pop_front() else { break };
                // Handler tables are moved into participants once, at
                // admission (`HandlerTable` is not `Clone`).
                let handlers = std::mem::take(&mut batch[local].1.handlers);
                let (_, inst) = &batch[local];
                let start = inst.arrival.max(net.now());
                for &n in &inst.nodes {
                    let mut p = Participant::new(n, Arc::clone(&inst.registry), inst.strategy);
                    p.set_resolver_group(inst.resolver_group);
                    p.set_leave_mode(inst.leave_mode);
                    p.set_failover(inst.failover);
                    participants.insert(n, p);
                }
                for (object, action, table) in handlers {
                    participants
                        .get_mut(&object)
                        .expect("handler for unknown object")
                        .set_handlers(action, table);
                }
                for (offset, object, event) in &inst.steps {
                    net.schedule_local(start + *offset, *object, event.clone());
                }
                live[local] = Some(Live {
                    admitted: start,
                    committed: None,
                    finished: None,
                    resolver: None,
                    resolved: None,
                    handlers_open: 0,
                });
                active += 1;
            }
        };
    }
    admit_ready!();

    while let Some(delivery) = net.next_delivery() {
        if net.delivered_count() > config.max_deliveries {
            hit_delivery_limit = true;
            break;
        }
        let at = delivery.at;
        let object = delivery.to;
        let local = node_owner.get(&object).copied();
        let is_handler_done = matches!(delivery.payload, Event::HandlerDone { .. });
        let participant = participants
            .get_mut(&object)
            .expect("delivery to unknown object");
        let mut tee = caex_obs::Tee::new().with(&mut metrics);
        if config.collect_flame {
            tee = tee.with(&mut flame);
        }
        let mut tee = tee.with(obs);
        if let caex_net::DeliverySource::Remote(from) = delivery.source {
            bridge.on_receive(object, &delivery.payload, from, at, None, &mut tee);
        }
        let pre = bridge.pre(participant, &delivery.payload);
        let effects = participant.handle(delivery.payload);
        bridge.post(&pre, participant, &effects, at, None, &mut tee);
        drop(tee);
        if is_handler_done {
            if let Some(slot) = local.and_then(|l| live[l].as_mut()) {
                slot.handlers_open = slot.handlers_open.saturating_sub(1);
            }
        }
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => net.send(object, to, Event::Msg(msg)),
                Effect::After { delay, event } => net.schedule_local_in(delay, object, event),
                Effect::Note(note) => match &note {
                    Note::ResolutionCommitted {
                        action,
                        resolver,
                        resolved,
                        ..
                    } => {
                        if let Some(slot) = action_owner
                            .get(action)
                            .copied()
                            .and_then(|l| live[l].as_mut())
                        {
                            if slot.committed.is_none() {
                                slot.committed = Some(at);
                                slot.resolver = Some(*resolver);
                                slot.resolved = Some(resolved.clone());
                            }
                        }
                    }
                    Note::HandlerStarted { action, .. } => {
                        if let Some(slot) = action_owner
                            .get(action)
                            .copied()
                            .and_then(|l| live[l].as_mut())
                        {
                            slot.handlers_open += 1;
                        }
                    }
                    Note::LeaveRequested { object: o, action } => {
                        let instance_mode = local
                            .map(|l| batch[l].1.leave_mode)
                            .unwrap_or(LeaveMode::Managed);
                        if instance_mode == LeaveMode::Managed {
                            let waiting = leave_requests.entry(*action).or_default();
                            waiting.insert(*o);
                            let registry = &batch[local.expect("leave from owned node")].1.registry;
                            let everyone = registry
                                .scope(*action)
                                .expect("declared action")
                                .participants();
                            if waiting.len() == everyone.len() {
                                for &member in everyone {
                                    net.schedule_local(
                                        net.now(),
                                        member,
                                        Event::LeaveGranted(*action),
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                },
            }
        }
        // Completion check for the instance that just made progress:
        // resolution committed, every handler it started has finished,
        // and all of its participants are back to normal.
        if let Some(l) = local {
            let done = match live[l].as_ref() {
                Some(slot) => {
                    slot.finished.is_none()
                        && slot.committed.is_some()
                        && slot.handlers_open == 0
                        && batch[l]
                            .1
                            .nodes
                            .iter()
                            .all(|n| participants.get(n).is_none_or(Participant::is_normal))
                }
                None => false,
            };
            if done {
                if let Some(slot) = live[l].as_mut() {
                    slot.finished = Some(at);
                }
                active -= 1;
                admit_ready!();
            }
        }
    }
    obs.on_run_end(net.now());

    // Per-instance law verdicts from the metrics registry's rounds.
    let mut law_predicted: HashMap<usize, u64> = HashMap::new();
    let mut law_holds: HashMap<usize, bool> = HashMap::new();
    for r in metrics.resolutions() {
        if let Some(&l) = action_owner.get(&r.action) {
            if let Some(pred) = r.predicted {
                *law_predicted.entry(l).or_insert(0) += pred;
            }
            if let Some(holds) = r.law_holds {
                let entry = law_holds.entry(l).or_insert(true);
                *entry = *entry && holds;
            }
        }
    }

    let deadlocked: Vec<NodeId> = participants
        .values()
        .filter(|p| !p.is_normal())
        .map(Participant::id)
        .collect();

    let outcomes = batch
        .iter()
        .enumerate()
        .map(|(l, (global, inst))| {
            let slot = live[l].as_ref();
            let messages = inst
                .action_range()
                .map(|a| net.stats().action_counters(a).sent)
                .sum();
            ActionOutcome {
                instance: *global,
                shard,
                key: inst.key,
                arrival: inst.arrival,
                admitted: slot.map_or(inst.arrival, |s| s.admitted),
                committed: slot.and_then(|s| s.committed),
                finished: slot.and_then(|s| s.finished),
                resolver: slot.and_then(|s| s.resolver),
                resolved: slot.and_then(|s| s.resolved.clone()),
                messages,
                law_predicted: law_predicted.get(&l).copied(),
                law_holds: law_holds.get(&l).copied(),
                deadline: inst.deadline.map(|d| inst.arrival + d),
            }
        })
        .collect();

    ShardOutput {
        outcomes,
        stats: net.stats().clone(),
        finished_at: net.now(),
        deadlocked,
        hit_delivery_limit,
        folded: config.collect_flame.then(|| flame.folded()),
    }
}
