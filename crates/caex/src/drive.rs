//! The transport-generic drive loop: one participant over one
//! [`FifoPort`].
//!
//! This is the seam between the pure [`Participant`] state machine and
//! a real transport. The threaded engine runs it over in-process
//! crossbeam ports ([`caex_net::NodePort`]); `caex-wire` runs the very
//! same loop over TCP / Unix-domain sockets from separate OS
//! processes. The loop owns the node's local timer queue (scenario
//! steps and `Effect::After` continuations), relays `Effect::Send`s
//! into the port, and folds the transport's failure detector into the
//! protocol by turning [`FifoPort::take_crashed`] reports into
//! [`Participant::on_deserter`] calls — so a crashed peer surfaces as
//! a *deserter* instead of hanging resolution. Accrual detectors
//! additionally surface [`FifoPort::take_suspected`] /
//! [`FifoPort::take_rejoined`] transitions, which map onto
//! [`Participant::on_suspect`] / [`Participant::on_rejoin`] — the
//! rejoin path re-forwards any commit the peer missed while it was
//! unreachable.
//!
//! Timer semantics: due local events always fire before the next
//! receive. Two nodes that schedule steps at the same offset from a
//! shared start instant therefore each process their own step before
//! seeing the other's traffic, which is what makes concurrent-raise
//! scenarios deterministic over real sockets.

use crate::{Effect, Event, Note, Participant};
use caex_net::{FifoPort, RecvTimeoutError, SimTime};
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// A locally scheduled event (scenario step or `Effect::After`
/// continuation) with a stable tie-break for equal due times.
struct TimedEvent {
    due: Instant,
    seq: u64,
    event: Event,
}

impl PartialEq for TimedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimedEvent {}
impl PartialOrd for TimedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// What one node's drive loop did, beyond the protocol itself.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DriveSummary {
    /// Messages still undelivered in the inbox at exit; each was
    /// recorded as a per-kind drop by [`FifoPort::drain_undelivered`].
    pub drained: usize,
    /// Peers the failure detector reported and the participant
    /// excluded as deserters.
    pub deserted: usize,
}

/// Drives `participant` over `port` until quiescence.
///
/// `steps` are the node's scenario events, due at their [`SimTime`]
/// offset from `start` (micros become wall-clock micros). `handle` is
/// the event-application hook — the threaded engine passes a closure
/// that wraps [`Participant::handle`] with the observability bridge;
/// an un-instrumented caller passes `|p, ev, _| p.handle(ev)`. Its
/// third argument is the sending node for events received off the
/// transport and `None` for locally timed events, so instrumented
/// callers can emit receive-side causality events. Every emitted
/// [`Note`] (including those from desertion handling) is fed to
/// `note`.
///
/// Termination is idle-based: the loop exits once the timer queue is
/// empty and neither a message nor a local event has fired for
/// `idle_timeout` (the paper's §4.5 points at group membership
/// services for a production-grade rule). It also exits when the
/// transport reports [`RecvTimeoutError::Disconnected`].
pub fn drive_node<P, H, N>(
    port: &P,
    participant: &mut Participant,
    steps: Vec<(SimTime, Event)>,
    start: Instant,
    idle_timeout: Duration,
    handle: H,
    note: N,
) -> DriveSummary
where
    P: FifoPort<Event>,
    H: FnMut(&mut Participant, Event, Option<caex_net::NodeId>) -> Vec<Effect>,
    N: FnMut(Note),
{
    drive_node_until(port, participant, steps, start, idle_timeout, None, handle, note)
}

/// Like [`drive_node`], but with an optional crash deadline.
///
/// When `halt_at` is set, the loop stops abruptly the first time it
/// observes `Instant::now() >= halt_at` — no farewell messages, no
/// draining of pending local steps — which is how the threaded engine
/// injects a mid-resolution crash (the in-process analogue of
/// `SIGKILL` in `caex-wire`). Messages still in the inbox are drained
/// into the per-kind drop statistics as usual, so [`caex_net::NetStats`]
/// stays balanced.
#[allow(clippy::too_many_arguments)]
pub fn drive_node_until<P, H, N>(
    port: &P,
    participant: &mut Participant,
    steps: Vec<(SimTime, Event)>,
    start: Instant,
    idle_timeout: Duration,
    halt_at: Option<Instant>,
    mut handle: H,
    mut note: N,
) -> DriveSummary
where
    P: FifoPort<Event>,
    H: FnMut(&mut Participant, Event, Option<caex_net::NodeId>) -> Vec<Effect>,
    N: FnMut(Note),
{
    let mut queue: BinaryHeap<TimedEvent> = BinaryHeap::new();
    for (seq, (time, event)) in steps.into_iter().enumerate() {
        queue.push(TimedEvent {
            due: start + Duration::from_micros(time.as_micros()),
            seq: seq as u64,
            event,
        });
    }
    let mut summary = DriveSummary::default();
    let mut seq = u64::MAX / 2;
    let mut last_activity = Instant::now();
    loop {
        if halt_at.is_some_and(|h| Instant::now() >= h) {
            break; // injected crash: stop mid-protocol, no farewell
        }
        // Fire due local events first.
        let now = Instant::now();
        let mut effects = Vec::new();
        while queue.peek().is_some_and(|t| t.due <= now) {
            let t = queue.pop().expect("peeked");
            effects.extend(handle(participant, t.event, None));
            last_activity = Instant::now();
        }
        // Then wait briefly for a message.
        let mut wait = queue
            .peek()
            .map(|t| t.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(10))
            .min(Duration::from_millis(10));
        if let Some(h) = halt_at {
            wait = wait.min(h.saturating_duration_since(Instant::now()));
        }
        match port.recv_timeout(wait) {
            Ok((from, event)) => {
                effects.extend(handle(participant, event, Some(from)));
                last_activity = Instant::now();
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Fold failure-detector reports into the protocol. Suspicions
        // first (informational), then rejoins (commit re-forwarding),
        // then confirmations (exclusion) — so a peer that flapped and
        // died in one poll window is handled in causal order.
        for peer in port.take_suspected() {
            effects.extend(participant.on_suspect(peer));
            last_activity = Instant::now();
        }
        for peer in port.take_rejoined() {
            effects.extend(participant.on_rejoin(peer));
            last_activity = Instant::now();
        }
        for peer in port.take_crashed() {
            effects.extend(participant.on_deserter(peer));
            summary.deserted += 1;
            last_activity = Instant::now();
        }
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    port.send(to, Event::Msg(msg));
                }
                Effect::After { delay, event } => {
                    seq += 1;
                    queue.push(TimedEvent {
                        due: Instant::now() + Duration::from_micros(delay.as_micros()),
                        seq,
                        event,
                    });
                }
                Effect::Note(n) => note(n),
            }
        }
        if queue.is_empty() && last_activity.elapsed() > idle_timeout {
            break;
        }
    }
    summary.drained = port.drain_undelivered();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedStrategy;
    use caex_action::{ActionRegistry, ActionScope};
    use caex_net::{NodeId, ThreadNet};
    use caex_tree::{chain_tree, Exception, ExceptionId};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn two_nodes_resolve_over_the_generic_loop() {
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level(
                "A",
                (0..2).map(NodeId::new),
                tree,
            ))
            .unwrap();
        let registry = Arc::new(reg);
        let net: ThreadNet<Event> = ThreadNet::new(2);
        let ports = net.into_ports();
        let start = Instant::now();
        let mut joins = Vec::new();
        for port in ports {
            let registry = Arc::clone(&registry);
            joins.push(thread::spawn(move || {
                let id = FifoPort::<Event>::id(&port);
                let mut p = Participant::new(id, registry, NestedStrategy::Abort);
                let mut steps = vec![(SimTime::ZERO, Event::Enter(a))];
                if id == NodeId::new(0) {
                    steps.push((
                        SimTime::from_millis(1),
                        Event::Raise(Exception::new(ExceptionId::new(1))),
                    ));
                }
                let mut notes = Vec::new();
                drive_node(
                    &port,
                    &mut p,
                    steps,
                    start,
                    Duration::from_millis(150),
                    |p, ev, _| p.handle(ev),
                    |n| notes.push(n),
                );
                notes
            }));
        }
        let all: Vec<Note> = joins
            .into_iter()
            .flat_map(|j| j.join().expect("node thread"))
            .collect();
        let handled = all
            .iter()
            .filter(|n| matches!(n, Note::HandlerStarted { .. }))
            .count();
        assert_eq!(handled, 2, "both objects handled the resolved exception");
    }
}
