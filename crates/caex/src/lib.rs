//! Distributed resolution of concurrent exceptions in nested CA
//! actions — a Rust reproduction of *Exception Handling and Resolution
//! in Distributed Object-Oriented Systems* (A. Romanovsky, J. Xu and
//! B. Randell; Newcastle TR 542, ICDCS 1996).
//!
//! When several objects cooperating inside a **coordinated atomic (CA)
//! action** raise exceptions concurrently, someone has to decide which
//! single exception the whole action recovers from. The paper's
//! algorithm does this with `O(N²)` messages: raisers broadcast
//! `Exception`, objects caught inside nested actions announce
//! `HaveNested`, abort innermost-first and report `NestedCompleted`
//! (possibly signalling an abortion exception), everything is
//! acknowledged, and the highest-numbered raiser resolves the collected
//! set against the action's **exception tree** and broadcasts `Commit`.
//!
//! # Pseudocode-to-code map
//!
//! Every clause of the paper's §4.2 algorithm has a direct counterpart
//! in [`Participant`] (`crates/caex/src/participant.rs`):
//!
//! | §4.2 pseudocode | implementation |
//! |---|---|
//! | `S(Oi) := N; empty LE, LO, LP, SA` | `Participant::new` (the `N` state is `res == None`) |
//! | `if Oi enters A then <A> → SA; process messages having arrived` | `on_enter` (pushes `entered`, drains the belated-message buffer) |
//! | `if Oi completes A then delete last element in SA; leave A synchronously` | `on_complete` / `on_leave_granted` (exit line + joint leave, centralized or `LeaveReady`-distributed) |
//! | `if Ei is raised in Oi then S(Oi) := X; <A,Oi,Ei> → LE; Exception ⇒ all Oj in G_A` | `on_raise` → `raise_in` |
//! | `if Oi receives Exception or HaveNested then if Oi is in the action nested within A then HaveNested ⇒ all; abort all nested actions until A; empty LE, LO, LP; NestedCompleted(A,Oi,Ei) ⇒ all; …` | the trigger check in `on_msg` → `trigger_abortion` (innermost-first handler execution, §4.1 signal masking, `Wait` strategy variant) → `on_abortion_done` |
//! | `if Oi received Exception then <A,Oj,Ej> → LE; ACK ⇒ Oj` | the `Msg::Exception` arm of `on_msg` (ACK deferred while aborting, per Example 2's narration) |
//! | `else <Oj, A> → LO; clean up messages related to nested actions` | the `Msg::HaveNested` arm (buffered messages of actions nested in `A` dropped) |
//! | `if Oi receives NestedCompleted then ACK ⇒ Oj; if Ej ≠ null then <A,Oj,Ej> → LE` | the `Msg::NestedCompleted` arm |
//! | `if Oi receives ACK then <Oj> → LP` | the `Msg::Ack` arm (`pending_acks` is the complement of `LP`) |
//! | `if S(Oi) = X and NestedCompleted from all in LO and ACK from all in G_A then S(Oi) := R` | the guard in `check_ready` |
//! | `if S(Oi) = R and Oi has the biggest number among all objects that raised exceptions then resolve LE; commit(E) ⇒ all; start handler` | the election + resolve + fan-out in `check_ready` (generalised to resolver groups) |
//! | `if Oi receives commit(E) then empty LE, LO, LP; start handler for E` | `accept_commit` (duplicates absorbed as stale) |
//!
//! # Crate layout
//!
//! - [`Participant`] — the §4.2 state machine (states `N/X/S/R`, lists
//!   `LE/LO/LP`, stack `SA`), pure and transport-agnostic;
//! - [`Scenario`]/[`RunReport`] — scripted executions over the
//!   deterministic [`caex_net::SimNet`] simulator;
//! - [`ThreadRunner`](thread_engine::ThreadRunner) — the same machine on
//!   real threads over crossbeam channels;
//! - [`workloads`] — the paper's canonical workloads (§4.4 cases, §4.3
//!   examples);
//! - [`analysis`] — the closed-form §4.4 message-count laws;
//! - [`cr`] — the Campbell–Randell 1986 baseline the paper improves on.
//!
//! # Quick example
//!
//! Example 1 of the paper (§4.3): three objects, two concurrent
//! exceptions, the higher-numbered raiser resolves.
//!
//! ```
//! use caex::workloads;
//! use caex_net::NodeId;
//!
//! let (workload, ids) = workloads::example1(Default::default());
//! let report = workload.run();
//!
//! let resolution = report.resolution_for(ids.a1).unwrap();
//! assert_eq!(resolution.resolver, NodeId::new(2));
//! assert!(report.is_clean());
//! // §4.4 case-style accounting: every message is counted by kind.
//! assert_eq!(report.messages_of("commit"), 2);
//! ```


pub mod analysis;
pub mod arche;
pub mod central;
pub mod codec;
pub mod cr;
pub mod drive;
pub mod explore;
pub mod obs;
pub mod program;
pub mod shard;
pub mod thread_engine;
pub mod timeline;
pub mod workloads;

mod effect;
mod engine;
mod message;
mod participant;

pub use effect::{Effect, LeaveMode, NestedStrategy, Note};
pub use engine::{HandlerStart, ResolutionRecord, RunReport, Scenario};
pub use message::{Event, Msg};
pub use obs::ObsBridge;
pub use participant::{PState, Participant, Silence};
