//! Canonical workload generators: the exact scenarios of the paper's
//! analysis (§4.4) and worked examples (§4.3), parameterised.
//!
//! Every experiment in `EXPERIMENTS.md` builds its scenarios through
//! this module so that tests, examples and benches agree on what
//! "case 1/2/3", "the general (N, P, Q) workload", "Example 1" and
//! "Example 2 / Fig. 4" mean.

use crate::Scenario;
use caex_action::{AbortionOutcome, ActionId, ActionRegistry, ActionScope, HandlerTable};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use std::sync::Arc;

/// A built canonical workload: the scenario plus the ids needed to
/// interrogate the report.
#[derive(Debug)]
pub struct Workload {
    /// The ready-to-run scenario.
    pub scenario: Scenario,
    /// The action resolution is expected to run in.
    pub action: ActionId,
    /// The declared participants of that action.
    pub participants: Vec<NodeId>,
}

impl Workload {
    /// Runs the scenario and returns the report.
    #[must_use]
    pub fn run(self) -> crate::RunReport {
        self.scenario.run()
    }

    /// Enables or disables resolver failover — passthrough to
    /// [`Scenario::with_failover`].
    #[must_use]
    pub fn with_failover(mut self, enabled: bool) -> Self {
        self.scenario = self.scenario.with_failover(enabled);
        self
    }

    /// Sets the failure-detector latency — passthrough to
    /// [`Scenario::with_detection_delay`].
    #[must_use]
    pub fn with_detection_delay(mut self, delay: caex_net::SimTime) -> Self {
        self.scenario = self.scenario.with_detection_delay(delay);
        self
    }
}

/// Builds the general §4.4 workload: `n` participants of one top-level
/// action; the first `q` objects each sit in their own nested action;
/// the last `p` objects raise distinct exceptions concurrently. The
/// raiser and nested sets are disjoint, as in the paper's counting.
///
/// Executed message count must equal
/// [`messages_general(n, p, q)`](crate::analysis::messages_general).
///
/// # Panics
///
/// Panics unless `1 ≤ p` and `p + q ≤ n`.
///
/// # Examples
///
/// ```
/// use caex::{analysis, workloads};
///
/// let report = workloads::general(5, 2, 1, Default::default()).run();
/// assert_eq!(report.total_messages(), analysis::messages_general(5, 2, 1));
/// ```
#[must_use]
pub fn general(n: u32, p: u32, q: u32, config: NetConfig) -> Workload {
    general_at(n, p, q, 0, 0, config)
}

/// [`general`], relocated to `node_base`/`action_base` offsets: nodes
/// are `node_base..node_base+n` and action ids start at `action_base`.
/// Distinct bases give a fleet of independent instances disjoint node
/// and `(ActionId, round)` key spaces, so one engine process can
/// multiplex many of them (see [`crate::shard`]).
///
/// # Panics
///
/// Panics unless `1 ≤ p` and `p + q ≤ n`.
#[must_use]
pub fn general_at(
    n: u32,
    p: u32,
    q: u32,
    node_base: u32,
    action_base: u32,
    config: NetConfig,
) -> Workload {
    assert!(p >= 1, "at least one raiser");
    assert!(p + q <= n, "raisers and nested objects must be disjoint");
    let tree = Arc::new(chain_tree(p));
    let mut registry = ActionRegistry::with_base(action_base);
    let top = registry
        .declare(ActionScope::top_level(
            "top",
            (node_base..node_base + n).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("top-level declaration is valid");
    let nested: Vec<ActionId> = (0..q)
        .map(|i| {
            registry
                .declare(ActionScope::nested(
                    format!("nested-{i}"),
                    [NodeId::new(node_base + i)],
                    Arc::clone(&tree),
                    top,
                ))
                .expect("singleton nested declaration is valid")
        })
        .collect();

    let mut scenario = Scenario::new(Arc::new(registry))
        .with_config(config)
        .enter_all_at(SimTime::ZERO, top);
    for (i, &na) in nested.iter().enumerate() {
        scenario = scenario.enter_at(SimTime::from_micros(1), NodeId::new(node_base + i as u32), na);
    }
    // The last p objects raise e1..ep concurrently, before any
    // Exception message can arrive (default latency >> 2us).
    for j in 0..p {
        let raiser = NodeId::new(node_base + n - 1 - j);
        let exc = Exception::new(ExceptionId::new(j + 1)).with_origin(format!("{raiser}"));
        scenario = scenario.raise_at(SimTime::from_micros(2), raiser, exc);
    }
    Workload {
        scenario,
        action: top,
        participants: (node_base..node_base + n).map(NodeId::new).collect(),
    }
}

/// §4.4 case 1: one exception, no nested actions.
#[must_use]
pub fn case1(n: u32, config: NetConfig) -> Workload {
    general(n, 1, 0, config)
}

/// §4.4 case 2: one exception, every other object in a nested action.
#[must_use]
pub fn case2(n: u32, config: NetConfig) -> Workload {
    general(n, 1, n - 1, config)
}

/// §4.4 case 3: all `n` objects raise simultaneously.
#[must_use]
pub fn case3(n: u32, config: NetConfig) -> Workload {
    general(n, n, 0, config)
}

/// §3.3 Figure 3: `A1 = {O0..O3} ⊃ A2 = {O2,O3} ⊃ A3 = {O3}` with `O1`
/// raising `e1` in `A1` — the topology whose five open problems the
/// paper's algorithm solves (see `tests/fig3_problems.rs` for the
/// per-problem assertions).
///
/// # Examples
///
/// ```
/// use caex::{analysis, workloads};
///
/// let report = workloads::fig3(Default::default()).run();
/// // P = 1 raiser, Q = 2 nested objects, N = 4.
/// assert_eq!(report.total_messages(), analysis::messages_general(4, 1, 2));
/// ```
#[must_use]
pub fn fig3(config: NetConfig) -> Workload {
    let tree = Arc::new(chain_tree(6));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(2), NodeId::new(3)],
            Arc::clone(&tree),
            a1,
        ))
        .expect("valid");
    let a3 = reg
        .declare(ActionScope::nested(
            "A3",
            [NodeId::new(3)],
            Arc::clone(&tree),
            a2,
        ))
        .expect("valid");
    let scenario = Scenario::new(Arc::new(reg))
        .with_config(config)
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(3), a2)
        .enter_at(SimTime::from_micros(2), NodeId::new(3), a3)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(1),
            Exception::new(ExceptionId::new(1)).with_origin("O1"),
        );
    Workload {
        scenario,
        action: a1,
        participants: (0..4).map(NodeId::new).collect(),
    }
}

/// Ids used by the worked examples of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExampleIds {
    /// Action A1 (outermost).
    pub a1: ActionId,
    /// Action A2 (Example 2 only; equals `a1` in Example 1).
    pub a2: ActionId,
    /// Action A3 (Example 2 only; equals `a1` in Example 1).
    pub a3: ActionId,
    /// Exception E1.
    pub e1: ExceptionId,
    /// Exception E2.
    pub e2: ExceptionId,
    /// Exception E3.
    pub e3: ExceptionId,
}

/// §4.3 Example 1: objects `O1 O2 O3` in action `A1`; `E1` and `E2`
/// raised concurrently in `O1` and `O2`. `O2` (the bigger name) must
/// resolve.
///
/// # Examples
///
/// ```
/// use caex::workloads;
/// use caex_net::NodeId;
///
/// let (workload, ids) = workloads::example1(Default::default());
/// let report = workload.run();
/// let r = report.resolution_for(ids.a1).unwrap();
/// assert_eq!(r.resolver, NodeId::new(2));
/// ```
#[must_use]
pub fn example1(config: NetConfig) -> (Workload, ExampleIds) {
    let tree = Arc::new(chain_tree(3));
    let mut registry = ActionRegistry::new();
    let a1 = registry
        .declare(ActionScope::top_level(
            "A1",
            (1..=3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    let (e1, e2, e3) = (
        ExceptionId::new(1),
        ExceptionId::new(2),
        ExceptionId::new(3),
    );
    let scenario = Scenario::new(Arc::new(registry))
        .with_config(config)
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(1),
            Exception::new(e1).with_origin("O1"),
        )
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(2),
            Exception::new(e2).with_origin("O2"),
        );
    (
        Workload {
            scenario,
            action: a1,
            participants: (1..=3).map(NodeId::new).collect(),
        },
        ExampleIds {
            a1,
            a2: a1,
            a3: a1,
            e1,
            e2,
            e3,
        },
    )
}

/// §4.3 Example 2 / Fig. 4: `O1..O4` in `A1 ⊃ A2 ⊃ A3` with
/// `A2 = {O2,O3,O4}` and `A3 = {O2,O3}`, `O3` belated for `A3`.
/// `E1` raised in `O1` (within `A1`) and `E2` in `O2` (within `A3`)
/// simultaneously; `O2`'s abortion handler for `A2` signals `E3`.
/// The resolution started in `A3` must be eliminated; `O2` resolves
/// `{E1, E3}` in `A1`.
///
/// # Examples
///
/// ```
/// use caex::workloads;
/// use caex_net::NodeId;
///
/// let (workload, ids) = workloads::example2(Default::default());
/// let report = workload.run();
/// let r = report.resolution_for(ids.a1).unwrap();
/// assert_eq!(r.resolver, NodeId::new(2));
/// // E2 was forgotten with the eliminated nested resolution:
/// assert!(r.raised.iter().all(|(_, e)| e.id() != ids.e2));
/// ```
#[must_use]
pub fn example2(config: NetConfig) -> (Workload, ExampleIds) {
    let tree = Arc::new(chain_tree(3));
    let (e1, e2, e3) = (
        ExceptionId::new(1),
        ExceptionId::new(2),
        ExceptionId::new(3),
    );
    let mut registry = ActionRegistry::new();
    let a1 = registry
        .declare(ActionScope::top_level(
            "A1",
            (1..=4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    let a2 = registry
        .declare(ActionScope::nested(
            "A2",
            (2..=4).map(NodeId::new),
            Arc::clone(&tree),
            a1,
        ))
        .expect("valid");
    let a3 = registry
        .declare(ActionScope::nested(
            "A3",
            [NodeId::new(2), NodeId::new(3)],
            Arc::clone(&tree),
            a2,
        ))
        .expect("valid");

    // O2's abortion handler for A2 signals E3 (the paper's premise).
    // Declared as data so the model checker can explore the signal
    // without executing a closure.
    let mut o2_a2 = HandlerTable::recover_all(Arc::clone(&tree));
    o2_a2.on_abort_outcome(
        SimTime::from_micros(5),
        AbortionOutcome::Signal(Exception::new(e3).with_origin("O2 abortion handler of A2")),
    );

    let scenario = Scenario::new(Arc::new(registry))
        .with_config(config)
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(3), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(4), a2)
        .enter_at(SimTime::from_micros(2), NodeId::new(2), a3)
        // O3 is belated for A3: its entry is scheduled long after the
        // resolution will have aborted A3, so it never takes effect.
        .enter_at(SimTime::from_millis(10_000), NodeId::new(3), a3)
        .handlers(NodeId::new(2), a2, o2_a2)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(1),
            Exception::new(e1).with_origin("O1"),
        )
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(2),
            Exception::new(e2).with_origin("O2"),
        );
    (
        Workload {
            scenario,
            action: a1,
            participants: (1..=4).map(NodeId::new).collect(),
        },
        ExampleIds {
            a1,
            a2,
            a3,
            e1,
            e2,
            e3,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one raiser")]
    fn general_requires_a_raiser() {
        let _ = general(3, 0, 0, NetConfig::default());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn general_requires_disjoint_sets() {
        let _ = general(3, 2, 2, NetConfig::default());
    }

    #[test]
    fn workload_exposes_participants() {
        let w = case1(4, NetConfig::default());
        assert_eq!(w.participants.len(), 4);
    }
}
