//! The participant state machine — a direct transcription of the
//! resolution algorithm of §4.2.
//!
//! A [`Participant`] is a *pure* state machine: it consumes [`Event`]s
//! (protocol messages or local scenario steps) and emits [`Effect`]s
//! (messages to send, continuations to schedule, report notes). It never
//! touches a network itself, which makes every clause of the algorithm
//! unit-testable and lets the same machine run on the discrete-event
//! simulator or on real threads.
//!
//! State names follow the paper: `N` (normal, represented by the absence
//! of a resolution context), `X` (exceptional), `S` (suspended) and `R`
//! (ready), with the lists `LE`, `LO`, `LP` and the context stack `SA`.

use crate::{Effect, Event, LeaveMode, Msg, NestedStrategy, Note};
use caex_action::{AbortionOutcome, ActionId, ActionRegistry, HandlerOutcome, HandlerTable};
use caex_net::{NodeId, SimTime};
use caex_tree::{Exception, ExceptionId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// The paper's participant states (the `N` state is represented by the
/// participant having no active resolution context).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PState {
    /// `X`: an exception was raised in this object (or signalled by its
    /// abortion handlers).
    Exceptional,
    /// `S`: the object learnt of exceptions elsewhere and suspended.
    Suspended,
    /// `R`: exceptional and all acknowledgements/abortions are in.
    Ready,
}

/// One in-progress resolution at this participant.
#[derive(Debug, Clone)]
struct Resolution {
    /// The action the resolution runs in (the paper's `A`).
    action: ActionId,
    state: PState,
    /// `LE`: raised exceptions known here, as (raiser, occurrence).
    le: Vec<(NodeId, Exception)>,
    /// Exceptions raised by peers that have since deserted. They no
    /// longer vote in the resolver election (a dead max-raiser can
    /// never commit), but they stay in the *resolved* set: the
    /// re-elected resolver resolves the full gossiped raised set, so
    /// its decision agrees with any commit the dead resolver managed to
    /// deliver before crashing.
    ghost_le: Vec<(NodeId, Exception)>,
    /// `LO`: objects aborting nested actions, and whether their
    /// `NestedCompleted` has arrived.
    lo: BTreeMap<NodeId, bool>,
    /// Complement of `LP`: peers whose ACK for our own broadcast is
    /// still outstanding.
    pending_acks: BTreeSet<NodeId>,
    /// Abortion of our nested actions is still executing.
    aborting: bool,
    /// ACKs owed for messages received while aborting; sent after our
    /// `NestedCompleted` (Example 2's narration order; FIFO per channel
    /// keeps the protocol correct either way).
    deferred_acks: Vec<NodeId>,
    /// Report-only: the deserted resolver this resolution lost, if the
    /// failure detector pruned the max raiser mid-resolution. Read when
    /// the re-run election elects a survivor (it then notes
    /// [`Note::ResolverReelected`]); never consulted by the protocol.
    lost_resolver: Option<NodeId>,
}

impl Resolution {
    fn new(action: ActionId, state: PState) -> Self {
        Resolution {
            action,
            state,
            le: Vec::new(),
            ghost_le: Vec::new(),
            lo: BTreeMap::new(),
            pending_acks: BTreeSet::new(),
            aborting: false,
            deferred_acks: Vec::new(),
            lost_resolver: None,
        }
    }

    /// The full raised set — live raisers' entries followed by the
    /// deserted raisers' retained ones — that resolution runs over.
    fn raised_set(&self) -> Vec<(NodeId, Exception)> {
        let mut raised = self.le.clone();
        raised.extend(self.ghost_le.iter().cloned());
        raised
    }
}

/// How robustly invisible a message delivery would be — see
/// [`Participant::delivery_silence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Silence {
    /// Silent against every co-enabled transition: the premise is
    /// monotone (stale sets only grow, the ready guard is re-evaluated
    /// on the merged state) and nothing is sent.
    Always,
    /// Silent only while nothing else is poised to act on this node:
    /// the premise reads the node's disposition (active action, parked
    /// resolution), which a co-enabled local continuation, leave
    /// grant, scripted event, or a delivery of a `Commit` or another
    /// action's message could flip first.
    WhenNodeIdle,
}

/// A participating object of one or more (nested) CA actions, executing
/// the §4.2 algorithm. See the crate documentation for the protocol
/// overview and the field comments for the paper's data structures.
pub struct Participant {
    id: NodeId,
    registry: Arc<ActionRegistry>,
    handlers: HashMap<ActionId, HandlerTable>,
    /// `SA`: entered actions, outermost first; the last is the *active*
    /// action.
    entered: Vec<ActionId>,
    aborted: HashSet<ActionId>,
    completed: HashSet<ActionId>,
    /// Actions whose resolution committed here, with the committed
    /// exception — kept so a crash-orphaned peer that probes after the
    /// resolver deserted can be answered with the outcome.
    resolved: HashMap<ActionId, Exception>,
    /// Messages for actions this object has not yet entered (belated
    /// participation, §3.3 problem 4).
    buffered: HashMap<ActionId, Vec<Msg>>,
    /// Completions requested while a deeper action was still at its
    /// exit line; replayed as the nesting unwinds.
    deferred_completes: HashSet<ActionId>,
    res: Option<Resolution>,
    strategy: NestedStrategy,
    /// For [`NestedStrategy::Wait`]: remaining run time of each nested
    /// action; `None` means it can never complete (e.g. it waits on a
    /// belated participant) — the Fig. 1(a) deadlock.
    nested_remaining: HashMap<ActionId, Option<SimTime>>,
    /// Invalidates stale `AbortionDone` continuations after an outer
    /// resolution overrides an in-progress abortion.
    abort_epoch: u64,
    /// §4.4 fault-tolerance extension: the `k` highest-numbered raisers
    /// all resolve and commit (k = 1 is the paper's base algorithm).
    resolver_group: u32,
    /// Centralized or decentralized synchronized leave.
    leave_mode: LeaveMode,
    /// Distributed leave: actions whose exit line this object reached.
    leave_requested: HashSet<ActionId>,
    /// Distributed leave: peers' `LeaveReady` announcements per action.
    leave_ready: HashMap<ActionId, BTreeSet<NodeId>>,
    /// Peers reported crashed by the transport's failure detector;
    /// permanently excluded from every peer set (see [`Self::on_deserter`]).
    deserters: HashSet<NodeId>,
    /// Peers the transport's accrual detector currently *suspects*
    /// (silence past the suspicion threshold, not yet confirmed dead).
    /// Unlike `deserters` this set shrinks again when the peer is heard
    /// from ([`Self::on_rejoin`]); a suspect keeps all its obligations.
    suspects: HashSet<NodeId>,
    /// Resolutions that committed here while some participant was
    /// suspected: the suspects that may have missed the commit, per
    /// action. Drained by [`Self::on_rejoin`]'s commit-forwarding round.
    missed_commits: HashMap<ActionId, BTreeSet<NodeId>>,
    /// Actions whose orphaned resolution context this object discarded
    /// (`stand_down_if_orphaned`) without learning the outcome. A
    /// forwarded `Commit` for such an action is still accepted — the
    /// close of the p = 1 partial-commit hole.
    stood_down: HashSet<ActionId>,
    /// Actions whose committed resolution was re-broadcast once in
    /// answer to a crash-orphaned peer's probe; at most one announce
    /// per action keeps the recovery traffic bounded.
    recovery_announced: HashSet<ActionId>,
    /// Resolver failover (default on). When off, the machine is the
    /// paper's literal §4.2 algorithm: desertion reports are recorded
    /// but trigger no re-election, no recovery probing and no zombie
    /// fencing — the legacy configuration the model checker's CAEX018
    /// flags as crash-vulnerable.
    failover: bool,
}

impl fmt::Debug for Participant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Participant")
            .field("id", &self.id)
            .field("entered", &self.entered)
            .field("state", &self.state())
            .finish()
    }
}

impl Participant {
    /// Creates a participant executing with the given strategy for
    /// nested actions caught by an outer exception (the paper's
    /// algorithm is [`NestedStrategy::Abort`]).
    #[must_use]
    pub fn new(id: NodeId, registry: Arc<ActionRegistry>, strategy: NestedStrategy) -> Self {
        Participant {
            id,
            registry,
            handlers: HashMap::new(),
            entered: Vec::new(),
            aborted: HashSet::new(),
            completed: HashSet::new(),
            resolved: HashMap::new(),
            buffered: HashMap::new(),
            deferred_completes: HashSet::new(),
            res: None,
            strategy,
            nested_remaining: HashMap::new(),
            abort_epoch: 0,
            resolver_group: 1,
            leave_mode: LeaveMode::default(),
            leave_requested: HashSet::new(),
            leave_ready: HashMap::new(),
            deserters: HashSet::new(),
            suspects: HashSet::new(),
            missed_commits: HashMap::new(),
            stood_down: HashSet::new(),
            recovery_announced: HashSet::new(),
            failover: true,
        }
    }

    /// Selects centralized (default) or decentralized synchronized
    /// leave (§4's "centralized or decentralized manager").
    pub fn set_leave_mode(&mut self, mode: LeaveMode) {
        self.leave_mode = mode;
    }

    /// Enables or disables resolver failover (on by default). With
    /// failover off, [`Self::on_deserter`] only records the deserter —
    /// no obligation waiving, no re-election, no recovery probing, no
    /// commit fencing — reproducing the paper's literal §4.2 machine,
    /// which assumes the elected resolver stays alive.
    pub fn set_failover(&mut self, enabled: bool) {
        self.failover = enabled;
    }

    /// Whether resolver failover is enabled.
    #[must_use]
    pub fn failover(&self) -> bool {
        self.failover
    }

    /// Sets the resolver-group size `k` (§4.4: "the algorithm can be
    /// easily extended to the use of a group of objects that are
    /// responsible for performing resolution and producing the commit
    /// messages. This only contributes a constant factor"). The `k`
    /// highest-numbered raisers each resolve and commit; participants
    /// accept the first commit and absorb duplicates as stale.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn set_resolver_group(&mut self, k: u32) {
        assert!(k >= 1, "resolver group must contain at least one object");
        self.resolver_group = k;
    }

    /// This object's identity (also its rank in resolver election).
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Installs this participant's handler table for `action`. Absent
    /// tables default to [`HandlerTable::recover_all`] at first use.
    pub fn set_handlers(&mut self, action: ActionId, table: HandlerTable) {
        self.handlers.insert(action, table);
    }

    /// Declares how much longer `action` would run (used only by the
    /// [`NestedStrategy::Wait`] comparison strategy); `None` marks an
    /// action that can never complete — e.g. one with a belated
    /// participant.
    pub fn set_nested_remaining(&mut self, action: ActionId, remaining: Option<SimTime>) {
        self.nested_remaining.insert(action, remaining);
    }

    /// The currently active (innermost entered) action, if any.
    #[must_use]
    pub fn active_action(&self) -> Option<ActionId> {
        self.entered.last().copied()
    }

    /// The current state in the paper's terms; `None` is the `N` state.
    #[must_use]
    pub fn state(&self) -> Option<PState> {
        self.res.as_ref().map(|r| r.state)
    }

    /// `true` while no resolution involves this object.
    #[must_use]
    pub fn is_normal(&self) -> bool {
        self.res.is_none()
    }

    /// The action of the current resolution context, if any.
    #[must_use]
    pub fn resolution_action(&self) -> Option<ActionId> {
        self.res.as_ref().map(|r| r.action)
    }

    /// `true` while this object is still aborting (or, under the wait
    /// strategy, waiting out) its nested actions.
    #[must_use]
    pub fn is_aborting(&self) -> bool {
        self.res.as_ref().is_some_and(|r| r.aborting)
    }

    /// The exceptions currently in `LE` (raiser, occurrence).
    #[must_use]
    pub fn known_exceptions(&self) -> Vec<(NodeId, Exception)> {
        self.res.as_ref().map(|r| r.le.clone()).unwrap_or_default()
    }

    /// `true` once `action` completed normally at this object.
    #[must_use]
    pub fn has_completed(&self, action: ActionId) -> bool {
        self.completed.contains(&action)
    }

    /// `true` once `action` was aborted at this object.
    #[must_use]
    pub fn has_aborted(&self, action: ActionId) -> bool {
        self.aborted.contains(&action)
    }

    fn handler_table(&mut self, action: ActionId) -> &mut HandlerTable {
        let registry = &self.registry;
        self.handlers.entry(action).or_insert_with(|| {
            let tree = registry
                .scope(action)
                .expect("handler lookup for undeclared action")
                .tree()
                .clone();
            HandlerTable::recover_all(tree)
        })
    }

    fn peers(&self, action: ActionId) -> Vec<NodeId> {
        let mut peers = self
            .registry
            .scope(action)
            .expect("peers of undeclared action")
            .peers_of(self.id);
        peers.retain(|p| !self.deserters.contains(p));
        peers
    }

    /// The peers reported so far via [`Self::on_deserter`].
    #[must_use]
    pub fn deserters(&self) -> Vec<NodeId> {
        let mut d: Vec<NodeId> = self.deserters.iter().copied().collect();
        d.sort_unstable();
        d
    }

    /// The peers currently suspected (reported via [`Self::on_suspect`]
    /// and not yet cleared by [`Self::on_rejoin`] or promoted by
    /// [`Self::on_deserter`]).
    #[must_use]
    pub fn suspects(&self) -> Vec<NodeId> {
        let mut s: Vec<NodeId> = self.suspects.iter().copied().collect();
        s.sort_unstable();
        s
    }

    /// Feeds a canonical digest of this participant's protocol-visible
    /// state — `SA`, `LE`, `LO`, pending acknowledgements, buffered
    /// belated messages, abortion progress, leave bookkeeping and
    /// deserters — into `h`.
    ///
    /// Unordered containers are sorted first, so two participants in
    /// the same protocol state always digest identically regardless of
    /// the insertion history that produced it. The model checker in
    /// `caex-lint` uses this for state canonicalization when
    /// enumerating message interleavings; run-constant configuration
    /// (strategy, resolver group, handler tables) is deliberately
    /// excluded.
    pub fn protocol_digest<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        fn sorted<T: Copy + Ord>(set: &HashSet<T>) -> Vec<T> {
            let mut v: Vec<T> = set.iter().copied().collect();
            v.sort_unstable();
            v
        }
        self.id.hash(h);
        self.entered.hash(h);
        sorted(&self.aborted).hash(h);
        sorted(&self.completed).hash(h);
        let mut resolved: Vec<(ActionId, ExceptionId)> =
            self.resolved.iter().map(|(a, e)| (*a, e.id())).collect();
        resolved.sort_unstable();
        resolved.hash(h);
        sorted(&self.recovery_announced).hash(h);
        sorted(&self.stood_down).hash(h);
        sorted(&self.suspects).hash(h);
        let mut missed: Vec<(ActionId, &BTreeSet<NodeId>)> =
            self.missed_commits.iter().map(|(a, s)| (*a, s)).collect();
        missed.sort_unstable_by_key(|(a, _)| *a);
        missed.hash(h);
        sorted(&self.deferred_completes).hash(h);
        let mut buffered: Vec<(ActionId, &Vec<Msg>)> = self.buffered.iter().map(|(a, m)| (*a, m)).collect();
        buffered.sort_unstable_by_key(|(a, _)| *a);
        buffered.hash(h);
        match &self.res {
            None => 0u8.hash(h),
            Some(r) => {
                1u8.hash(h);
                r.action.hash(h);
                (match r.state {
                    PState::Exceptional => 1u8,
                    PState::Suspended => 2,
                    PState::Ready => 3,
                })
                .hash(h);
                // `LE` and the deferred-ACK list are hashed as
                // *multisets*: reception order never changes future
                // behaviour (election and resolution sort or fold over
                // them), so two interleavings that delivered the same
                // messages in different orders canonicalize to one
                // state. This is what makes exhaustive interleaving
                // enumeration over broadcast storms tractable.
                let mut le: Vec<&(NodeId, Exception)> = r.le.iter().collect();
                le.sort_unstable_by_key(|(raiser, e)| (*raiser, e.id()));
                le.hash(h);
                let mut ghost: Vec<&(NodeId, Exception)> = r.ghost_le.iter().collect();
                ghost.sort_unstable_by_key(|(raiser, e)| (*raiser, e.id()));
                ghost.hash(h);
                r.lo.hash(h);
                r.pending_acks.hash(h);
                r.aborting.hash(h);
                let mut deferred = r.deferred_acks.clone();
                deferred.sort_unstable();
                deferred.hash(h);
            }
        }
        self.abort_epoch.hash(h);
        sorted(&self.leave_requested).hash(h);
        let mut leave_ready: Vec<(ActionId, &BTreeSet<NodeId>)> =
            self.leave_ready.iter().map(|(a, s)| (*a, s)).collect();
        leave_ready.sort_unstable_by_key(|(a, _)| *a);
        leave_ready.hash(h);
        sorted(&self.deserters).hash(h);
    }

    /// A deep copy of the full protocol state, for checker state-space
    /// exploration. Returns `None` when any handler table holds opaque
    /// closures (the model checker skips such scenarios up front, so
    /// its worlds always clone).
    #[must_use]
    pub fn clone_declarative(&self) -> Option<Participant> {
        let mut handlers = HashMap::with_capacity(self.handlers.len());
        for (&action, table) in &self.handlers {
            handlers.insert(action, table.clone_declarative()?);
        }
        Some(Participant {
            id: self.id,
            registry: Arc::clone(&self.registry),
            handlers,
            entered: self.entered.clone(),
            aborted: self.aborted.clone(),
            completed: self.completed.clone(),
            resolved: self.resolved.clone(),
            buffered: self.buffered.clone(),
            deferred_completes: self.deferred_completes.clone(),
            res: self.res.clone(),
            strategy: self.strategy,
            nested_remaining: self.nested_remaining.clone(),
            abort_epoch: self.abort_epoch,
            resolver_group: self.resolver_group,
            leave_mode: self.leave_mode,
            leave_requested: self.leave_requested.clone(),
            leave_ready: self.leave_ready.clone(),
            deserters: self.deserters.clone(),
            suspects: self.suspects.clone(),
            missed_commits: self.missed_commits.clone(),
            stood_down: self.stood_down.clone(),
            recovery_announced: self.recovery_announced.clone(),
            failover: self.failover,
        })
    }

    /// Whether delivering `msg` here provably has no protocol-visible
    /// effect beyond consuming the message (and possibly replying an
    /// order-independent ACK): stale cleanup that cannot trigger the
    /// crash-recovery `Commit` rebroadcast, an ACK whose removal from
    /// `pending_acks` cannot complete the §4.2 ready predicate, a
    /// duplicate raise, or resolution traffic to a *parked* resolution
    /// that can never (re-)enter the election.
    ///
    /// Model-checking support: such a delivery commutes with the
    /// co-enabled transitions its [`Silence`] level names, so the
    /// checker in `caex-lint` applies it immediately instead of
    /// branching over its interleavings (a τ-confluence reduction).
    /// The predicate is deliberately conservative: anything it cannot
    /// prove silent counts as visible. Two load-bearing exclusions: an
    /// *aborting* resolution later re-extends `pending_acks` in
    /// [`Event::AbortionDone`], so ACK removals do not commute across
    /// it; and a message for an unentered action is buffered, where
    /// arrival order decides the replay order at entry.
    #[must_use]
    pub fn delivery_silence(&self, msg: &Msg) -> Option<Silence> {
        let action = msg.action();
        if self.failover && self.deserters.contains(&msg.sender()) {
            // Fenced at the top of `on_msg`: a message speaking for a
            // reported deserter is discarded with a note and mutates
            // nothing. Monotone premise: `deserters` only grows.
            return Some(Silence::Always);
        }
        if self.suspects.contains(&msg.sender()) {
            // Proof of life: the delivery clears the sender's
            // suspicion (and may forward an owed commit) no matter
            // what the message itself says — never silent.
            return None;
        }
        if self.resolved.contains_key(&action) {
            // Stale post-commit traffic — silent unless it is about to
            // trigger the recovery rebroadcast in `on_msg`. The
            // staleness premise is monotone: `resolved` never shrinks
            // and `recovery_announced` only gains members.
            let announces = !self.deserters.is_empty()
                && !self.recovery_announced.contains(&action)
                && matches!(
                    msg,
                    Msg::Exception { .. } | Msg::HaveNested { .. } | Msg::NestedCompleted { .. }
                );
            return (!announces).then_some(Silence::Always);
        }
        if self.aborted.contains(&action) || self.completed.contains(&action) {
            // Cleaned up with a note, nothing else; an aborted or
            // completed action can never be re-entered (`on_enter`
            // skips belated entries), so the premise is monotone.
            return Some(Silence::Always);
        }
        if !self.entered.contains(&action) {
            return None; // buffered: arrival order is replay order
        }
        if let Some(res) = &self.res {
            if res.action != action
                && !self
                    .registry
                    .is_nested_within(res.action, action)
                    .unwrap_or(true)
            {
                // Stale note for an eliminated nested action — but only
                // while the eliminating outer resolution is still in
                // place: a co-enabled `Commit` would clear it and turn
                // this into live traffic.
                return Some(Silence::WhenNodeIdle);
            }
        }
        if let Msg::Ack { from, .. } = msg {
            let silent = match &self.res {
                None => true,                              // dropped
                Some(res) if res.action != action => true, // ignored
                Some(res) => {
                    !res.aborting
                        && !(res.state == PState::Exceptional
                            && res.lo.values().all(|&done| done)
                            && res.pending_acks.iter().all(|p| p == from))
                }
            };
            // Robust: the ready guard is re-evaluated after every
            // mutation, so both orders of this removal and any
            // co-enabled step judge the guard on the merged state.
            return silent.then_some(Silence::Always);
        }
        // A duplicate (raiser, class) exception — a crash-recovery
        // probe retransmission — changes nothing and sends no ACK,
        // provided it cannot first trigger the §4.2 abortion
        // announcement (active action already at the resolution level).
        if let Msg::Exception { from, exc, .. } = msg {
            if let Some(res) = &self.res {
                if res.action == action
                    && self.active_action() == Some(action)
                    && res.le.iter().any(|(r, e)| r == from && e.id() == exc.id())
                {
                    return Some(Silence::WhenNodeIdle);
                }
            }
        }
        // Two further classes, both premised on `res` staying in place
        // (the checker's node-idle guard bails on any co-enabled step
        // that could clear or replace it):
        //
        // **Parked.** A parked resolution can never (re-)enter the
        // election: `check_ready` demands the `Exceptional` state, and
        // nothing leads back there — a raise needs `res == None`, an
        // abortion signal needs `aborting`, and `trigger_abortion`
        // replaces the context wholesale. So once this object is
        // Suspended with its abortion done, or Ready after losing the
        // election, incoming resolution traffic only mutates
        // `LE`/`LO`/`pending_acks` bookkeeping that no election will
        // ever read, and any ACK it replies with has an
        // order-independent payload.
        //
        // **Aborting.** While the abortion handlers run, an incoming
        // `Exception` or `NestedCompleted` only merges into
        // `LE`/`LO` (canonical sets) and queues a deferred ACK.
        // Against the pending `AbortionDone` continuation both orders
        // converge: delivered before, the ACK drains right after the
        // `NestedCompleted` broadcast; delivered after, it is sent
        // directly — either way the reply channel reads
        // `[NestedCompleted, Ack]` and the ready guard is judged on
        // the merged state (`pending_acks` was just re-extended with
        // the full peer set, so no commit can fire in between). ACKs
        // themselves stay visible here: their removal does not commute
        // across that re-extension.
        //
        // `HaveNested` joins either class only when no declared action
        // nests within `action`: its buffered-message cleanup is
        // order-sensitive against late arrivals for those nested
        // actions.
        if let Some(res) = &self.res {
            if res.action == action && self.active_action() == Some(action) {
                let parked = !res.aborting && res.state != PState::Exceptional;
                let silent = match msg {
                    Msg::Exception { .. } | Msg::NestedCompleted { .. } => {
                        parked || res.aborting
                    }
                    Msg::HaveNested { .. } => {
                        (parked || res.aborting)
                            && self.registry.iter().all(|(b, _)| {
                                b == action
                                    || !self
                                        .registry
                                        .is_nested_within(b, action)
                                        .unwrap_or(true)
                            })
                    }
                    Msg::Ack { .. } | Msg::Commit { .. } | Msg::LeaveReady { .. } => false,
                };
                return silent.then_some(Silence::WhenNodeIdle);
            }
        }
        None
    }

    /// Excludes a crashed peer (a *deserter*) from the protocol.
    ///
    /// The §4.2 algorithm assumes participants do not crash; a real
    /// transport relaxes that with a heartbeat failure detector and
    /// reports timed-out peers here. The deserter is removed from every
    /// future peer set and all of its outstanding obligations are
    /// waived so resolution cannot block on it:
    ///
    /// - its pending ACK for our own broadcast is forgiven,
    /// - its `LO` entry (an abortion we were waiting to complete) is
    ///   dropped,
    /// - its raised exceptions are removed from `LE`, so the resolver
    ///   election re-runs over *live* raisers only (a dead max-raiser
    ///   can never commit),
    /// - a pending distributed leave no longer waits for it.
    ///
    /// If the removal leaves a suspended object with an empty `LE` (the
    /// only raiser deserted before any abortion traffic), the orphaned
    /// resolution context is discarded and the object resumes normal
    /// computation. Calling this again for the same peer is a no-op.
    ///
    /// With failover disabled ([`Self::set_failover`]), only the
    /// desertion itself is recorded: the paper's §4.2 machine has no
    /// failure-handling clause, so every obligation keeps waiting on
    /// the dead peer (the configuration CAEX018 proves crash-vulnerable).
    pub fn on_deserter(&mut self, peer: NodeId) -> Vec<Effect> {
        let mut fx = Vec::new();
        if peer == self.id || !self.deserters.insert(peer) {
            return fx;
        }
        // A confirmation subsumes any open suspicion of the same peer.
        self.suspects.remove(&peer);
        fx.push(Effect::Note(Note::Deserted {
            object: self.id,
            peer,
        }));
        if !self.failover {
            return fx;
        }
        // Commit forwarding: the deserter may have been a sole raiser
        // that committed to only part of the action before dying (the
        // p = 1 partial commit). A survivor already holding the
        // decision re-forwards it once, so orphans that stood down —
        // and will never send the traffic that triggers the stale-probe
        // rebroadcast — still converge on the committed exception.
        let mut forwards: Vec<(ActionId, Exception)> = self
            .resolved
            .iter()
            .filter(|(a, _)| {
                self.registry
                    .scope(**a)
                    .is_ok_and(|s| s.is_participant(peer))
            })
            .map(|(a, e)| (*a, e.clone()))
            .collect();
        forwards.sort_unstable_by_key(|(a, _)| *a);
        for (action, exc) in forwards {
            if !self.recovery_announced.insert(action) {
                continue;
            }
            for to in self.peers(action) {
                fx.push(Effect::Send {
                    to,
                    msg: Msg::Commit {
                        action,
                        from: self.id,
                        exc: exc.clone(),
                    },
                });
            }
        }
        if let Some(res) = &mut self.res {
            res.pending_acks.remove(&peer);
            res.lo.remove(&peer);
            // The deserter's raises move to the ghost list: they stop
            // voting in the election but stay in the resolved set (see
            // `Resolution::ghost_le`). If the deserter was the known
            // max raiser, this resolution just lost its elected
            // resolver — note it, and remember whom a survivor's
            // re-run election replaces.
            let was_resolver = res
                .le
                .iter()
                .map(|(raiser, _)| *raiser)
                .max()
                .is_some_and(|max| max == peer);
            let mut keep = Vec::with_capacity(res.le.len());
            for entry in res.le.drain(..) {
                if entry.0 == peer {
                    if !res
                        .ghost_le
                        .iter()
                        .any(|(r, e)| *r == entry.0 && e.id() == entry.1.id())
                    {
                        res.ghost_le.push(entry);
                    }
                } else {
                    keep.push(entry);
                }
            }
            res.le = keep;
            if was_resolver {
                res.lost_resolver = Some(peer);
                let action = res.action;
                fx.push(Effect::Note(Note::ResolverSuspected {
                    object: self.id,
                    action,
                    peer,
                }));
            }
            if res.state == PState::Ready {
                // A raiser parked in R was outranked — possibly by the
                // deserter. Return to X so the ready predicate re-runs
                // the election over the surviving raisers.
                res.state = PState::Exceptional;
            }
        }
        self.check_ready(&mut fx);
        // Still blocked mid-resolution after the cleanup and a possible
        // re-election? The deserter may have been the resolver, crashed
        // after informing only part of the action — the survivors that
        // got its commit are normal again and will never send another
        // word. Retransmit one known exception to each peer as a probe:
        // a peer still resolving treats it as duplicate traffic (LE and
        // ACK handling are idempotent), a peer that already committed
        // answers with the resolution and this object converges. One
        // entry suffices — any resolution traffic for the action
        // triggers the answer.
        if let Some(res) = &self.res {
            if !res.aborting {
                // Canonical choice (min raiser) so behaviour does not
                // depend on `LE` reception order.
                if let Some((raiser, exc)) =
                    res.le.iter().min_by_key(|(raiser, e)| (*raiser, e.id()))
                {
                    let action = res.action;
                    let (raiser, exc) = (*raiser, exc.clone());
                    for to in self.peers(action) {
                        fx.push(Effect::Send {
                            to,
                            msg: Msg::Exception {
                                action,
                                from: raiser,
                                exc: exc.clone(),
                            },
                        });
                    }
                }
            }
        }
        for action in self.leave_requested.clone() {
            self.try_distributed_leave(action, &mut fx);
        }
        fx
    }

    /// Records that the transport's accrual detector *suspects* `peer`
    /// (silence beyond the suspicion threshold φ, not yet confirmed).
    ///
    /// Unlike [`Self::on_deserter`] this changes no protocol state: a
    /// suspect keeps every obligation (its ACKs are still awaited, its
    /// raises still vote) because a latency spike or transient
    /// partition must not amputate a healthy peer. The suspicion is
    /// remembered so a commit fanned out in the meantime can be
    /// re-forwarded when the peer returns ([`Self::on_rejoin`]).
    pub fn on_suspect(&mut self, peer: NodeId) -> Vec<Effect> {
        let mut fx = Vec::new();
        if peer == self.id || self.deserters.contains(&peer) || !self.suspects.insert(peer) {
            return fx;
        }
        fx.push(Effect::Note(Note::PeerSuspected {
            object: self.id,
            peer,
        }));
        fx
    }

    /// Clears a suspicion: `peer` was heard from again (a suspicion
    /// flap — the partition healed, the latency spike passed).
    ///
    /// Runs the commit-forwarding round toward the returning peer: any
    /// resolution that committed here while `peer` was suspected is
    /// re-sent as a `Commit` directly to it, in case the original
    /// fan-out was swallowed by the partition. The duplicate-commit
    /// path absorbs the re-send idempotently if the peer already knows.
    pub fn on_rejoin(&mut self, peer: NodeId) -> Vec<Effect> {
        let mut fx = Vec::new();
        if !self.suspects.remove(&peer) {
            return fx;
        }
        fx.push(Effect::Note(Note::PeerRejoined {
            object: self.id,
            peer,
        }));
        if !self.failover {
            return fx;
        }
        let mut owed: Vec<ActionId> = self
            .missed_commits
            .iter()
            .filter(|(_, missed)| missed.contains(&peer))
            .map(|(a, _)| *a)
            .collect();
        owed.sort_unstable();
        for action in owed {
            if let Some(exc) = self.resolved.get(&action).cloned() {
                fx.push(Effect::Send {
                    to: peer,
                    msg: Msg::Commit {
                        action,
                        from: self.id,
                        exc,
                    },
                });
            }
            if let Some(missed) = self.missed_commits.get_mut(&action) {
                missed.remove(&peer);
                if missed.is_empty() {
                    self.missed_commits.remove(&action);
                }
            }
        }
        fx
    }

    /// Main entry point: consume one event, emit the resulting effects.
    ///
    /// # Panics
    ///
    /// Panics on scenario programming errors (entering an action whose
    /// parent is not active, raising outside any action) — the
    /// structural rules the paper assumes the runtime enforces.
    pub fn handle(&mut self, event: Event) -> Vec<Effect> {
        let mut fx = Vec::new();
        match event {
            Event::Enter(action) => self.on_enter(action, &mut fx),
            Event::Complete(action) => self.on_complete(action, &mut fx),
            Event::LeaveGranted(action) => self.on_leave_granted(action, &mut fx),
            Event::Raise(exc) => self.on_raise(exc, &mut fx),
            Event::Msg(msg) => self.on_msg(msg, &mut fx),
            Event::AbortionDone {
                action,
                signal,
                epoch,
            } => self.on_abortion_done(action, signal, epoch, &mut fx),
            Event::HandlerDone { action, signal } => self.on_handler_done(action, signal, &mut fx),
            Event::DeserterSuspected { peer } => fx.extend(self.on_deserter(peer)),
            Event::PeerSuspected { peer } => fx.extend(self.on_suspect(peer)),
            Event::PeerRejoined { peer } => fx.extend(self.on_rejoin(peer)),
        }
        fx
    }

    fn on_enter(&mut self, action: ActionId, fx: &mut Vec<Effect>) {
        if self.aborted.contains(&action) || self.completed.contains(&action) {
            // Belated entry into an action that was aborted (or already
            // completed) in the meantime — silently skipped, §4.1: "the
            // abortion handlers of other participating objects will not
            // have to wait for it".
            fx.push(Effect::Note(Note::EnterSkipped {
                object: self.id,
                action,
            }));
            return;
        }
        if self.res.is_some() {
            // A suspended or exceptional object takes no further part in
            // normal computation, so it cannot enter nested actions.
            fx.push(Effect::Note(Note::EnterSkipped {
                object: self.id,
                action,
            }));
            return;
        }
        let scope = self
            .registry
            .scope(action)
            .expect("entering undeclared action");
        assert!(
            scope.is_participant(self.id),
            "{} is not a participant of {action}",
            self.id
        );
        if scope.parent() != self.active_action() {
            // The containing action is no longer (or not yet) active —
            // e.g. a belated entry firing after the parent completed or
            // aborted. The entry is void.
            fx.push(Effect::Note(Note::EnterSkipped {
                object: self.id,
                action,
            }));
            return;
        }
        self.entered.push(action);
        fx.push(Effect::Note(Note::Entered {
            object: self.id,
            action,
        }));
        // Belated participation: messages that arrived before entry are
        // processed now ("the entire protocol execution for resolution
        // should be delayed", §3.3).
        if let Some(pending) = self.buffered.remove(&action) {
            for msg in pending {
                self.on_msg(msg, fx);
            }
        }
    }

    fn on_complete(&mut self, action: ActionId, fx: &mut Vec<Effect>) {
        if self.aborted.contains(&action) || self.completed.contains(&action) || self.res.is_some()
        {
            // An aborted action cannot complete; a suspended object's
            // completion is overtaken by the resolution; and a handler
            // may already have completed the action on the object's
            // behalf (termination model).
            return;
        }
        if self.active_action() != Some(action) {
            if self.entered.contains(&action) {
                // A deeper action is still at its own exit line; the
                // completion replays once the nesting unwinds.
                self.deferred_completes.insert(action);
                return;
            }
            panic!(
                "{} completing {action} which it never entered or already left",
                self.id
            );
        }
        // Leaving is synchronous: the object waits at the exit line
        // (remaining a reachable participant — it can still be drawn
        // into a resolution) until the joint leave is coordinated.
        fx.push(Effect::Note(Note::LeaveRequested {
            object: self.id,
            action,
        }));
        if self.leave_mode == LeaveMode::Distributed {
            self.leave_requested.insert(action);
            for to in self.peers(action) {
                fx.push(Effect::Send {
                    to,
                    msg: Msg::LeaveReady {
                        from: self.id,
                        action,
                    },
                });
            }
            self.try_distributed_leave(action, fx);
        }
    }

    /// Distributed leave: leaves once this object reached the exit line
    /// and every peer's announcement is in.
    fn try_distributed_leave(&mut self, action: ActionId, fx: &mut Vec<Effect>) {
        if !self.leave_requested.contains(&action) || self.res.is_some() {
            return;
        }
        let peers = self.peers(action);
        let ready = self.leave_ready.entry(action).or_default();
        if peers.iter().all(|p| ready.contains(p)) {
            self.on_leave_granted(action, fx);
        }
    }

    fn on_leave_granted(&mut self, action: ActionId, fx: &mut Vec<Effect>) {
        if self.aborted.contains(&action)
            || self.completed.contains(&action)
            || self.res.is_some()
            || self.active_action() != Some(action)
        {
            // Overtaken by a resolution (whose handlers complete the
            // action) or by an abortion: the grant is void.
            return;
        }
        self.entered.pop();
        self.completed.insert(action);
        fx.push(Effect::Note(Note::Completed {
            object: self.id,
            action,
        }));
        // Replay a completion that was waiting for this unwind.
        if let Some(next) = self.active_action() {
            if self.deferred_completes.remove(&next) {
                self.on_complete(next, fx);
            }
        }
    }

    fn on_raise(&mut self, exc: Exception, fx: &mut Vec<Effect>) {
        if self.res.is_some() {
            // §4.1: "only one such exception can be raised within Action
            // A_i" per object, and suspended objects raise nothing.
            fx.push(Effect::Note(Note::RaiseSuppressed {
                object: self.id,
                exc,
            }));
            return;
        }
        let Some(action) = self.active_action() else {
            // The enclosing action already completed (termination
            // model): a raise scheduled for after its end has nothing
            // to land in.
            fx.push(Effect::Note(Note::RaiseSuppressed {
                object: self.id,
                exc,
            }));
            return;
        };
        self.raise_in(action, exc, fx);
    }

    /// Shared raise path: local raises and failure signals into the
    /// containing action.
    fn raise_in(&mut self, action: ActionId, exc: Exception, fx: &mut Vec<Effect>) {
        let mut res = Resolution::new(action, PState::Exceptional);
        res.le.push((self.id, exc.clone()));
        let peers = self.peers(action);
        res.pending_acks = peers.iter().copied().collect();
        self.res = Some(res);
        fx.push(Effect::Note(Note::Raised {
            object: self.id,
            action,
            exc: exc.clone(),
        }));
        if !peers.is_empty() {
            fx.push(Effect::Note(Note::Multicast {
                object: self.id,
                kind: "exception",
            }));
        }
        for to in peers {
            fx.push(Effect::Send {
                to,
                msg: Msg::Exception {
                    action,
                    from: self.id,
                    exc: exc.clone(),
                },
            });
        }
        self.check_ready(fx);
    }

    fn on_msg(&mut self, msg: Msg, fx: &mut Vec<Effect>) {
        let action = msg.action();
        // Zombie fencing: once the failure detector reported a peer
        // dead, nothing it says counts any more. In particular a
        // resumed (SIGCONT) or restarted resolver's late `Commit` must
        // not double-commit or split the decision the survivors have
        // re-resolved without it.
        if self.failover && self.deserters.contains(&msg.sender()) {
            fx.push(Effect::Note(Note::StaleMessage {
                object: self.id,
                msg,
            }));
            return;
        }
        // Proof of life: a protocol message from a merely *suspected*
        // peer clears the suspicion before the message is interpreted,
        // so a commit triggered by this very message cannot count its
        // own sender as a suspect that "missed" it. Any commit the
        // peer genuinely missed while suspected is forwarded here.
        if self.suspects.contains(&msg.sender()) {
            let rejoin = self.on_rejoin(msg.sender());
            fx.extend(rejoin);
        }
        if let Some(exc) = self.resolved.get(&action).cloned() {
            // The resolution here already committed. A peer still
            // sending resolution traffic for it missed the commit —
            // typically because the resolver crashed after informing
            // only part of the action. Once the failure detector has
            // reported a deserter, re-broadcast the committed exception
            // so every orphan converges instead of blocking forever
            // (the message's `from` names the original raiser, not the
            // possibly different retransmitting peer, so only a
            // broadcast is guaranteed to reach whoever is blocked);
            // without any desertion the traffic is merely late and is
            // cleaned up silently (§3.3 problem 4).
            if self.failover
                && !self.deserters.is_empty()
                && matches!(
                    msg,
                    Msg::Exception { .. } | Msg::HaveNested { .. } | Msg::NestedCompleted { .. }
                )
                && self.recovery_announced.insert(action)
            {
                for to in self.peers(action) {
                    fx.push(Effect::Send {
                        to,
                        // `from` is this live object: the original
                        // resolver is a deserter and its commits are
                        // fenced, so the rebroadcast vouches for the
                        // outcome under the survivor's own identity.
                        msg: Msg::Commit {
                            action,
                            from: self.id,
                            exc: exc.clone(),
                        },
                    });
                }
            }
            fx.push(Effect::Note(Note::StaleMessage {
                object: self.id,
                msg,
            }));
            return;
        }
        if self.aborted.contains(&action) || self.completed.contains(&action) {
            // Messages of an eliminated nested resolution are cleaned
            // up, §3.3 problem 4.
            fx.push(Effect::Note(Note::StaleMessage {
                object: self.id,
                msg,
            }));
            return;
        }
        if !self.entered.contains(&action) {
            // Belated participant: hold the message until entry.
            self.buffered.entry(action).or_default().push(msg);
            return;
        }
        if let Some(res) = &self.res {
            if res.action != action && !self.registry.is_nested_within(res.action, action).unwrap()
            {
                // A message for an action nested within (or unrelated
                // to) the resolution we are already committed to: stale.
                fx.push(Effect::Note(Note::StaleMessage {
                    object: self.id,
                    msg,
                }));
                return;
            }
        }

        // §4.2: on Exception or HaveNested, an object whose active action
        // is nested within A first announces and starts the abortion of
        // its nested actions.
        if matches!(msg, Msg::Exception { .. } | Msg::HaveNested { .. })
            && self.active_action() != Some(action)
        {
            self.trigger_abortion(action, fx);
        }

        match msg {
            Msg::Exception { from, exc, .. } => {
                let res = self.ensure_res(action);
                // Idempotent: a crash-recovery probe retransmits known
                // exceptions, so the same (raiser, class) may arrive
                // more than once. A duplicate changes nothing and is
                // not re-acknowledged: channels are reliable, so the
                // first delivery's ACK (to the same raiser) already
                // covers this object in `pending_acks`.
                if !res.le.iter().any(|(r, e)| *r == from && e.id() == exc.id()) {
                    res.le.push((from, exc));
                    if res.aborting {
                        res.deferred_acks.push(from);
                    } else {
                        fx.push(Effect::Send {
                            to: from,
                            msg: Msg::Ack {
                                from: self.id,
                                action,
                            },
                        });
                    }
                }
            }
            Msg::HaveNested { from, .. } => {
                let res = self.ensure_res(action);
                res.lo.entry(from).or_insert(false);
                // "clean up messages related to nested actions": the
                // sender is aborting everything below `action`, so any
                // held messages for those actions are void.
                let registry = Arc::clone(&self.registry);
                let doomed: Vec<ActionId> = self
                    .buffered
                    .keys()
                    .copied()
                    .filter(|&b| registry.is_nested_within(b, action).unwrap_or(false))
                    .collect();
                for b in doomed {
                    self.buffered.remove(&b);
                    self.aborted.insert(b);
                    fx.push(Effect::Note(Note::CleanedNestedMessages {
                        object: self.id,
                        action: b,
                    }));
                }
            }
            Msg::NestedCompleted { from, exc, .. } => {
                let res = self.ensure_res(action);
                res.lo.insert(from, true);
                if let Some(exc) = exc {
                    if !res.le.iter().any(|(r, e)| *r == from && e.id() == exc.id()) {
                        res.le.push((from, exc));
                    }
                }
                if res.aborting {
                    res.deferred_acks.push(from);
                } else {
                    fx.push(Effect::Send {
                        to: from,
                        msg: Msg::Ack {
                            from: self.id,
                            action,
                        },
                    });
                }
            }
            Msg::Ack { from, .. } => {
                if let Some(res) = &mut self.res {
                    if res.action == action {
                        res.pending_acks.remove(&from);
                    }
                }
            }
            Msg::Commit { from, exc, .. } => {
                self.accept_commit(action, from, exc, fx);
                return;
            }
            Msg::LeaveReady { from, .. } => {
                self.leave_ready.entry(action).or_default().insert(from);
                self.try_distributed_leave(action, fx);
                return;
            }
        }
        self.check_ready(fx);
    }

    /// The abortion procedure of §4.1: announce with `HaveNested`,
    /// execute abortion handlers innermost-first (taking virtual time),
    /// honour only the signal of the action directly nested in the
    /// resolving action, and discard any nested resolution in progress.
    fn trigger_abortion(&mut self, outer: ActionId, fx: &mut Vec<Effect>) {
        debug_assert!(self.entered.contains(&outer));
        if !self.peers(outer).is_empty() {
            fx.push(Effect::Note(Note::Multicast {
                object: self.id,
                kind: "have_nested",
            }));
        }
        for to in self.peers(outer) {
            fx.push(Effect::Send {
                to,
                msg: Msg::HaveNested {
                    from: self.id,
                    action: outer,
                },
            });
        }
        // Innermost-first chain of entered actions strictly below
        // `outer`.
        let pos = self
            .entered
            .iter()
            .position(|&a| a == outer)
            .expect("outer action is entered");
        let chain: Vec<ActionId> = self.entered[pos + 1..].iter().rev().copied().collect();
        self.entered.truncate(pos + 1);

        // The nested resolution (if any) is eliminated: "empty LE_i,
        // LO_i, LP_i". A fresh context for the outer action replaces it.
        let mut res = Resolution::new(outer, PState::Suspended);
        res.aborting = true;
        self.res = Some(res);
        self.abort_epoch += 1;
        let epoch = self.abort_epoch;

        let mut total_cost = SimTime::ZERO;
        let mut signal: Option<Exception> = None;
        match self.strategy {
            NestedStrategy::Abort => {
                let count = chain.len();
                for (idx, nested) in chain.iter().copied().enumerate() {
                    self.aborted.insert(nested);
                    self.buffered.remove(&nested);
                    let (outcome, cost) = self.handler_table(nested).invoke_abortion();
                    total_cost += cost;
                    if let AbortionOutcome::Signal(exc) = outcome {
                        // Only the *directly* nested action's signal may
                        // be raised in the resolving action (§4.1); the
                        // chain is innermost-first, so that is the last
                        // element.
                        if idx + 1 == count {
                            signal = Some(exc);
                        } else {
                            fx.push(Effect::Note(Note::DeepSignalIgnored {
                                object: self.id,
                                action: nested,
                                exc,
                            }));
                        }
                    }
                }
                fx.push(Effect::Note(Note::AbortedNested {
                    object: self.id,
                    outer,
                    chain: chain.clone(),
                }));
                fx.push(Effect::After {
                    delay: total_cost,
                    event: Event::AbortionDone {
                        action: outer,
                        signal,
                        epoch,
                    },
                });
            }
            NestedStrategy::Wait => {
                // Fig. 1(a): wait for the nested actions to complete
                // instead of aborting them. If any can never complete
                // (belated participant), no completion is ever scheduled
                // — the deadlock the paper argues against.
                let mut wait = SimTime::ZERO;
                let mut never = false;
                for nested in chain.iter().copied() {
                    match self
                        .nested_remaining
                        .get(&nested)
                        .copied()
                        .unwrap_or(Some(SimTime::ZERO))
                    {
                        Some(remaining) => wait = wait.max(remaining),
                        None => never = true,
                    }
                    self.completed.insert(nested);
                    self.buffered.remove(&nested);
                }
                fx.push(Effect::Note(Note::WaitingForNested {
                    object: self.id,
                    outer,
                    chain: chain.clone(),
                    forever: never,
                }));
                if !never {
                    fx.push(Effect::After {
                        delay: wait,
                        event: Event::AbortionDone {
                            action: outer,
                            signal: None,
                            epoch,
                        },
                    });
                }
            }
        }
    }

    fn on_abortion_done(
        &mut self,
        action: ActionId,
        signal: Option<Exception>,
        epoch: u64,
        fx: &mut Vec<Effect>,
    ) {
        if epoch != self.abort_epoch {
            return; // superseded by a more-outer abortion
        }
        let Some(res) = &mut self.res else { return };
        if res.action != action || !res.aborting {
            return;
        }
        res.aborting = false;
        let peers = self.peers(action);
        // NestedCompleted expects an ACK from every peer.
        let res = self.res.as_mut().expect("checked above");
        res.pending_acks.extend(peers.iter().copied());
        if !peers.is_empty() {
            fx.push(Effect::Note(Note::Multicast {
                object: self.id,
                kind: "nested_completed",
            }));
        }
        for &to in &peers {
            fx.push(Effect::Send {
                to,
                msg: Msg::NestedCompleted {
                    action,
                    from: self.id,
                    exc: signal.clone(),
                },
            });
        }
        for to in std::mem::take(&mut res.deferred_acks) {
            fx.push(Effect::Send {
                to,
                msg: Msg::Ack {
                    from: self.id,
                    action,
                },
            });
        }
        if let Some(exc) = signal {
            res.le.push((self.id, exc));
            res.state = PState::Exceptional;
        }
        self.check_ready(fx);
    }

    /// Failover stand-down: every raiser this object ever heard of has
    /// deserted (`LE` drained into the ghost list), it raised nothing
    /// itself, and nothing is left in flight — no live object can ever
    /// be elected, so no commit will ever arrive. Return to normal
    /// instead of waiting forever. Evaluated from [`Self::check_ready`]
    /// so it also fires when the blocking work (a nested abortion, an
    /// outstanding ACK) completes *after* the desertion was recorded.
    fn stand_down_if_orphaned(&mut self) {
        if !self.failover {
            return;
        }
        let Some(res) = &self.res else { return };
        if res.le.is_empty()
            && !res.ghost_le.is_empty()
            && res.pending_acks.is_empty()
            && res.lo.values().all(|&done| done)
            && res.state != PState::Exceptional
            && !res.aborting
        {
            // Remember the abandoned resolution: if some survivor got
            // the dead raiser's commit after all, its forwarded
            // `Commit` is still welcome (see `accept_commit`).
            self.stood_down.insert(res.action);
            self.res = None;
        }
    }

    /// The ready predicate of §4.2: `S(Oi) = X`, `NestedCompleted`
    /// received from every object in `LO`, and ACKs received from all of
    /// `G_A` for our own broadcast. The ready object with the biggest
    /// number among the raisers resolves and commits.
    fn check_ready(&mut self, fx: &mut Vec<Effect>) {
        self.stand_down_if_orphaned();
        let Some(res) = &mut self.res else { return };
        if res.state != PState::Exceptional
            || res.aborting
            || !res.pending_acks.is_empty()
            || !res.lo.values().all(|&done| done)
        {
            return;
        }
        // Resolver election: rank the distinct raisers descending; the
        // top `resolver_group` of them resolve (the paper's base
        // algorithm has a group of one — the max raiser).
        let mut raisers: Vec<NodeId> = res.le.iter().map(|(raiser, _)| *raiser).collect();
        raisers.sort_unstable();
        raisers.dedup();
        debug_assert!(
            !raisers.is_empty(),
            "an exceptional object has at least its own entry in LE"
        );
        let rank_from_top = raisers.iter().rev().position(|&r| r == self.id);
        let elected = rank_from_top.is_some_and(|rank| (rank as u32) < self.resolver_group);
        if !elected {
            res.state = PState::Ready;
            return;
        }
        // This object resolves. The resolved set is the *full* gossiped
        // raised set — live raisers plus any deserted raiser's retained
        // exceptions — so a failover resolver reaches the same decision
        // the dead original would have, and survivors that already got
        // the original's commit stay in agreement.
        let action = res.action;
        let raised = res.raised_set();
        if let Some(replaced) = res.lost_resolver.take() {
            fx.push(Effect::Note(Note::ResolverReelected {
                action,
                resolver: self.id,
                replaced,
            }));
        }
        let tree = self
            .registry
            .scope(action)
            .expect("resolving undeclared action")
            .tree()
            .clone();
        let resolved_id = tree
            .resolve(raised.iter().map(|(_, e)| e.id()))
            .expect("LE is non-empty and ids come from this tree");
        let resolved = Exception::new(resolved_id).with_origin(format!("resolver {}", self.id));
        fx.push(Effect::Note(Note::ResolutionCommitted {
            action,
            resolver: self.id,
            resolved: resolved.clone(),
            raised,
        }));
        if !self.peers(action).is_empty() {
            fx.push(Effect::Note(Note::Multicast {
                object: self.id,
                kind: "commit",
            }));
        }
        for to in self.peers(action) {
            fx.push(Effect::Send {
                to,
                msg: Msg::Commit {
                    action,
                    from: self.id,
                    exc: resolved.clone(),
                },
            });
        }
        self.accept_commit(action, self.id, resolved, fx);
    }

    /// Common commit path for the resolver itself and for `Commit`
    /// receivers: empty the lists and start the handler for `E`.
    fn accept_commit(&mut self, action: ActionId, from: NodeId, exc: Exception, fx: &mut Vec<Effect>) {
        // A stood-down orphan (every known raiser deserted before the
        // outcome arrived) resumed normal computation without the
        // resolution context; a commit forwarded by a better-informed
        // survivor still applies as long as the action is the active
        // one. This closes the p = 1 partial-commit hole: without it
        // the forwarded decision would bounce off as stale and the
        // orphan would complete normally while its peers handle an
        // exception.
        let resumable = self.failover
            && self.res.is_none()
            && self.stood_down.contains(&action)
            && self.active_action() == Some(action);
        if self.res.as_ref().map(|r| r.action) != Some(action) && !resumable {
            fx.push(Effect::Note(Note::StaleMessage {
                object: self.id,
                msg: Msg::Commit { action, from, exc },
            }));
            return;
        }
        self.stood_down.remove(&action);
        self.res = None;
        self.resolved.insert(action, exc.clone());
        // Suspected peers were not excluded from the fan-out (their
        // obligations stand), but a transient partition may well have
        // swallowed the commit on the wire: remember whom to re-send it
        // to when the detector reports them back (`on_rejoin`).
        if self.failover && !self.suspects.is_empty() {
            let missed: BTreeSet<NodeId> = self
                .peers(action)
                .into_iter()
                .filter(|p| self.suspects.contains(p))
                .collect();
            if !missed.is_empty() {
                self.missed_commits.insert(action, missed);
            }
        }
        let (outcome, cost) = self.handler_table(action).invoke(&exc);
        let signal = match outcome {
            HandlerOutcome::Recovered => None,
            HandlerOutcome::Signal(e) => Some(e),
        };
        fx.push(Effect::Note(Note::HandlerStarted {
            object: self.id,
            action,
            exc,
            will_signal: signal.clone(),
        }));
        fx.push(Effect::After {
            delay: cost,
            event: Event::HandlerDone { action, signal },
        });
    }

    fn on_handler_done(
        &mut self,
        action: ActionId,
        signal: Option<Exception>,
        fx: &mut Vec<Effect>,
    ) {
        // §4.1: aborting a nested action stops "any activity of the
        // nested action … including execution of any handlers". If an
        // outer resolution aborted `action` while its handler was still
        // running, this continuation is void.
        if self.aborted.contains(&action) || self.active_action() != Some(action) {
            return;
        }
        // The termination model: the handler completes the action.
        self.entered.pop();
        self.completed.insert(action);
        match signal {
            None => fx.push(Effect::Note(Note::Completed {
                object: self.id,
                action,
            })),
            Some(exc) => {
                let parent = self
                    .registry
                    .scope(action)
                    .expect("declared action")
                    .parent();
                fx.push(Effect::Note(Note::SignalledFailure {
                    object: self.id,
                    action,
                    exc: exc.clone(),
                }));
                match parent {
                    // Signalling between nested actions: the failure
                    // exception is raised within the containing action,
                    // starting a fresh resolution there.
                    Some(parent) => {
                        debug_assert_eq!(self.active_action(), Some(parent));
                        if self.res.is_some() {
                            // Already drawn into a resolution at the
                            // parent level; our signal merges into it
                            // only if we can still raise — otherwise it
                            // is recorded as suppressed.
                            fx.push(Effect::Note(Note::RaiseSuppressed {
                                object: self.id,
                                exc,
                            }));
                        } else {
                            self.raise_in(parent, exc, fx);
                        }
                    }
                    None => fx.push(Effect::Note(Note::ActionFailed {
                        object: self.id,
                        action,
                        exc,
                    })),
                }
            }
        }
    }

    fn ensure_res(&mut self, action: ActionId) -> &mut Resolution {
        if self.res.is_none() {
            self.res = Some(Resolution::new(action, PState::Suspended));
        }
        let res = self.res.as_mut().expect("just ensured");
        debug_assert_eq!(res.action, action, "resolution context action mismatch");
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_action::ActionScope;
    use caex_tree::{chain_tree, ExceptionId};

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    /// One top-level action A0 over `n` objects; returns participant 0.
    fn single_action(n: u32) -> (Participant, ActionId) {
        let tree = Arc::new(chain_tree(4));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level("A", ids(n), tree))
            .unwrap();
        let mut p = Participant::new(NodeId::new(0), Arc::new(reg), NestedStrategy::Abort);
        let fx = p.handle(Event::Enter(a));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::Entered { .. }))));
        (p, a)
    }

    fn sends(fx: &[Effect]) -> Vec<(&NodeId, &Msg)> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raise_broadcasts_and_enters_x() {
        let (mut p, _a) = single_action(3);
        let fx = p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        let sent = sends(&fx);
        assert_eq!(sent.len(), 2, "exception to both peers");
        assert!(sent.iter().all(|(_, m)| matches!(m, Msg::Exception { .. })));
        assert_eq!(p.state(), Some(PState::Exceptional));
    }

    #[test]
    fn receiving_exception_suspends_and_acks() {
        let (mut p, a) = single_action(3);
        let fx = p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert_eq!(p.state(), Some(PState::Suspended));
        let sent = sends(&fx);
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].1, Msg::Ack { .. }));
        assert_eq!(*sent[0].0, NodeId::new(1));
        assert_eq!(p.known_exceptions().len(), 1);
    }

    #[test]
    fn x_object_reaches_r_only_after_all_acks() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(1),
            action: a,
        }));
        assert_eq!(p.state(), Some(PState::Exceptional), "one ACK missing");
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(2),
            action: a,
        }));
        // O0 is never the max raiser when others exist? Here O0 is the
        // only raiser, so with all ACKs it resolves instead of parking
        // in R — its commit empties the context.
        assert!(p.is_normal());
    }

    #[test]
    fn non_max_raiser_parks_in_ready() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        // A concurrent raiser with a bigger id becomes known.
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(1),
            action: a,
        }));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(2),
            action: a,
        }));
        assert_eq!(p.state(), Some(PState::Ready), "O2 outranks O0");
    }

    #[test]
    fn stale_acks_from_other_actions_are_ignored() {
        let (mut p, _a) = single_action(2);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        // An ACK tagged with a different action must not count.
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(1),
            action: ActionId::new(99),
        }));
        assert_eq!(p.state(), Some(PState::Exceptional));
    }

    #[test]
    fn commit_starts_handler_and_returns_to_normal() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        let fx = p.handle(Event::Msg(Msg::Commit {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert!(p.is_normal());
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::HandlerStarted { .. }))));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::After {
                event: Event::HandlerDone { .. },
                ..
            }
        )));
    }

    #[test]
    fn commit_overtaking_acks_is_accepted_in_x_state() {
        // Asynchrony can deliver the resolver's Commit to a lower-
        // ranked raiser before that raiser collected all its own ACKs
        // (the paper's pseudocode only lists R and S, but X must accept
        // too). The object must adopt the commit rather than wait.
        let (mut p, a) = single_action(3);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        assert_eq!(p.state(), Some(PState::Exceptional));
        let fx = p.handle(Event::Msg(Msg::Commit {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(1)),
        }));
        assert!(p.is_normal());
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::HandlerStarted { .. }))));
    }

    #[test]
    fn nested_completed_without_prior_have_nested_is_tolerated() {
        // FIFO guarantees HaveNested precedes NestedCompleted on each
        // channel, but the handler is defensive: the LO entry is
        // created satisfied and the ACK still goes out.
        let (mut p, a) = single_action(3);
        let fx = p.handle(Event::Msg(Msg::NestedCompleted {
            action: a,
            from: NodeId::new(2),
            exc: None,
        }));
        assert_eq!(p.state(), Some(PState::Suspended));
        let sent = sends(&fx);
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].1, Msg::Ack { .. }));
    }

    #[test]
    fn ready_predicate_waits_for_nested_completions() {
        // An X object with all ACKs but an outstanding LO entry must
        // not resolve.
        let (mut p, a) = single_action(3);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        p.handle(Event::Msg(Msg::HaveNested {
            from: NodeId::new(1),
            action: a,
        }));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(1),
            action: a,
        }));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(2),
            action: a,
        }));
        // O1's NestedCompleted still missing: not ready, no commit.
        assert_eq!(p.state(), Some(PState::Exceptional));
        let fx = p.handle(Event::Msg(Msg::NestedCompleted {
            action: a,
            from: NodeId::new(1),
            exc: None,
        }));
        // Now ready; O0 is the only raiser, so it resolves.
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::ResolutionCommitted { .. }))));
    }

    #[test]
    fn duplicate_commit_is_stale() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        let commit = Msg::Commit {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        };
        p.handle(Event::Msg(commit.clone()));
        let fx = p.handle(Event::Msg(commit));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::StaleMessage { .. }))));
    }

    /// Nested structure: A0{O0,O1} ⊃ A1{O0} ⊃ A2{O0}; participant O0
    /// enters all three.
    fn nested_participant() -> (Participant, ActionId, ActionId, ActionId) {
        let tree = Arc::new(chain_tree(4));
        let mut reg = ActionRegistry::new();
        let a0 = reg
            .declare(ActionScope::top_level("A0", ids(2), Arc::clone(&tree)))
            .unwrap();
        let a1 = reg
            .declare(ActionScope::nested(
                "A1",
                [NodeId::new(0)],
                Arc::clone(&tree),
                a0,
            ))
            .unwrap();
        let a2 = reg
            .declare(ActionScope::nested("A2", [NodeId::new(0)], tree, a1))
            .unwrap();
        let mut p = Participant::new(NodeId::new(0), Arc::new(reg), NestedStrategy::Abort);
        p.handle(Event::Enter(a0));
        p.handle(Event::Enter(a1));
        p.handle(Event::Enter(a2));
        (p, a0, a1, a2)
    }

    #[test]
    fn outer_exception_triggers_innermost_first_abortion() {
        let (mut p, a0, a1, a2) = nested_participant();
        let fx = p.handle(Event::Msg(Msg::Exception {
            action: a0,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(1)),
        }));
        let chain = fx.iter().find_map(|e| match e {
            Effect::Note(Note::AbortedNested { chain, .. }) => Some(chain.clone()),
            _ => None,
        });
        assert_eq!(chain, Some(vec![a2, a1]));
        assert!(p.has_aborted(a1) && p.has_aborted(a2));
        assert_eq!(p.active_action(), Some(a0));
        // HaveNested went out; NestedCompleted is deferred behind the
        // AbortionDone continuation.
        let sent = sends(&fx);
        assert!(sent
            .iter()
            .all(|(_, m)| matches!(m, Msg::HaveNested { .. })));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::After {
                event: Event::AbortionDone { .. },
                ..
            }
        )));
    }

    #[test]
    fn abortion_done_sends_nested_completed_and_deferred_acks() {
        let (mut p, a0, ..) = nested_participant();
        let fx = p.handle(Event::Msg(Msg::Exception {
            action: a0,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(1)),
        }));
        let (signal, epoch) = fx
            .iter()
            .find_map(|e| match e {
                Effect::After {
                    event: Event::AbortionDone { signal, epoch, .. },
                    ..
                } => Some((signal.clone(), *epoch)),
                _ => None,
            })
            .expect("abortion scheduled");
        let fx = p.handle(Event::AbortionDone {
            action: a0,
            signal,
            epoch,
        });
        let sent = sends(&fx);
        // NestedCompleted first, then the deferred ACK for the
        // triggering Exception — both to O1, FIFO on that channel.
        assert!(matches!(sent[0].1, Msg::NestedCompleted { .. }));
        assert!(matches!(sent[1].1, Msg::Ack { .. }));
    }

    #[test]
    fn stale_abortion_epoch_is_ignored() {
        let (mut p, a0, ..) = nested_participant();
        p.handle(Event::Msg(Msg::Exception {
            action: a0,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(1)),
        }));
        let fx = p.handle(Event::AbortionDone {
            action: a0,
            signal: None,
            epoch: 0, // stale: the trigger bumped the epoch to 1
        });
        assert!(sends(&fx).is_empty(), "stale continuation must be inert");
    }

    #[test]
    fn messages_for_unentered_actions_are_buffered_until_entry() {
        let tree = Arc::new(chain_tree(4));
        let mut reg = ActionRegistry::new();
        let a0 = reg
            .declare(ActionScope::top_level("A0", ids(2), Arc::clone(&tree)))
            .unwrap();
        let a1 = reg
            .declare(ActionScope::nested("A1", ids(2), tree, a0))
            .unwrap();
        let mut p = Participant::new(NodeId::new(0), Arc::new(reg), NestedStrategy::Abort);
        p.handle(Event::Enter(a0));
        // Message for A1 arrives before entry: silence.
        let fx = p.handle(Event::Msg(Msg::Exception {
            action: a1,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert!(sends(&fx).is_empty());
        assert!(p.is_normal());
        // Entry releases the buffer: the ACK goes out now.
        let fx = p.handle(Event::Enter(a1));
        let sent = sends(&fx);
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].1, Msg::Ack { .. }));
        assert_eq!(p.state(), Some(PState::Suspended));
    }

    #[test]
    fn messages_for_aborted_actions_are_stale() {
        let (mut p, a0, _a1, a2) = nested_participant();
        p.handle(Event::Msg(Msg::Exception {
            action: a0,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(1)),
        }));
        // A2 is aborted; a late message for it is dropped.
        let fx = p.handle(Event::Msg(Msg::Exception {
            action: a2,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::StaleMessage { .. }))));
    }

    #[test]
    fn enter_while_suspended_is_skipped() {
        let tree = Arc::new(chain_tree(4));
        let mut reg = ActionRegistry::new();
        let a0 = reg
            .declare(ActionScope::top_level("A0", ids(2), Arc::clone(&tree)))
            .unwrap();
        let a1 = reg
            .declare(ActionScope::nested("A1", [NodeId::new(0)], tree, a0))
            .unwrap();
        let mut p = Participant::new(NodeId::new(0), Arc::new(reg), NestedStrategy::Abort);
        p.handle(Event::Enter(a0));
        p.handle(Event::Msg(Msg::Exception {
            action: a0,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(1)),
        }));
        let fx = p.handle(Event::Enter(a1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::EnterSkipped { .. }))));
        assert_eq!(p.active_action(), Some(a0));
    }

    #[test]
    fn complete_requests_leave_then_grant_pops() {
        let (mut p, a) = single_action(2);
        // Phase 1: the object reaches the exit line.
        let fx = p.handle(Event::Complete(a));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::LeaveRequested { .. }))));
        assert!(!p.has_completed(a), "leave is synchronous");
        assert_eq!(p.active_action(), Some(a));
        // Phase 2: the manager grants the joint leave.
        let fx = p.handle(Event::LeaveGranted(a));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::Completed { .. }))));
        assert!(p.has_completed(a));
        assert_eq!(p.active_action(), None);
    }

    #[test]
    fn waiting_at_the_exit_line_still_participates_in_resolution() {
        // The scenario that motivated synchronous leave: an object that
        // finished its work must remain reachable until everyone
        // leaves, so a late concurrent exception still suspends it.
        let (mut p, a) = single_action(2);
        p.handle(Event::Complete(a));
        let fx = p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(1)),
        }));
        assert_eq!(p.state(), Some(PState::Suspended));
        assert!(sends(&fx).iter().any(|(_, m)| matches!(m, Msg::Ack { .. })));
        // A stale grant arriving later is void: the resolution's
        // handler will complete the action instead.
        p.handle(Event::LeaveGranted(a));
        assert!(!p.has_completed(a));
    }

    #[test]
    fn completing_under_an_active_nested_action_defers() {
        let (mut p, _a0, a1, a2) = nested_participant();
        // A1's completion waits until A2 has left.
        p.handle(Event::Complete(a1));
        assert!(!p.has_completed(a1));
        p.handle(Event::Complete(a2));
        p.handle(Event::LeaveGranted(a2));
        // A2's unwind replays A1's deferred completion request.
        let fx = p.handle(Event::LeaveGranted(a1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::Completed { action, .. }) if *action == a1)));
    }

    #[test]
    #[should_panic(expected = "never entered or already left")]
    fn completing_unentered_action_panics() {
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a0 = reg
            .declare(ActionScope::top_level("A0", ids(2), Arc::clone(&tree)))
            .unwrap();
        let a1 = reg
            .declare(ActionScope::nested("A1", [NodeId::new(0)], tree, a0))
            .unwrap();
        let mut p = Participant::new(NodeId::new(0), Arc::new(reg), NestedStrategy::Abort);
        p.handle(Event::Enter(a0));
        // A1 was never entered — scenario bug.
        p.handle(Event::Complete(a1));
    }

    #[test]
    fn single_object_action_self_resolves() {
        let (mut p, _a) = single_action(1);
        let fx = p.handle(Event::Raise(Exception::new(ExceptionId::new(2))));
        assert!(sends(&fx).is_empty());
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Note(Note::ResolutionCommitted { resolver, .. }) if *resolver == NodeId::new(0)
        )));
        assert!(p.is_normal());
    }

    #[test]
    #[should_panic(expected = "resolver group must contain at least one object")]
    fn zero_resolver_group_rejected() {
        let (mut p, _a) = single_action(2);
        p.set_resolver_group(0);
    }

    #[test]
    fn deserter_ack_is_forgiven_and_resolution_completes() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(1),
            action: a,
        }));
        // O2 crashed before ACKing: without desertion the raiser would
        // wait forever.
        assert_eq!(p.state(), Some(PState::Exceptional));
        let fx = p.on_deserter(NodeId::new(2));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::Deserted { peer, .. }) if *peer == NodeId::new(2))));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::ResolutionCommitted { .. }))));
        // The commit fan-out excludes the deserter.
        let sent = sends(&fx);
        assert!(sent
            .iter()
            .all(|(to, _)| **to != NodeId::new(2)));
    }

    #[test]
    fn deserting_max_raiser_re_elects_a_live_resolver() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(1),
            action: a,
        }));
        p.handle(Event::Msg(Msg::Ack {
            from: NodeId::new(2),
            action: a,
        }));
        // O2 outranks O0, so O0 parked in R waiting for O2's commit.
        assert_eq!(p.state(), Some(PState::Ready));
        // O2 dies without committing: O0 must win the re-election.
        // (R is left behind by dropping O2 from LE; the ready predicate
        // re-runs over the live raisers.)
        let fx = p.on_deserter(NodeId::new(2));
        assert!(
            fx.iter()
                .any(|e| matches!(e, Effect::Note(Note::ResolutionCommitted { resolver, .. }) if *resolver == NodeId::new(0))),
            "surviving raiser must take over resolution: {fx:?}"
        );
    }

    #[test]
    fn suspended_object_drops_orphaned_resolution_on_desertion() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert_eq!(p.state(), Some(PState::Suspended));
        // The only raiser deserts: no commit can ever arrive.
        p.on_deserter(NodeId::new(2));
        assert!(p.is_normal());
    }

    #[test]
    fn duplicate_desertion_is_inert() {
        let (mut p, _a) = single_action(3);
        let first = p.on_deserter(NodeId::new(2));
        assert_eq!(first.len(), 1);
        let again = p.on_deserter(NodeId::new(2));
        assert!(again.is_empty());
        assert_eq!(p.deserters(), vec![NodeId::new(2)]);
    }

    #[test]
    fn suspicion_is_informational_and_confirmable() {
        let (mut p, a) = single_action(3);
        p.handle(Event::Raise(Exception::new(ExceptionId::new(1))));
        assert_eq!(p.state(), Some(PState::Exceptional));
        let fx = p.on_suspect(NodeId::new(1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::PeerSuspected { peer, .. }) if *peer == NodeId::new(1))));
        // A suspect keeps every obligation: the raiser still waits for
        // its ACK, no commit fires, no exclusion happens.
        assert_eq!(p.state(), Some(PState::Exceptional));
        assert_eq!(p.suspects(), vec![NodeId::new(1)]);
        assert!(p.on_suspect(NodeId::new(1)).is_empty(), "re-suspect is inert");
        // Confirmation subsumes the suspicion.
        p.on_deserter(NodeId::new(1));
        assert!(p.suspects().is_empty());
        assert_eq!(p.deserters(), vec![NodeId::new(1)]);
        // A confirmed deserter can no longer be suspected.
        assert!(p.on_suspect(NodeId::new(1)).is_empty());
        let _ = a;
    }

    #[test]
    fn stood_down_orphan_accepts_a_forwarded_commit() {
        // The p = 1 partial-commit hole: the sole raiser O2 committed
        // to part of the action and died; this object only ever held
        // O2's exception as a ghost and stood down. A commit forwarded
        // by a better-informed survivor must still be accepted.
        let (mut p, a) = single_action(3);
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        p.on_deserter(NodeId::new(2));
        assert!(p.is_normal(), "orphan stands down first");
        let fx = p.handle(Event::Msg(Msg::Commit {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert!(
            fx.iter()
                .any(|e| matches!(e, Effect::Note(Note::HandlerStarted { .. }))),
            "forwarded commit must start the handler, got {fx:?}"
        );
        // Idempotence: a second forward is absorbed as stale.
        let again = p.handle(Event::Msg(Msg::Commit {
            action: a,
            from: NodeId::new(1),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert!(again
            .iter()
            .all(|e| !matches!(e, Effect::Note(Note::HandlerStarted { .. }))));
    }

    #[test]
    fn survivor_holding_the_commit_forwards_it_on_desertion() {
        // This object got the sole raiser's commit before the crash; on
        // the desertion report it must re-forward the decision so
        // stood-down orphans converge.
        let (mut p, a) = single_action(3);
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        p.handle(Event::Msg(Msg::Commit {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        assert!(p.is_normal());
        let fx = p.on_deserter(NodeId::new(2));
        let sent = sends(&fx);
        assert!(
            sent.iter()
                .any(|(to, msg)| **to == NodeId::new(1) && matches!(msg, Msg::Commit { .. })),
            "commit must be forwarded to the surviving peer, got {sent:?}"
        );
        assert!(
            sent.iter().all(|(to, _)| **to != NodeId::new(2)),
            "never forwarded to the deserter itself"
        );
    }

    #[test]
    fn rejoining_suspect_receives_the_commit_it_missed() {
        let (mut p, a) = single_action(3);
        // O1 goes silent behind a partition; suspicion is raised.
        p.on_suspect(NodeId::new(1));
        // Meanwhile the resolution commits here.
        p.handle(Event::Msg(Msg::Exception {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        p.handle(Event::Msg(Msg::Commit {
            action: a,
            from: NodeId::new(2),
            exc: Exception::new(ExceptionId::new(2)),
        }));
        // The partition heals: the returning peer is owed the commit.
        let fx = p.on_rejoin(NodeId::new(1));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Note(Note::PeerRejoined { peer, .. }) if *peer == NodeId::new(1))));
        let sent = sends(&fx);
        assert_eq!(sent.len(), 1);
        assert!(matches!(
            sent[0],
            (to, Msg::Commit { .. }) if *to == NodeId::new(1)
        ));
        // The debt is settled: a second flap forwards nothing.
        p.on_suspect(NodeId::new(1));
        let again = p.on_rejoin(NodeId::new(1));
        assert!(sends(&again).is_empty());
    }
}
