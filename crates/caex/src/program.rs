//! A Result-based programming model over scenarios.
//!
//! The paper assumes a language with native exceptions; Rust signals
//! errors through `Result`. This module bridges the two: each
//! participating object's work inside a CA action is written as a
//! *program* of steps whose fallible steps return
//! `Result<(), Exception>` — an `Err` becomes a raise at the exact
//! virtual time the step executes. Programs compile down to a
//! [`Scenario`], so the full protocol machinery (resolution, nested
//! abortion, handlers) runs underneath.
//!
//! # Examples
//!
//! ```
//! use caex::program::ActionProgram;
//! use caex_action::{ActionRegistry, ActionScope};
//! use caex_net::{NodeId, SimTime};
//! use caex_tree::{chain_tree, Exception, ExceptionId};
//! use std::sync::Arc;
//!
//! let tree = Arc::new(chain_tree(3));
//! let mut reg = ActionRegistry::new();
//! let job = reg.declare(ActionScope::top_level(
//!     "job", (0..3).map(NodeId::new), Arc::clone(&tree),
//! )).unwrap();
//!
//! let mut program = ActionProgram::new(Arc::new(reg), job);
//! program
//!     .object(NodeId::new(0))
//!     .work(SimTime::from_micros(100))
//!     .check(|| Ok(()))                       // fine
//!     .work(SimTime::from_micros(50))
//!     .complete();
//! program
//!     .object(NodeId::new(1))
//!     .work(SimTime::from_micros(80))
//!     .check(|| Err(Exception::new(ExceptionId::new(1))))  // fails!
//!     .complete();
//! program
//!     .object(NodeId::new(2))
//!     .work(SimTime::from_micros(200))
//!     .complete();
//!
//! let report = program.run();
//! // Object 1's Err became a raise; the action resolved it everywhere.
//! assert_eq!(report.resolutions.len(), 1);
//! assert_eq!(report.handlers_for(job).len(), 3);
//! ```

use crate::{RunReport, Scenario};
use caex_action::{ActionId, ActionRegistry, HandlerTable};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::Exception;
use std::collections::HashMap;
use std::sync::Arc;

enum Step {
    Work(SimTime),
    Check(Box<dyn FnOnce() -> Result<(), Exception> + Send>),
    Raise(Exception),
    Enter(ActionId),
    Leave(ActionId),
    Complete,
}

/// A statically inspectable view of one program step, exposed through
/// [`ActionProgram::steps_of`] so analysis passes (e.g. `caex-lint`)
/// can examine a program without executing it.
///
/// `Check` closures are opaque: whether one fails is only known at run
/// time, so the view records their presence but not their outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramStep {
    /// Compute for the given virtual duration.
    Work(SimTime),
    /// A fallible step with a run-time-only outcome.
    Check,
    /// An unconditional raise of the given class.
    Raise(caex_tree::ExceptionId),
    /// Enter a nested action.
    Enter(ActionId),
    /// Finish participation in a nested action.
    Leave(ActionId),
    /// Finish participation in the top-level action.
    Complete,
}

/// Builder handle for one object's program; returned by
/// [`ActionProgram::object`].
pub struct ObjectProgram<'a> {
    steps: &'a mut Vec<Step>,
}

impl std::fmt::Debug for ObjectProgram<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectProgram")
            .field("steps", &self.steps.len())
            .finish()
    }
}

impl ObjectProgram<'_> {
    /// Compute for `duration` of virtual time.
    pub fn work(&mut self, duration: SimTime) -> &mut Self {
        self.steps.push(Step::Work(duration));
        self
    }

    /// A fallible step: `Err(exc)` raises `exc` in the object's active
    /// action at the step's virtual time; `Ok(())` continues normally.
    pub fn check<F>(&mut self, step: F) -> &mut Self
    where
        F: FnOnce() -> Result<(), Exception> + Send + 'static,
    {
        self.steps.push(Step::Check(Box::new(step)));
        self
    }

    /// Unconditionally raise `exc` at the step's virtual time. Unlike
    /// [`ObjectProgram::check`], the raised class is statically known,
    /// so protocol analysers can validate it against the action's
    /// declared exceptions before the program ever runs.
    pub fn raise(&mut self, exc: Exception) -> &mut Self {
        self.steps.push(Step::Raise(exc));
        self
    }

    /// Enter a nested action (must be declared with this object as a
    /// participant and nested in the currently active action).
    pub fn enter(&mut self, action: ActionId) -> &mut Self {
        self.steps.push(Step::Enter(action));
        self
    }

    /// Finish the object's part in the given nested action.
    pub fn leave(&mut self, action: ActionId) -> &mut Self {
        self.steps.push(Step::Leave(action));
        self
    }

    /// Finish the object's part in the top-level action.
    pub fn complete(&mut self) -> &mut Self {
        self.steps.push(Step::Complete);
        self
    }
}

/// A deterministic multi-object program over one top-level CA action.
/// See the [module documentation](self).
pub struct ActionProgram {
    registry: Arc<ActionRegistry>,
    action: ActionId,
    programs: HashMap<NodeId, Vec<Step>>,
    config: NetConfig,
    handlers: Vec<(NodeId, ActionId, HandlerTable)>,
    acceptance: Option<Box<dyn FnMut() -> Option<Exception>>>,
    start: SimTime,
}

impl std::fmt::Debug for ActionProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionProgram")
            .field("action", &self.action)
            .field("objects", &self.programs.len())
            .finish()
    }
}

impl ActionProgram {
    /// Starts a program for the given top-level `action`.
    #[must_use]
    pub fn new(registry: Arc<ActionRegistry>, action: ActionId) -> Self {
        ActionProgram {
            registry,
            action,
            programs: HashMap::new(),
            config: NetConfig::default(),
            handlers: Vec::new(),
            acceptance: None,
            start: SimTime::from_micros(1),
        }
    }

    /// Replaces the network configuration.
    #[must_use]
    pub fn with_config(mut self, config: NetConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a handler table for `(object, action)`.
    #[must_use]
    pub fn with_handlers(mut self, object: NodeId, action: ActionId, table: HandlerTable) -> Self {
        self.handlers.push((object, action, table));
        self
    }

    /// Installs the top-level action's exit-line acceptance test
    /// (§2.2/Fig. 2b): `None` accepts, `Some(exc)` raises `exc` when
    /// every object has reached `complete()`.
    #[must_use]
    pub fn with_acceptance<F>(mut self, test: F) -> Self
    where
        F: FnMut() -> Option<Exception> + 'static,
    {
        self.acceptance = Some(Box::new(test));
        self
    }

    /// Begins (or continues) the program of `object`.
    pub fn object(&mut self, object: NodeId) -> ObjectProgram<'_> {
        ObjectProgram {
            steps: self.programs.entry(object).or_default(),
        }
    }

    /// The action structure this program runs over.
    #[must_use]
    pub fn registry(&self) -> &Arc<ActionRegistry> {
        &self.registry
    }

    /// The top-level action being programmed.
    #[must_use]
    pub fn action(&self) -> ActionId {
        self.action
    }

    /// The objects that have a (possibly empty) program, sorted.
    #[must_use]
    pub fn objects(&self) -> Vec<NodeId> {
        let mut objects: Vec<NodeId> = self.programs.keys().copied().collect();
        objects.sort_unstable();
        objects
    }

    /// A static view of `object`'s program, step by step, for analysis
    /// passes. Empty when the object has no program.
    #[must_use]
    pub fn steps_of(&self, object: NodeId) -> Vec<ProgramStep> {
        self.programs
            .get(&object)
            .map(|steps| {
                steps
                    .iter()
                    .map(|s| match s {
                        Step::Work(d) => ProgramStep::Work(*d),
                        Step::Check(_) => ProgramStep::Check,
                        Step::Raise(exc) => ProgramStep::Raise(exc.id()),
                        Step::Enter(a) => ProgramStep::Enter(*a),
                        Step::Leave(a) => ProgramStep::Leave(*a),
                        Step::Complete => ProgramStep::Complete,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The installed handler tables as `(object, action)` bindings.
    pub fn handler_tables(&self) -> impl Iterator<Item = (NodeId, ActionId, &HandlerTable)> {
        self.handlers.iter().map(|(o, a, t)| (*o, *a, t))
    }

    /// Compiles the programs to a scenario and executes it.
    ///
    /// Virtual time advances per object as its `work` steps prescribe;
    /// `check` failures raise at the accumulated time. (A raise
    /// suspends the object, so any *later* steps of a failed object are
    /// naturally overtaken by the resolution — they are scheduled but
    /// arrive as suppressed events, matching the paper's model where
    /// handlers "take over the duties of participating objects".)
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid programs (entering undeclared
    /// actions), as the underlying scenario would.
    #[must_use]
    pub fn run(self) -> RunReport {
        let mut scenario = Scenario::new(Arc::clone(&self.registry))
            .with_config(self.config)
            .enter_all_at(SimTime::ZERO, self.action);
        for (object, action, table) in self.handlers {
            scenario = scenario.handlers(object, action, table);
        }
        if let Some(test) = self.acceptance {
            scenario = scenario.with_exit_acceptance(self.action, test);
        }
        for (object, steps) in self.programs {
            let mut clock = self.start;
            for step in steps {
                match step {
                    Step::Work(d) => clock += d,
                    Step::Check(f) => {
                        if let Err(exc) = f() {
                            scenario = scenario.raise_at(clock, object, exc);
                        }
                    }
                    Step::Raise(exc) => {
                        scenario = scenario.raise_at(clock, object, exc);
                    }
                    Step::Enter(a) => {
                        scenario = scenario.enter_at(clock, object, a);
                        // Structural steps take one tick so the
                        // synchronized-leave grant of a nested action
                        // lands before the object's next structural
                        // step at equal virtual time.
                        clock += SimTime::from_micros(1);
                    }
                    Step::Leave(a) => {
                        scenario = scenario.complete_at(clock, object, a);
                        clock += SimTime::from_micros(1);
                    }
                    Step::Complete => {
                        scenario = scenario.complete_at(clock, object, self.action);
                        clock += SimTime::from_micros(1);
                    }
                }
            }
        }
        scenario.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_action::ActionScope;
    use caex_tree::{chain_tree, ExceptionId};

    fn setup(n: u32) -> (Arc<ActionRegistry>, ActionId) {
        let tree = Arc::new(chain_tree(4));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level("job", (0..n).map(NodeId::new), tree))
            .unwrap();
        (Arc::new(reg), a)
    }

    #[test]
    fn all_ok_programs_complete_without_messages() {
        let (reg, job) = setup(3);
        let mut program = ActionProgram::new(reg, job);
        for i in 0..3 {
            program
                .object(NodeId::new(i))
                .work(SimTime::from_micros(100 * (i as u64 + 1)))
                .check(|| Ok(()))
                .complete();
        }
        let report = program.run();
        assert!(report.is_clean());
        assert_eq!(report.total_messages(), 0);
        assert!(report.resolutions.is_empty());
    }

    #[test]
    fn err_check_raises_at_its_virtual_time() {
        let (reg, job) = setup(2);
        let mut program = ActionProgram::new(reg, job);
        program
            .object(NodeId::new(0))
            .work(SimTime::from_millis(5))
            .check(|| Err(Exception::new(ExceptionId::new(2))))
            .complete();
        program
            .object(NodeId::new(1))
            .work(SimTime::from_millis(50))
            .complete();
        let report = program.run();
        let r = report.resolutions.first().expect("resolution");
        assert_eq!(r.resolved.id(), ExceptionId::new(2));
        // The raise happened at ~5ms, well before object 1's completion.
        assert!(report.notes.iter().any(|n| matches!(
            n,
            crate::Note::Raised { object, .. } if *object == NodeId::new(0)
        )));
    }

    #[test]
    fn concurrent_errs_resolve_to_covering_exception() {
        let (reg, job) = setup(3);
        let mut program = ActionProgram::new(reg, job);
        program
            .object(NodeId::new(0))
            .work(SimTime::from_micros(10))
            .check(|| Err(Exception::new(ExceptionId::new(2))))
            .complete();
        program
            .object(NodeId::new(2))
            .work(SimTime::from_micros(10))
            .check(|| Err(Exception::new(ExceptionId::new(4))))
            .complete();
        let report = program.run();
        let r = &report.resolutions[0];
        // Chain tree: lca(e2, e4) = e2.
        assert_eq!(r.resolved.id(), ExceptionId::new(2));
        assert_eq!(r.resolver, NodeId::new(2));
        assert_eq!(report.handlers_for(job).len(), 3);
    }

    #[test]
    fn steps_after_a_failed_check_are_overtaken() {
        let (reg, job) = setup(2);
        let mut program = ActionProgram::new(reg, job);
        program
            .object(NodeId::new(0))
            .check(|| Err(Exception::new(ExceptionId::new(1))))
            .work(SimTime::from_millis(10))
            // This later raise must be suppressed: the object is
            // already exceptional.
            .check(|| Err(Exception::new(ExceptionId::new(3))))
            .complete();
        program.object(NodeId::new(1)).complete();
        let report = program.run();
        assert_eq!(report.resolutions.len(), 1);
        assert_eq!(report.resolutions[0].resolved.id(), ExceptionId::new(1));
        assert_eq!(report.suppressed_raises(), 1);
    }

    #[test]
    fn acceptance_over_program_state() {
        use std::sync::atomic::{AtomicI64, Ordering};
        use std::sync::Arc as StdArc;
        // The joint state the acceptance test inspects is whatever the
        // program's steps computed.
        let (reg, job) = setup(2);
        let total = StdArc::new(AtomicI64::new(0));
        let mut program = ActionProgram::new(reg, job);
        for i in 0..2u32 {
            let total = StdArc::clone(&total);
            program
                .object(NodeId::new(i))
                .work(SimTime::from_micros(10))
                .check(move || {
                    total.fetch_add(70, Ordering::SeqCst); // jointly 140 > 100
                    Ok(())
                })
                .complete();
        }
        let watch = StdArc::clone(&total);
        let report = program
            .with_acceptance(move || {
                if watch.load(Ordering::SeqCst) > 100 {
                    Some(Exception::new(ExceptionId::new(2)).with_origin("acceptance"))
                } else {
                    None
                }
            })
            .run();
        // The joint budget was blown: the exit test rejected and the
        // resolution handled it in both objects.
        let r = report.resolutions.first().expect("acceptance raised");
        assert_eq!(r.resolved.id(), ExceptionId::new(2));
        assert_eq!(report.handlers_for(job).len(), 2);
        assert!(report.is_clean());
    }

    #[test]
    fn nested_calls_compile_to_enter_leave() {
        let tree = Arc::new(chain_tree(4));
        let mut reg = ActionRegistry::new();
        let outer = reg
            .declare(ActionScope::top_level(
                "outer",
                (0..2).map(NodeId::new),
                Arc::clone(&tree),
            ))
            .unwrap();
        let inner = reg
            .declare(ActionScope::nested("inner", [NodeId::new(1)], tree, outer))
            .unwrap();
        let mut program = ActionProgram::new(Arc::new(reg), outer);
        program
            .object(NodeId::new(1))
            .work(SimTime::from_micros(10))
            .enter(inner)
            .work(SimTime::from_micros(10))
            .leave(inner)
            .complete();
        program.object(NodeId::new(0)).complete();
        let report = program.run();
        assert!(report.is_clean());
        assert!(report.notes.iter().any(|n| matches!(
            n,
            crate::Note::Completed { action, .. } if *action == inner
        )));
    }

    #[test]
    fn err_inside_nested_call_aborts_it_from_outside() {
        // Object 0 fails in the outer action while object 1 is inside
        // the nested action: abortion machinery engages through the
        // program layer too.
        let tree = Arc::new(chain_tree(4));
        let mut reg = ActionRegistry::new();
        let outer = reg
            .declare(ActionScope::top_level(
                "outer",
                (0..2).map(NodeId::new),
                Arc::clone(&tree),
            ))
            .unwrap();
        let inner = reg
            .declare(ActionScope::nested("inner", [NodeId::new(1)], tree, outer))
            .unwrap();
        let mut program = ActionProgram::new(Arc::new(reg), outer);
        program
            .object(NodeId::new(0))
            .work(SimTime::from_micros(50))
            .check(|| Err(Exception::new(ExceptionId::new(1))))
            .complete();
        program
            .object(NodeId::new(1))
            .enter(inner)
            .work(SimTime::from_millis(100)) // long nested work
            .leave(inner)
            .complete();
        let report = program.run();
        assert!(report.is_clean());
        assert!(report.notes.iter().any(|n| matches!(
            n,
            crate::Note::AbortedNested { object, .. } if *object == NodeId::new(1)
        )));
        assert_eq!(report.resolutions.len(), 1);
    }
}
