//! Running the resolution algorithm on real OS threads.
//!
//! The same [`Participant`] state machine that the simulator drives is
//! run here over [`caex_net::ThreadNet`] crossbeam channels — one thread
//! per participating object — demonstrating that the algorithm is an
//! executable protocol, not a simulation artefact. Virtual handler
//! costs become real (micro-)sleeps; scenario steps fire from a local
//! timer queue on each thread.
//!
//! Termination uses an idle timeout: a thread that has seen no traffic
//! and has no due local events for the configured window assumes
//! quiescence and exits. That is a demo-grade termination rule (the
//! paper's §4.5 points at group membership services for the real
//! thing); the simulator engine remains the measurement instrument.

use crate::drive::drive_node_until;
use crate::{Effect, Event, LeaveMode, NestedStrategy, Note, Participant};
use caex_action::{ActionId, ActionRegistry, HandlerTable};
use caex_net::{NetStats, NodeId, SimTime, ThreadNet};
use caex_tree::Exception;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadReport {
    /// Every note emitted by any participant, in arrival order at the
    /// collector (inter-thread order is nondeterministic).
    pub notes: Vec<Note>,
    /// Network statistics.
    pub stats: NetStats,
}

impl ThreadReport {
    /// The exceptions whose handlers were started, grouped by action.
    #[must_use]
    pub fn handled_exceptions(&self, action: ActionId) -> Vec<(NodeId, Exception)> {
        self.notes
            .iter()
            .filter_map(|n| match n {
                Note::HandlerStarted {
                    object,
                    action: a,
                    exc,
                    ..
                } if *a == action => Some((*object, exc.clone())),
                _ => None,
            })
            .collect()
    }

    /// Checks the agreement invariant: all handlers started for
    /// `action` handled the same exception; returns it.
    ///
    /// # Panics
    ///
    /// Panics if two objects handled different exceptions.
    #[must_use]
    pub fn agreed_exception(&self, action: ActionId) -> Option<Exception> {
        let handled = self.handled_exceptions(action);
        let mut agreed: Option<Exception> = None;
        for (_, exc) in handled {
            match &agreed {
                None => agreed = Some(exc),
                Some(prev) => assert_eq!(prev.id(), exc.id(), "agreement violated"),
            }
        }
        agreed
    }
}

/// Observer adapter appending into a shared buffer (the worker threads
/// cannot hold the caller's `&mut dyn Observer`).
struct BufObs<'a>(&'a mut Vec<caex_obs::ObsEvent>);

impl caex_obs::Observer for BufObs<'_> {
    fn on_event(&mut self, event: &caex_obs::ObsEvent) {
        self.0.push(event.clone());
    }
}

type ObsSink = Mutex<(crate::ObsBridge, Vec<caex_obs::ObsEvent>)>;

/// Runs one `Participant::handle` under the shared bridge. The lock is
/// held across the handle so bridge round state, event order, and the
/// wall timestamps stay globally consistent — acceptable serialization
/// for a demo-grade engine (handler costs are queued, not slept, so
/// the critical section is short).
fn handle_observed(
    participant: &mut Participant,
    event: Event,
    from: Option<NodeId>,
    sink: &ObsSink,
    start: Instant,
) -> Vec<Effect> {
    let mut guard = sink.lock();
    let (bridge, events) = &mut *guard;
    if let Some(from) = from {
        let wall = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        bridge.on_receive(
            participant.id(),
            &event,
            from,
            SimTime::from_micros(wall),
            Some(wall),
            &mut BufObs(events),
        );
    }
    let pre = bridge.pre(participant, &event);
    let fx = participant.handle(event);
    let wall = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    bridge.post(
        &pre,
        participant,
        &fx,
        SimTime::from_micros(wall),
        Some(wall),
        &mut BufObs(events),
    );
    fx
}

/// Builder/driver for a threaded execution.
///
/// # Examples
///
/// ```
/// use caex::thread_engine::ThreadRunner;
/// use caex_action::{ActionRegistry, ActionScope};
/// use caex_net::{NodeId, SimTime};
/// use caex_tree::{chain_tree, Exception, ExceptionId};
/// use std::sync::Arc;
///
/// let tree = Arc::new(chain_tree(2));
/// let mut reg = ActionRegistry::new();
/// let a1 = reg.declare(ActionScope::top_level(
///     "A1", (0..3).map(NodeId::new), Arc::clone(&tree),
/// )).unwrap();
///
/// let report = ThreadRunner::new(Arc::new(reg))
///     .enter_all_at(SimTime::ZERO, a1)
///     .raise_at(SimTime::from_millis(1), NodeId::new(0),
///               Exception::new(ExceptionId::new(1)))
///     .raise_at(SimTime::from_millis(1), NodeId::new(2),
///               Exception::new(ExceptionId::new(2)))
///     .run();
///
/// // All three objects handled the same resolved exception.
/// let agreed = report.agreed_exception(a1).unwrap();
/// assert_eq!(report.handled_exceptions(a1).len(), 3);
/// assert_eq!(agreed.id(), ExceptionId::new(1));
/// ```
pub struct ThreadRunner {
    registry: Arc<ActionRegistry>,
    strategy: NestedStrategy,
    steps: Vec<(SimTime, NodeId, Event)>,
    handlers: Vec<(NodeId, ActionId, HandlerTable)>,
    idle_timeout: Duration,
    crashes: Vec<(SimTime, NodeId)>,
    detection_delay: SimTime,
}

impl std::fmt::Debug for ThreadRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRunner")
            .field("steps", &self.steps.len())
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl ThreadRunner {
    /// Creates a runner over the given action structure.
    #[must_use]
    pub fn new(registry: Arc<ActionRegistry>) -> Self {
        ThreadRunner {
            registry,
            strategy: NestedStrategy::Abort,
            steps: Vec::new(),
            handlers: Vec::new(),
            idle_timeout: Duration::from_millis(300),
            crashes: Vec::new(),
            detection_delay: SimTime::from_millis(50),
        }
    }

    /// Crashes `victim` at `time`: its thread halts abruptly
    /// mid-protocol (no farewell messages), and every survivor's
    /// failure detector reports the desertion one detection delay
    /// later. This is the in-process analogue of `caex-wire`'s
    /// `--crash` SIGKILL injection; with failover enabled (the
    /// default) survivors re-elect a resolver and finish resolution.
    #[must_use]
    pub fn crash_at(mut self, time: SimTime, victim: NodeId) -> Self {
        self.crashes.push((time, victim));
        self
    }

    /// Sets how long after a crash the survivors' failure detector
    /// reports it (default 50ms of wall clock). Thread scheduling is
    /// coarse, so keep this well above the crash time's jitter.
    #[must_use]
    pub fn with_detection_delay(mut self, delay: SimTime) -> Self {
        self.detection_delay = delay;
        self
    }

    /// Selects the nested-action strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: NestedStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets how long a thread may be idle before assuming quiescence.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Schedules `object` to enter `action` at `time` (relative to run
    /// start; `SimTime` micros become wall-clock micros).
    #[must_use]
    pub fn enter_at(mut self, time: SimTime, object: NodeId, action: ActionId) -> Self {
        self.steps.push((time, object, Event::Enter(action)));
        self
    }

    /// Schedules every participant of `action` to enter it at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is undeclared.
    #[must_use]
    pub fn enter_all_at(mut self, time: SimTime, action: ActionId) -> Self {
        let participants = self
            .registry
            .scope(action)
            .expect("enter_all_at of undeclared action")
            .participants()
            .to_vec();
        for p in participants {
            self.steps.push((time, p, Event::Enter(action)));
        }
        self
    }

    /// Schedules `object` to raise `exc` at `time`.
    #[must_use]
    pub fn raise_at(mut self, time: SimTime, object: NodeId, exc: Exception) -> Self {
        self.steps.push((time, object, Event::Raise(exc)));
        self
    }

    /// Schedules `object` to reach `action`'s exit line at `time`. The
    /// threaded runtime has no central manager, so completion uses the
    /// decentralized leave protocol — the runner switches participants
    /// to [`LeaveMode::Distributed`] automatically when any completion
    /// is scheduled.
    #[must_use]
    pub fn complete_at(mut self, time: SimTime, object: NodeId, action: ActionId) -> Self {
        self.steps.push((time, object, Event::Complete(action)));
        self
    }

    /// Installs a handler table for `(object, action)`.
    #[must_use]
    pub fn handlers(mut self, object: NodeId, action: ActionId, table: HandlerTable) -> Self {
        self.handlers.push((object, action, table));
        self
    }

    /// The action structure this runner executes over.
    #[must_use]
    pub fn registry(&self) -> &Arc<ActionRegistry> {
        &self.registry
    }

    /// The scripted steps, in scheduling order — the same shape as
    /// [`crate::Scenario::scripted`], so static analyses (the
    /// `caex-lint` replay battery) can check a threaded script without
    /// running it.
    pub fn scripted(&self) -> impl Iterator<Item = (SimTime, NodeId, &Event)> {
        self.steps.iter().map(|(t, o, e)| (*t, *o, e))
    }

    /// The installed handler tables, mirroring
    /// [`crate::Scenario::handler_tables`].
    pub fn handler_tables(&self) -> impl Iterator<Item = (NodeId, ActionId, &HandlerTable)> {
        self.handlers.iter().map(|(o, a, t)| (*o, *a, t))
    }

    /// Spawns one thread per object, runs to (idle-detected)
    /// quiescence, and joins.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked (scenario programming errors
    /// surface this way, as in the simulator engine).
    #[must_use]
    pub fn run(self) -> ThreadReport {
        self.run_observed(&mut ())
    }

    /// Like [`ThreadRunner::run`], but streams typed
    /// [`caex_obs::ObsEvent`]s to `obs`. Timestamps are wall-clock
    /// microseconds since run start (both as the event's `SimTime` and
    /// its `wall_micros`), so latency histograms measure real elapsed
    /// time. Events from all threads are serialized through one bridge
    /// (the correlation ids must be global) and replayed to `obs` after
    /// the join, in emission order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked, as in [`ThreadRunner::run`].
    #[must_use]
    pub fn run_observed(self, obs: &mut dyn caex_obs::Observer) -> ThreadReport {
        let num_nodes = self
            .registry
            .iter()
            .flat_map(|(_, s)| s.participants().iter().copied())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        let net: ThreadNet<Event> = ThreadNet::new(num_nodes);
        let stats = net.stats();
        let ports = net.into_ports();
        let notes = Arc::new(Mutex::new(Vec::new()));
        let sink: Arc<ObsSink> = Arc::new(Mutex::new((crate::ObsBridge::new(), Vec::new())));
        let start = Instant::now();

        let uses_completion = self
            .steps
            .iter()
            .any(|(_, _, e)| matches!(e, Event::Complete(_)));
        let mut participants: Vec<Participant> = (0..num_nodes)
            .map(|i| {
                let mut p =
                    Participant::new(NodeId::new(i), Arc::clone(&self.registry), self.strategy);
                if uses_completion {
                    p.set_leave_mode(LeaveMode::Distributed);
                }
                p
            })
            .collect();
        for (object, action, table) in self.handlers {
            participants[object.index() as usize].set_handlers(action, table);
        }

        let mut steps_per_node: Vec<Vec<(SimTime, Event)>> =
            (0..num_nodes).map(|_| Vec::new()).collect();
        for (time, object, event) in self.steps {
            steps_per_node[object.index() as usize].push((time, event));
        }
        // Injected crashes: survivors hear about each one from their
        // (scripted) failure detector a detection delay later.
        for &(time, victim) in &self.crashes {
            let report_at = time + self.detection_delay;
            for survivor in (0..num_nodes).map(NodeId::new) {
                if survivor != victim {
                    steps_per_node[survivor.index() as usize]
                        .push((report_at, Event::DeserterSuspected { peer: victim }));
                }
            }
        }
        let halts: Vec<Option<Instant>> = (0..num_nodes)
            .map(|i| {
                self.crashes
                    .iter()
                    .filter(|(_, v)| v.index() == i)
                    .map(|(t, _)| start + Duration::from_micros(t.as_micros()))
                    .min()
            })
            .collect();

        let idle_timeout = self.idle_timeout;
        let mut joins = Vec::new();
        for (port, ((mut participant, steps), halt_at)) in ports
            .into_iter()
            .zip(participants.into_iter().zip(steps_per_node).zip(halts))
        {
            let notes = Arc::clone(&notes);
            let sink = Arc::clone(&sink);
            joins.push(thread::spawn(move || {
                drive_node_until(
                    &port,
                    &mut participant,
                    steps,
                    start,
                    idle_timeout,
                    halt_at,
                    |p, ev, from| handle_observed(p, ev, from, &sink, start),
                    |note| notes.lock().push(note),
                );
            }));
        }
        for j in joins {
            j.join().expect("participant thread panicked");
        }
        let (_, events) = Arc::try_unwrap(sink)
            .map(Mutex::into_inner)
            .unwrap_or_else(|arc| {
                let guard = arc.lock();
                (crate::ObsBridge::new(), guard.1.clone())
            });
        for event in &events {
            obs.on_event(event);
        }
        let end = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        obs.on_run_end(SimTime::from_micros(end));
        let notes = Arc::try_unwrap(notes)
            .map(Mutex::into_inner)
            .unwrap_or_else(|arc| arc.lock().clone());
        let stats = stats.lock().clone();
        ThreadReport { notes, stats }
    }
}
