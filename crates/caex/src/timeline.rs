//! Per-object timelines: a compact textual account of what each
//! participating object went through during a run — entries, raises,
//! suspensions, abortions, handler activations, completions — derived
//! from the report's notes.
//!
//! # Examples
//!
//! ```
//! use caex::timeline::render_timelines;
//! use caex::workloads;
//!
//! let (w, _) = workloads::example1(Default::default());
//! let report = w.run();
//! let text = render_timelines(&report);
//! assert!(text.contains("O2"));
//! assert!(text.contains("resolved"));
//! ```

use crate::{Note, RunReport};
use caex_net::NodeId;
use std::collections::BTreeMap;

/// One entry in an object's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// The describing line ("entered A0", "raised e1 in A0", …).
    pub what: String,
}

/// Builds the per-object timelines from a report's notes, in note
/// emission order (which respects virtual time).
#[must_use]
pub fn timelines(report: &RunReport) -> BTreeMap<NodeId, Vec<TimelineEntry>> {
    let mut out: BTreeMap<NodeId, Vec<TimelineEntry>> = BTreeMap::new();
    let mut push = |object: NodeId, what: String| {
        out.entry(object).or_default().push(TimelineEntry { what });
    };
    for note in &report.notes {
        match note {
            Note::Entered { object, action } => push(*object, format!("entered {action}")),
            Note::EnterSkipped { object, action } => {
                push(*object, format!("entry into {action} skipped"));
            }
            Note::LeaveRequested { object, action } => {
                push(*object, format!("reached exit line of {action}"));
            }
            Note::Completed { object, action } => push(*object, format!("completed {action}")),
            Note::Raised {
                object,
                action,
                exc,
            } => {
                push(*object, format!("raised {} in {action}", exc.id()));
            }
            Note::RaiseSuppressed { object, exc } => {
                push(*object, format!("raise of {} suppressed", exc.id()));
            }
            Note::AbortedNested { object, chain, .. } => {
                let chain = chain
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                push(*object, format!("aborted nested [{chain}]"));
            }
            Note::WaitingForNested {
                object, forever, ..
            } => {
                push(
                    *object,
                    if *forever {
                        "waiting for nested actions (forever)".to_owned()
                    } else {
                        "waiting for nested actions".to_owned()
                    },
                );
            }
            Note::DeepSignalIgnored { object, action, .. } => {
                push(*object, format!("deep signal from {action} ignored"));
            }
            Note::ResolutionCommitted {
                resolver,
                resolved,
                action,
                ..
            } => push(*resolver, format!("resolved {action} to {}", resolved.id())),
            Note::HandlerStarted {
                object,
                exc,
                action,
                ..
            } => {
                push(*object, format!("handling {} in {action}", exc.id()));
            }
            Note::SignalledFailure {
                object,
                action,
                exc,
            } => {
                push(*object, format!("signalled {} out of {action}", exc.id()));
            }
            Note::ActionFailed {
                object,
                action,
                exc,
            } => {
                push(*object, format!("{action} FAILED with {}", exc.id()));
            }
            _ => {}
        }
    }
    out
}

/// Renders the timelines as indented text, one block per object.
#[must_use]
pub fn render_timelines(report: &RunReport) -> String {
    let mut out = String::new();
    for (object, entries) in timelines(report) {
        out.push_str(&format!("{object}:\n"));
        for e in entries {
            out.push_str(&format!("  - {}\n", e.what));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use caex_net::NetConfig;

    #[test]
    fn example2_timeline_tells_the_story() {
        let (w, _ids) = workloads::example2(NetConfig::default());
        let report = w.run();
        let map = timelines(&report);
        // O2's timeline: enters three actions, raises, aborts, resolves,
        // handles.
        let o2: Vec<&str> = map[&NodeId::new(2)]
            .iter()
            .map(|e| e.what.as_str())
            .collect();
        assert!(o2.iter().any(|s| s.starts_with("raised")));
        assert!(o2.iter().any(|s| s.starts_with("aborted nested")));
        assert!(o2.iter().any(|s| s.starts_with("resolved")));
        assert!(o2.iter().any(|s| s.starts_with("handling")));
        // Story order: raise precedes abortion precedes resolution.
        let pos = |needle: &str| o2.iter().position(|s| s.starts_with(needle)).unwrap();
        assert!(pos("raised") < pos("aborted nested"));
        assert!(pos("aborted nested") < pos("resolved"));
        assert!(pos("resolved") <= pos("handling"));
    }

    #[test]
    fn rendering_covers_every_object() {
        let (w, _ids) = workloads::example1(NetConfig::default());
        let report = w.run();
        let text = render_timelines(&report);
        for o in 1..=3 {
            assert!(text.contains(&format!("O{o}:")));
        }
    }

    #[test]
    fn happy_path_timelines_are_quiet() {
        let report = workloads::fig3(NetConfig::default()).run();
        let map = timelines(&report);
        // O0 neither raised nor aborted: only entry + handling lines.
        let o0: Vec<&str> = map[&NodeId::new(0)]
            .iter()
            .map(|e| e.what.as_str())
            .collect();
        assert!(o0.iter().all(|s| !s.starts_with("raised")));
        assert!(o0.iter().any(|s| s.starts_with("handling")));
    }
}
