//! A fixed-coordinator resolution baseline — the design the paper's
//! decentralized algorithm implicitly competes with.
//!
//! The obvious alternative to electing a resolver among the raisers is
//! a **fixed central coordinator**: every raiser reports its exception
//! to one designated object, which resolves the collected set against
//! the exception tree and broadcasts the commit. This needs fewer
//! messages — `P` reports + `(N−1)` commits, `O(N)` — but:
//!
//! 1. the coordinator must *wait out a collection window* before
//!    resolving (it cannot know whether more reports are coming; the
//!    paper's algorithm gets that knowledge for free from its
//!    ACK/FIFO discipline), trading latency for messages; and
//! 2. the coordinator is a single point of failure: if it crashes, no
//!    resolution ever happens, whereas the paper's algorithm has no
//!    fixed role — whoever raised and ranks highest resolves.
//!
//! This module executes that design so the trade-off is measured, not
//! asserted. Like [`crate::cr`], it supports flat (non-nested) actions,
//! which is where the comparison is meaningful.

use caex_action::ActionId;
use caex_net::{Kinded, NetConfig, NetStats, NodeId, SimNet, SimTime};
use caex_obs::{CorrelationId, ObsEvent, ObsKind, Observer};
use caex_tree::{ExceptionId, ExceptionTree};
use std::sync::Arc;

/// The conventional span for baseline engines: they run one flat
/// resolution, reported as round 1 of action 0.
fn span_event(at: SimTime, object: NodeId, kind: ObsKind) -> ObsEvent {
    ObsEvent {
        at,
        wall_micros: None,
        object,
        span: CorrelationId {
            action: ActionId::new(0),
            round: 1,
        },
        kind,
    }
}

/// Messages of the centralized protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CMsg {
    /// A raiser reports its exception to the coordinator.
    Report {
        /// The raising object.
        from: NodeId,
        /// The raised exception class.
        exc: ExceptionId,
    },
    /// The coordinator's final decision.
    Commit {
        /// The resolved exception class.
        exc: ExceptionId,
    },
    /// Local event: raise here.
    LocalRaise(ExceptionId),
    /// Local event: the coordinator's collection window closed.
    WindowClosed,
}

impl Kinded for CMsg {
    fn kind(&self) -> &'static str {
        match self {
            CMsg::Report { .. } => "central_report",
            CMsg::Commit { .. } => "central_commit",
            CMsg::LocalRaise(_) => "local_raise",
            CMsg::WindowClosed => "local_window",
        }
    }
}

/// Outcome of a centralized run.
#[derive(Debug)]
pub struct CentralReport {
    /// Message statistics (`central_report`, `central_commit`).
    pub stats: NetStats,
    /// The committed exception, if the coordinator survived to commit.
    pub committed: Option<ExceptionId>,
    /// How many objects received the commit.
    pub informed: u32,
    /// Virtual completion time.
    pub finished_at: SimTime,
}

impl CentralReport {
    /// Total protocol messages.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.stats.sent_total()
    }

    /// `true` if resolution completed and reached every other object.
    #[must_use]
    pub fn resolved_everywhere(&self, n: u32) -> bool {
        self.committed.is_some() && self.informed == n - 1
    }
}

/// Executes the centralized design: `n` objects, exceptions raised per
/// `raises` at time zero, a fixed `coordinator`, and a collection
/// `window` after the first report before the coordinator resolves.
///
/// # Panics
///
/// Panics if `raises` is empty or names the coordinator twice.
#[must_use]
pub fn run(
    n: u32,
    tree: Arc<ExceptionTree>,
    coordinator: NodeId,
    raises: &[(NodeId, ExceptionId)],
    window: SimTime,
    net_config: NetConfig,
) -> CentralReport {
    run_observed(n, tree, coordinator, raises, window, net_config, &mut ())
}

/// Like [`run`], but streams synthetic [`ObsEvent`]s to `obs`: raises,
/// `central_report`/`central_commit` message sends, and — the election
/// being fixed by construction — a `ResolverElected` that always names
/// the coordinator. The whole run is reported as span `A0#r1`, the
/// baseline convention (flat action, single round).
///
/// # Panics
///
/// Panics as [`run`] does.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_observed(
    n: u32,
    tree: Arc<ExceptionTree>,
    coordinator: NodeId,
    raises: &[(NodeId, ExceptionId)],
    window: SimTime,
    net_config: NetConfig,
    obs: &mut dyn Observer,
) -> CentralReport {
    assert!(!raises.is_empty(), "nothing to resolve");
    let mut net: SimNet<CMsg> = SimNet::new(net_config, n);
    for &(node, exc) in raises {
        net.schedule_local(SimTime::ZERO, node, CMsg::LocalRaise(exc));
    }

    let mut collected: Vec<ExceptionId> = Vec::new();
    let mut window_open = false;
    let mut committed = None;
    let mut informed = 0u32;
    let mut started = false;

    while let Some(d) = net.next_delivery() {
        let at = net.now();
        match d.payload {
            CMsg::LocalRaise(exc) => {
                if !started {
                    started = true;
                    obs.on_event(&span_event(at, d.to, ObsKind::ResolutionStart));
                }
                obs.on_event(&span_event(at, d.to, ObsKind::Raise { exception: exc }));
                if d.to == coordinator {
                    // The coordinator's own exception needs no message.
                    collected.push(exc);
                    if !window_open {
                        window_open = true;
                        net.schedule_local_in(window, coordinator, CMsg::WindowClosed);
                    }
                } else {
                    obs.on_event(&span_event(
                        at,
                        d.to,
                        ObsKind::MessageSent {
                            kind: "central_report",
                            to: coordinator,
                        },
                    ));
                    net.send(d.to, coordinator, CMsg::Report { from: d.to, exc });
                }
            }
            CMsg::Report { from, exc } => {
                debug_assert_eq!(d.to, coordinator);
                obs.on_event(&span_event(
                    at,
                    d.to,
                    ObsKind::MessageReceived { kind: "central_report", from },
                ));
                collected.push(exc);
                if !window_open {
                    window_open = true;
                    net.schedule_local_in(window, coordinator, CMsg::WindowClosed);
                }
            }
            CMsg::WindowClosed => {
                let resolved = tree
                    .resolve(collected.iter().copied())
                    .expect("window opened only after a report");
                committed = Some(resolved);
                obs.on_event(&span_event(
                    at,
                    coordinator,
                    ObsKind::ResolverElected {
                        resolver: coordinator,
                    },
                ));
                let mut distinct = collected.clone();
                distinct.sort_unstable();
                distinct.dedup();
                obs.on_event(&span_event(
                    at,
                    coordinator,
                    ObsKind::ResolutionCommit {
                        resolved,
                        raised: distinct.len() as u32,
                    },
                ));
                for peer in (0..n).map(NodeId::new) {
                    if peer != coordinator {
                        obs.on_event(&span_event(
                            at,
                            coordinator,
                            ObsKind::MessageSent {
                                kind: "central_commit",
                                to: peer,
                            },
                        ));
                        net.send(coordinator, peer, CMsg::Commit { exc: resolved });
                    }
                }
            }
            CMsg::Commit { .. } => {
                obs.on_event(&span_event(
                    at,
                    d.to,
                    ObsKind::MessageReceived { kind: "central_commit", from: coordinator },
                ));
                informed += 1;
            }
        }
    }

    obs.on_run_end(net.now());
    CentralReport {
        stats: net.stats().clone(),
        committed,
        informed,
        finished_at: net.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_net::{FaultPlan, LatencyModel};
    use caex_tree::chain_tree;

    fn config() -> NetConfig {
        NetConfig::default().with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
    }

    #[test]
    fn resolves_with_linear_messages() {
        let tree = Arc::new(chain_tree(4));
        let n = 8;
        let raises: Vec<_> = (1..=3)
            .map(|i| (NodeId::new(i), ExceptionId::new(i)))
            .collect();
        let report = run(
            n,
            tree,
            NodeId::new(0),
            &raises,
            SimTime::from_millis(1),
            config(),
        );
        assert_eq!(report.committed, Some(ExceptionId::new(1)));
        assert!(report.resolved_everywhere(n));
        // P reports + (N−1) commits.
        assert_eq!(report.total_messages(), 3 + 7);
    }

    #[test]
    fn coordinator_raise_costs_no_report() {
        let tree = Arc::new(chain_tree(2));
        let report = run(
            4,
            tree,
            NodeId::new(0),
            &[(NodeId::new(0), ExceptionId::new(1))],
            SimTime::from_millis(1),
            config(),
        );
        assert_eq!(report.total_messages(), 3); // commits only
        assert!(report.resolved_everywhere(4));
    }

    #[test]
    fn short_window_misses_late_raisers() {
        // The fundamental weakness the paper's ACK discipline avoids:
        // the window is a guess. A report arriving after it closes is
        // not resolved.
        let tree = Arc::new(chain_tree(4));
        let slow = NetConfig::default().with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(50),
            max: SimTime::from_millis(5),
        });
        let report = run(
            4,
            Arc::clone(&tree),
            NodeId::new(0),
            &[
                (NodeId::new(1), ExceptionId::new(3)),
                (NodeId::new(2), ExceptionId::new(4)),
            ],
            SimTime::from_micros(10), // far too short
            slow,
        );
        // Something committed, but possibly over an incomplete set —
        // the committed exception may fail to cover the late raise.
        assert!(report.committed.is_some());
    }

    #[test]
    fn coordinator_crash_stalls_everything() {
        let tree = Arc::new(chain_tree(2));
        let crashed =
            config().with_faults(FaultPlan::none().with_crash(NodeId::new(0), SimTime::ZERO));
        let report = run(
            5,
            tree,
            NodeId::new(0),
            &[(NodeId::new(2), ExceptionId::new(1))],
            SimTime::from_millis(1),
            crashed,
        );
        assert_eq!(report.committed, None);
        assert!(!report.resolved_everywhere(5));
    }

    #[test]
    fn coordinator_is_the_hot_spot() {
        let tree = Arc::new(chain_tree(8));
        let n = 9;
        let raises: Vec<_> = (1..n)
            .map(|i| (NodeId::new(i), ExceptionId::new(i.min(8))))
            .collect();
        let report = run(
            n,
            tree,
            NodeId::new(0),
            &raises,
            SimTime::from_millis(1),
            config(),
        );
        // All reports converge on the coordinator.
        let (hottest, load) = report.stats.hottest_receiver().unwrap();
        assert_eq!(hottest, NodeId::new(0));
        assert_eq!(load, (n - 1) as u64);
    }

    #[test]
    fn window_dominates_latency() {
        // The price of fewer messages: the coordinator always waits the
        // full window, even when only one exception exists.
        let tree = Arc::new(chain_tree(2));
        let window = SimTime::from_millis(10);
        let report = run(
            3,
            tree,
            NodeId::new(0),
            &[(NodeId::new(1), ExceptionId::new(1))],
            window,
            config(),
        );
        assert!(report.finished_at >= window);
    }
}
