//! The protocol messages of §4.1 and the local events that drive
//! scenarios.

use caex_action::ActionId;
use caex_net::{Kinded, NodeId};
use caex_tree::Exception;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five message types of the resolution protocol (§4.1, verbatim):
///
/// - [`Msg::Exception`] — "sent by object `Oi` to all participating
///   objects of Action `A` when an exception `E` is raised within it";
/// - [`Msg::HaveNested`] — "sent by each object `Oi` that is in a nested
///   action of Action `A` …, and `Oi` then starts abortion of nested
///   actions";
/// - [`Msg::NestedCompleted`] — "informs them of the exception `E` which
///   may be signalled by abortion handlers of a nested CA action";
/// - [`Msg::Ack`] — "sent … to the object which sent either the message
///   Exception or NestedCompleted to it earlier";
/// - [`Msg::Commit`] — "sent by a chosen object to all participating
///   objects after it completes resolution of all exceptions".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Msg {
    /// `Exception(A, Oi, E)`.
    Exception {
        /// The action the exception was raised in.
        action: ActionId,
        /// The raising object.
        from: NodeId,
        /// The raised exception occurrence.
        exc: Exception,
    },
    /// `HaveNested(Oi, A)`.
    HaveNested {
        /// The object about to abort its nested actions.
        from: NodeId,
        /// The action the abortion unwinds to.
        action: ActionId,
    },
    /// `NestedCompleted(A, Oi, E)`; `exc` is the exception signalled by
    /// the abortion handlers of the directly nested action, if any.
    NestedCompleted {
        /// The action the abortion unwound to.
        action: ActionId,
        /// The object whose nested abortion completed.
        from: NodeId,
        /// Exception signalled by abortion handlers (the paper's
        /// possibly-null `E`).
        exc: Option<Exception>,
    },
    /// `ACK(Oi)`, tagged with the action of the acknowledged message so
    /// stale acknowledgements from an eliminated nested resolution can
    /// never satisfy an outer resolution's accounting.
    Ack {
        /// The acknowledging object.
        from: NodeId,
        /// Action of the `Exception`/`NestedCompleted` being
        /// acknowledged.
        action: ActionId,
    },
    /// `Commit(E)` from the elected resolver. Carries the committing
    /// resolver's identity so receivers can fence a "zombie" resolver:
    /// a commit from an object the failure detector already reported
    /// dead is discarded, preventing a resumed (SIGCONT) or restarted
    /// resolver's late decision from splitting the outcome.
    Commit {
        /// The resolved action.
        action: ActionId,
        /// The committing resolver.
        from: NodeId,
        /// The resolving exception whose handlers everyone starts.
        exc: Exception,
    },
    /// Decentralized synchronized leave (the paper's "decentralized
    /// manager" option, §4): an object announces it has reached the
    /// action's exit line; everyone leaves once all announcements are
    /// in. Not part of the §4.4 message counts (the paper assumes the
    /// manager provides synchronous leave).
    LeaveReady {
        /// The announcing object.
        from: NodeId,
        /// The action being left.
        action: ActionId,
    },
}

impl Msg {
    /// The action this message pertains to.
    #[must_use]
    pub fn action(&self) -> ActionId {
        match self {
            Msg::Exception { action, .. }
            | Msg::HaveNested { action, .. }
            | Msg::NestedCompleted { action, .. }
            | Msg::Ack { action, .. }
            | Msg::Commit { action, .. }
            | Msg::LeaveReady { action, .. } => *action,
        }
    }

    /// The object this message speaks for — used to fence messages from
    /// reported deserters. For [`Msg::Exception`] this is the *original
    /// raiser* (a live peer's crash-recovery probe retransmits another
    /// raiser's exception verbatim); for [`Msg::Commit`] it is the
    /// committing resolver.
    #[must_use]
    pub fn sender(&self) -> NodeId {
        match self {
            Msg::Exception { from, .. }
            | Msg::HaveNested { from, .. }
            | Msg::NestedCompleted { from, .. }
            | Msg::Ack { from, .. }
            | Msg::Commit { from, .. }
            | Msg::LeaveReady { from, .. } => *from,
        }
    }
}

impl Kinded for Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::Exception { .. } => "exception",
            Msg::HaveNested { .. } => "have_nested",
            Msg::NestedCompleted { .. } => "nested_completed",
            Msg::Ack { .. } => "ack",
            Msg::Commit { .. } => "commit",
            Msg::LeaveReady { .. } => "leave_ready",
        }
    }

    fn wire_len(&self) -> usize {
        crate::codec::encoded_len(self)
    }

    fn action_index(&self) -> Option<u32> {
        Some(self.action().index())
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Msg::Exception { action, from, exc } => {
                write!(f, "Exception({action}, {from}, {})", exc.id())
            }
            Msg::HaveNested { from, action } => write!(f, "HaveNested({from}, {action})"),
            Msg::NestedCompleted { action, from, exc } => match exc {
                Some(e) => write!(f, "NestedCompleted({action}, {from}, {})", e.id()),
                None => write!(f, "NestedCompleted({action}, {from}, null)"),
            },
            Msg::Ack { from, action } => write!(f, "ACK({from}, {action})"),
            Msg::Commit { action, from, exc } => {
                write!(f, "Commit({action}, {from}, {})", exc.id())
            }
            Msg::LeaveReady { from, action } => write!(f, "LeaveReady({from}, {action})"),
        }
    }
}

/// Everything a participant can be handed: a protocol message or a local
/// event (scenario step or internally scheduled continuation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// A protocol message from another participant.
    Msg(Msg),
    /// Scenario: raise this exception in the object's active action.
    Raise(Exception),
    /// Scenario: enter the given (nested) action.
    Enter(ActionId),
    /// Scenario: the object finishes its work in the given action and
    /// waits at the exit line (leave is synchronous, §2.2/§4.2: "leave
    /// `A` synchronously").
    Complete(ActionId),
    /// Internal: every participant reached the exit line; the action
    /// manager grants the synchronized leave.
    LeaveGranted(ActionId),
    /// Internal: the abortion handlers scheduled at an abortion trigger
    /// have finished executing (their virtual cost elapsed).
    AbortionDone {
        /// The action the abortion unwound to (the resolving action).
        action: ActionId,
        /// Exception signalled by the directly nested action's abortion
        /// handler, if any.
        signal: Option<Exception>,
        /// Abortion generation at scheduling time; a continuation whose
        /// epoch no longer matches was superseded by a more-outer
        /// abortion and is ignored.
        epoch: u64,
    },
    /// Internal: a committed handler finished; if it signalled, raise
    /// the failure exception in the containing action.
    HandlerDone {
        /// The action whose handler ran.
        action: ActionId,
        /// Failure exception to signal to the containing action.
        signal: Option<Exception>,
    },
    /// Internal: the failure detector reports `peer` as dead. Engines
    /// schedule one per survivor some detection delay after a planned
    /// crash; the participant folds it into
    /// [`Participant::on_deserter`](crate::Participant::on_deserter),
    /// which (with failover enabled) re-elects a live resolver.
    DeserterSuspected {
        /// The object the failure detector gave up on.
        peer: NodeId,
    },
    /// Internal: the accrual failure detector *suspects* `peer` (φ
    /// crossed the suspicion threshold) but has not confirmed its
    /// death. Folded into
    /// [`Participant::on_suspect`](crate::Participant::on_suspect) —
    /// informational, no obligations are waived.
    PeerSuspected {
        /// The suspected object.
        peer: NodeId,
    },
    /// Internal: a previously suspected `peer` was heard from again
    /// (the partition healed). Folded into
    /// [`Participant::on_rejoin`](crate::Participant::on_rejoin),
    /// which re-forwards any commit the peer may have missed.
    PeerRejoined {
        /// The returning object.
        peer: NodeId,
    },
}

impl Kinded for Event {
    fn kind(&self) -> &'static str {
        match self {
            Event::Msg(m) => m.kind(),
            Event::Raise(_) => "local_raise",
            Event::Enter(_) => "local_enter",
            Event::Complete(_) => "local_complete",
            Event::LeaveGranted(_) => "local_leave_granted",
            Event::AbortionDone { .. } => "local_abortion_done",
            Event::HandlerDone { .. } => "local_handler_done",
            Event::DeserterSuspected { .. } => "local_deserter_suspected",
            Event::PeerSuspected { .. } => "local_peer_suspected",
            Event::PeerRejoined { .. } => "local_peer_rejoined",
        }
    }

    fn action_index(&self) -> Option<u32> {
        match self {
            Event::Msg(m) => m.action_index(),
            _ => None,
        }
    }

    fn wire_len(&self) -> usize {
        match self {
            Event::Msg(m) => crate::codec::encoded_len(m),
            _ => 0, // local events never cross the wire
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_tree::ExceptionId;

    fn exc() -> Exception {
        Exception::new(ExceptionId::new(1))
    }

    #[test]
    fn kinds_match_paper_names() {
        let a = ActionId::new(0);
        let o = NodeId::new(1);
        assert_eq!(
            Msg::Exception {
                action: a,
                from: o,
                exc: exc()
            }
            .kind(),
            "exception"
        );
        assert_eq!(Msg::HaveNested { from: o, action: a }.kind(), "have_nested");
        assert_eq!(
            Msg::NestedCompleted {
                action: a,
                from: o,
                exc: None
            }
            .kind(),
            "nested_completed"
        );
        assert_eq!(Msg::Ack { from: o, action: a }.kind(), "ack");
        assert_eq!(
            Msg::Commit {
                action: a,
                from: o,
                exc: exc()
            }
            .kind(),
            "commit"
        );
    }

    #[test]
    fn action_accessor_covers_all_variants() {
        let a = ActionId::new(7);
        let o = NodeId::new(0);
        let msgs = [
            Msg::Exception {
                action: a,
                from: o,
                exc: exc(),
            },
            Msg::HaveNested { from: o, action: a },
            Msg::NestedCompleted {
                action: a,
                from: o,
                exc: Some(exc()),
            },
            Msg::Ack { from: o, action: a },
            Msg::Commit {
                action: a,
                from: o,
                exc: exc(),
            },
            Msg::LeaveReady { from: o, action: a },
        ];
        for m in msgs {
            assert_eq!(m.action(), a);
        }
    }

    #[test]
    fn leave_ready_kind_and_display() {
        let m = Msg::LeaveReady {
            from: NodeId::new(3),
            action: ActionId::new(1),
        };
        assert_eq!(m.kind(), "leave_ready");
        assert_eq!(m.to_string(), "LeaveReady(O3, A1)");
    }

    #[test]
    fn event_kind_delegates_for_messages() {
        let e = Event::Msg(Msg::Ack {
            from: NodeId::new(0),
            action: ActionId::new(0),
        });
        assert_eq!(e.kind(), "ack");
        assert_eq!(Event::Raise(exc()).kind(), "local_raise");
    }

    #[test]
    fn display_renders_paper_notation() {
        let m = Msg::Exception {
            action: ActionId::new(1),
            from: NodeId::new(2),
            exc: exc(),
        };
        assert_eq!(m.to_string(), "Exception(A1, O2, e1)");
        let n = Msg::NestedCompleted {
            action: ActionId::new(1),
            from: NodeId::new(3),
            exc: None,
        };
        assert!(n.to_string().contains("null"));
    }
}
