//! Scenario scripting and the discrete-event execution engine.

use crate::{Effect, Event, LeaveMode, NestedStrategy, Note, Participant};
use caex_action::{ActionId, ActionRegistry, HandlerTable};
use caex_net::{NetConfig, NetStats, NodeId, SimNet, SimTime, TraceLog};
use caex_tree::Exception;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One committed resolution, as observed by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolutionRecord {
    /// The action the resolution ran in.
    pub action: ActionId,
    /// The elected resolver (highest id among raisers).
    pub resolver: NodeId,
    /// The resolving exception everyone handles.
    pub resolved: Exception,
    /// The raised set that entered resolution.
    pub raised: Vec<(NodeId, Exception)>,
    /// Virtual time of the commit.
    pub at: SimTime,
}

/// One handler activation at one object.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerStart {
    /// The object.
    pub object: NodeId,
    /// The action whose handler ran.
    pub action: ActionId,
    /// The exception handled.
    pub exc: Exception,
    /// Virtual time of activation.
    pub at: SimTime,
}

/// Everything a scenario run produced.
#[derive(Debug)]
pub struct RunReport {
    /// Committed resolutions in commit order.
    pub resolutions: Vec<ResolutionRecord>,
    /// Every handler activation.
    pub handler_starts: Vec<HandlerStart>,
    /// Top-level action failures (object, action, failure exception).
    pub failures: Vec<(NodeId, ActionId, Exception)>,
    /// All notes, in emission order.
    pub notes: Vec<Note>,
    /// Message statistics of the run.
    pub stats: NetStats,
    /// Virtual time when the network went quiescent.
    pub finished_at: SimTime,
    /// Objects stuck mid-resolution at quiescence (deadlock/livelock
    /// indicators; empty on a healthy run).
    pub deadlocked: Vec<NodeId>,
    /// `true` if the run was stopped by the delivery limit.
    pub hit_delivery_limit: bool,
    /// Full network trace (empty unless tracing was enabled).
    pub trace: TraceLog,
    /// Protocol fan-outs by kind — the message count the §4.5 reliable
    /// multicast regime would need (each fan-out = one multicast, no
    /// ACKs).
    pub multicasts: std::collections::BTreeMap<String, u64>,
    /// Total bytes the protocol messages would occupy on the wire
    /// (per the [`crate::codec`] encoding) — §2.1's "narrow bandwidth"
    /// accounting.
    pub wire_bytes: u64,
}

impl RunReport {
    /// The resolution committed in `action`, if one happened.
    #[must_use]
    pub fn resolution_for(&self, action: ActionId) -> Option<&ResolutionRecord> {
        self.resolutions.iter().find(|r| r.action == action)
    }

    /// Total protocol messages sent.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.stats.sent_total()
    }

    /// Protocol messages sent of one kind (`"exception"`, `"ack"`,
    /// `"have_nested"`, `"nested_completed"`, `"commit"`).
    #[must_use]
    pub fn messages_of(&self, kind: &str) -> u64 {
        self.stats.sent_of_kind(kind)
    }

    /// The handler activations for `action`.
    #[must_use]
    pub fn handlers_for(&self, action: ActionId) -> Vec<&HandlerStart> {
        self.handler_starts
            .iter()
            .filter(|h| h.action == action)
            .collect()
    }

    /// Checks the agreement invariant for `action`: every participant
    /// that started a handler started it for the same exception.
    /// Returns that exception, or `None` if no handler ran.
    ///
    /// # Panics
    ///
    /// Panics if two objects handled *different* exceptions — a protocol
    /// violation worth failing loudly on.
    #[must_use]
    pub fn agreed_exception(&self, action: ActionId) -> Option<Exception> {
        let mut agreed: Option<Exception> = None;
        for h in self.handlers_for(action) {
            match &agreed {
                None => agreed = Some(h.exc.clone()),
                Some(prev) => assert_eq!(
                    prev.id(),
                    h.exc.id(),
                    "agreement violated in {action}: {} vs {}",
                    prev.id(),
                    h.exc.id()
                ),
            }
        }
        agreed
    }

    /// `true` when the run ended cleanly: no deadlocked objects and no
    /// delivery-limit stop.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.deadlocked.is_empty() && !self.hit_delivery_limit
    }

    /// Count of suppressed raises (objects already suspended).
    #[must_use]
    pub fn suppressed_raises(&self) -> usize {
        self.notes
            .iter()
            .filter(|n| matches!(n, Note::RaiseSuppressed { .. }))
            .count()
    }

    /// Total multicasts the run would need under the §4.5 reliable
    /// multicast implementation (one per protocol fan-out, ACK-free).
    #[must_use]
    pub fn multicasts_total(&self) -> u64 {
        self.multicasts.values().sum()
    }

    /// Multicasts of one kind (`"exception"`, `"have_nested"`,
    /// `"nested_completed"`, `"commit"`).
    #[must_use]
    pub fn multicasts_of(&self, kind: &str) -> u64 {
        self.multicasts.get(kind).copied().unwrap_or(0)
    }

    /// Count of stale messages discarded.
    #[must_use]
    pub fn stale_messages(&self) -> usize {
        self.notes
            .iter()
            .filter(|n| matches!(n, Note::StaleMessage { .. }))
            .count()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run finished at {} with {} resolution(s), {} message(s)",
            self.finished_at,
            self.resolutions.len(),
            self.total_messages()
        )?;
        for r in &self.resolutions {
            writeln!(
                f,
                "  {}: resolver {} committed {} over {{{}}} at {}",
                r.action,
                r.resolver,
                r.resolved.id(),
                r.raised
                    .iter()
                    .map(|(o, e)| format!("{o}:{}", e.id()))
                    .collect::<Vec<_>>()
                    .join(", "),
                r.at
            )?;
        }
        if !self.deadlocked.is_empty() {
            writeln!(f, "  DEADLOCKED: {:?}", self.deadlocked)?;
        }
        Ok(())
    }
}

/// A scripted execution: who enters which action when, who raises what
/// when, over which network. The scenario is the workload generator for
/// every experiment in the paper's evaluation.
///
/// # Examples
///
/// Example 1 of §4.3 — three objects, two concurrent exceptions:
///
/// ```
/// use caex::Scenario;
/// use caex_action::{ActionRegistry, ActionScope};
/// use caex_net::{NodeId, SimTime};
/// use caex_tree::{chain_tree, Exception, ExceptionId};
/// use std::sync::Arc;
///
/// let tree = Arc::new(chain_tree(3));
/// let mut reg = ActionRegistry::new();
/// let a1 = reg.declare(ActionScope::top_level(
///     "A1", (1..4).map(NodeId::new), Arc::clone(&tree),
/// )).unwrap();
///
/// let report = Scenario::new(Arc::new(reg))
///     .enter_all_at(SimTime::ZERO, a1)
///     .raise_at(SimTime::from_micros(10), NodeId::new(1),
///               Exception::new(ExceptionId::new(1)))
///     .raise_at(SimTime::from_micros(10), NodeId::new(2),
///               Exception::new(ExceptionId::new(2)))
///     .run();
///
/// let resolution = report.resolution_for(a1).unwrap();
/// assert_eq!(resolution.resolver, NodeId::new(2)); // max raiser
/// assert!(report.is_clean());
/// ```
pub struct Scenario {
    registry: Arc<ActionRegistry>,
    config: NetConfig,
    strategy: NestedStrategy,
    steps: Vec<(SimTime, NodeId, Event)>,
    handlers: Vec<(NodeId, ActionId, HandlerTable)>,
    nested_remaining: Vec<(NodeId, ActionId, Option<SimTime>)>,
    max_deliveries: u64,
    resolver_group: u32,
    leave_mode: LeaveMode,
    acceptance: Vec<(ActionId, AcceptanceTest)>,
    failover: bool,
    detection_delay: SimTime,
}

/// An exit-line acceptance test: `None` accepts, `Some(exc)` rejects
/// with the exception to raise (Fig. 2b).
type AcceptanceTest = Box<dyn FnMut() -> Option<Exception>>;

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("actions", &self.registry.len())
            .field("steps", &self.steps.len())
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl Scenario {
    /// Starts a scenario over the given action structure.
    #[must_use]
    pub fn new(registry: Arc<ActionRegistry>) -> Self {
        Scenario {
            registry,
            config: NetConfig::default(),
            strategy: NestedStrategy::Abort,
            steps: Vec::new(),
            handlers: Vec::new(),
            nested_remaining: Vec::new(),
            max_deliveries: 1_000_000,
            resolver_group: 1,
            leave_mode: LeaveMode::Managed,
            acceptance: Vec::new(),
            failover: true,
            detection_delay: SimTime::from_micros(100),
        }
    }

    /// Installs an acceptance test at `action`'s exit line (§2.2: all
    /// participants "leave it at the same time once the acceptance test
    /// … has been satisfied"; Fig. 2b). When every participant reaches
    /// the exit line, `test` runs: `None` accepts and the joint leave is
    /// granted; `Some(exc)` rejects and `exc` is raised (in the
    /// highest-numbered participant, which thereby becomes the
    /// resolver), driving recovery through the normal resolution
    /// machinery instead of the leave.
    ///
    /// Only meaningful under the centralized [`LeaveMode::Managed`]
    /// coordinator (the decentralized protocol would need an agreement
    /// round to evaluate a joint predicate).
    #[must_use]
    pub fn with_exit_acceptance<F>(mut self, action: ActionId, test: F) -> Self
    where
        F: FnMut() -> Option<Exception> + 'static,
    {
        self.acceptance.push((action, Box::new(test)));
        self
    }

    /// Selects centralized (default, message-free) or decentralized
    /// (`LeaveReady` broadcasts) coordination of synchronized leaves.
    #[must_use]
    pub fn with_leave_mode(mut self, mode: LeaveMode) -> Self {
        self.leave_mode = mode;
        self
    }

    /// Sets the resolver-group size `k` (§4.4 fault-tolerance
    /// extension): the `k` highest raisers all resolve and commit.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn with_resolver_group(mut self, k: u32) -> Self {
        assert!(k >= 1, "resolver group must contain at least one object");
        self.resolver_group = k;
        self
    }

    /// Replaces the network configuration (latency, faults, seed,
    /// tracing).
    #[must_use]
    pub fn with_config(mut self, config: NetConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the nested-action strategy (default: the paper's
    /// [`NestedStrategy::Abort`]).
    #[must_use]
    pub fn with_strategy(mut self, strategy: NestedStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps the number of deliveries before the run is stopped and
    /// flagged (livelock guard).
    #[must_use]
    pub fn with_delivery_limit(mut self, limit: u64) -> Self {
        self.max_deliveries = limit;
        self
    }

    /// Enables or disables resolver failover (default: enabled).
    ///
    /// With failover on, the engine plays the failure detector: every
    /// planned crash or restart in the fault plan is followed, one
    /// detection delay later, by an [`Event::DeserterSuspected`] at
    /// every survivor, and participants prune the deserter, re-elect a
    /// live resolver and fence the dead peer's late messages. With
    /// failover off the crash is still injected but never reported —
    /// the paper's literal §4.2 machine, which the model checker's
    /// CAEX018 proves can deadlock when the elected resolver dies.
    #[must_use]
    pub fn with_failover(mut self, enabled: bool) -> Self {
        self.failover = enabled;
        self
    }

    /// Sets the simulated failure-detector latency: the virtual time
    /// between a planned crash (or restart's down edge) and the
    /// [`Event::DeserterSuspected`] delivered to each survivor
    /// (default 100 µs). Only meaningful with failover enabled.
    #[must_use]
    pub fn with_detection_delay(mut self, delay: SimTime) -> Self {
        self.detection_delay = delay;
        self
    }

    /// Schedules `object` to enter `action` at `time`.
    #[must_use]
    pub fn enter_at(mut self, time: SimTime, object: NodeId, action: ActionId) -> Self {
        self.steps.push((time, object, Event::Enter(action)));
        self
    }

    /// Schedules every declared participant of `action` to enter it at
    /// `time`.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not declared.
    #[must_use]
    pub fn enter_all_at(mut self, time: SimTime, action: ActionId) -> Self {
        let participants = self
            .registry
            .scope(action)
            .expect("enter_all_at of undeclared action")
            .participants()
            .to_vec();
        for p in participants {
            self.steps.push((time, p, Event::Enter(action)));
        }
        self
    }

    /// Schedules `object` to raise `exc` in its then-active action.
    #[must_use]
    pub fn raise_at(mut self, time: SimTime, object: NodeId, exc: Exception) -> Self {
        self.steps.push((time, object, Event::Raise(exc)));
        self
    }

    /// Schedules `object` to complete `action` at `time`.
    #[must_use]
    pub fn complete_at(mut self, time: SimTime, object: NodeId, action: ActionId) -> Self {
        self.steps.push((time, object, Event::Complete(action)));
        self
    }

    /// Installs a handler table for `(object, action)`; objects without
    /// one default to [`HandlerTable::recover_all`].
    #[must_use]
    pub fn handlers(mut self, object: NodeId, action: ActionId, table: HandlerTable) -> Self {
        self.handlers.push((object, action, table));
        self
    }

    /// Declares remaining run time of `action` at `object` for the
    /// [`NestedStrategy::Wait`] comparison (`None` = never completes).
    #[must_use]
    pub fn nested_remaining(
        mut self,
        object: NodeId,
        action: ActionId,
        remaining: Option<SimTime>,
    ) -> Self {
        self.nested_remaining.push((object, action, remaining));
        self
    }

    /// The action structure this scenario runs over. Exposed so static
    /// analysis passes (`caex-lint`) can cross-check the scripted
    /// timeline against the declarations without executing it.
    #[must_use]
    pub fn registry(&self) -> &Arc<ActionRegistry> {
        &self.registry
    }

    /// The scripted timeline as `(time, object, event)` triples, in
    /// script order (the engine sorts by time at run time; this view
    /// preserves insertion order).
    pub fn scripted(&self) -> impl Iterator<Item = (SimTime, NodeId, &Event)> {
        self.steps.iter().map(|(t, o, e)| (*t, *o, e))
    }

    /// The installed handler tables as `(object, action)` bindings.
    pub fn handler_tables(&self) -> impl Iterator<Item = (NodeId, ActionId, &HandlerTable)> {
        self.handlers.iter().map(|(o, a, t)| (*o, *a, t))
    }

    /// The declared [`nested_remaining`](Self::nested_remaining) run
    /// times as `(object, action, remaining)` triples, in declaration
    /// order. Exposed for static analysis of the `Wait` strategy's
    /// deadlock conditions (Fig. 1a).
    pub fn nested_remaining_declared(
        &self,
    ) -> impl Iterator<Item = (NodeId, ActionId, Option<SimTime>)> + '_ {
        self.nested_remaining.iter().copied()
    }

    /// The nested-action strategy participants will run under.
    #[must_use]
    pub fn strategy(&self) -> NestedStrategy {
        self.strategy
    }

    /// The leave-coordination mode participants will run under.
    #[must_use]
    pub fn leave_mode(&self) -> LeaveMode {
        self.leave_mode
    }

    /// The resolver-group size `k` participants will run under.
    #[must_use]
    pub fn resolver_group_size(&self) -> u32 {
        self.resolver_group
    }

    /// Whether resolver failover is enabled (see
    /// [`Scenario::with_failover`]).
    #[must_use]
    pub fn failover(&self) -> bool {
        self.failover
    }

    /// The simulated failure-detector latency (see
    /// [`Scenario::with_detection_delay`]).
    #[must_use]
    pub fn detection_delay(&self) -> SimTime {
        self.detection_delay
    }

    /// The actions carrying exit-line acceptance tests, in installation
    /// order. The tests themselves are opaque closures; analyses that
    /// cannot evaluate them (the model checker) use this to detect
    /// their presence and bow out rather than silently mis-model the
    /// exit line.
    #[must_use]
    pub fn acceptance_actions(&self) -> Vec<ActionId> {
        self.acceptance.iter().map(|(a, _)| *a).collect()
    }

    /// Decomposes the scenario into its owned script parts — action
    /// structure, scripted timeline, handler-table bindings — so
    /// another runtime (the threaded engine, `caex-wire`'s per-process
    /// harness) can execute the same script. Engine-specific settings
    /// (network config, delivery limit, leave mode, acceptance tests)
    /// are dropped: they belong to the simulator, not the script.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn into_script(
        self,
    ) -> (
        Arc<ActionRegistry>,
        Vec<(SimTime, NodeId, Event)>,
        Vec<(NodeId, ActionId, HandlerTable)>,
    ) {
        (self.registry, self.steps, self.handlers)
    }

    /// Executes the scenario to quiescence and reports.
    ///
    /// # Panics
    ///
    /// Panics on scenario programming errors surfaced by participants
    /// (entering actions out of nesting order, raising outside actions).
    #[must_use]
    pub fn run(self) -> RunReport {
        self.run_observed(&mut ())
    }

    /// Like [`Scenario::run`], but streams typed [`caex_obs::ObsEvent`]s
    /// to `obs` while the protocol executes — the engine's structured
    /// observability tap. The [`crate::ObsBridge`] translation layers on
    /// top of (never replaces) the `TraceLog` and `RunReport`.
    ///
    /// # Panics
    ///
    /// Panics on the same scenario programming errors as [`Scenario::run`].
    #[must_use]
    pub fn run_observed(self, obs: &mut dyn caex_obs::Observer) -> RunReport {
        let num_nodes = self
            .registry
            .iter()
            .flat_map(|(_, s)| s.participants().iter().copied())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        // The engine plays the failure detector (with failover on):
        // collect the fault plan's crash/restart schedule before the
        // config moves into the net, then deliver a `DeserterSuspected`
        // to every survivor one detection delay after each down edge.
        let mut suspicions: Vec<(SimTime, NodeId)> = Vec::new();
        if self.failover {
            suspicions.extend(self.config.faults.crashes().map(|(n, at)| (at, n)));
            suspicions.extend(self.config.faults.restarts().map(|(n, down, _)| (down, n)));
        }
        let mut net: SimNet<Event> = SimNet::new(self.config, num_nodes);
        let mut participants: HashMap<NodeId, Participant> = (0..num_nodes)
            .map(NodeId::new)
            .map(|id| {
                let mut p = Participant::new(id, Arc::clone(&self.registry), self.strategy);
                p.set_resolver_group(self.resolver_group);
                p.set_leave_mode(self.leave_mode);
                p.set_failover(self.failover);
                (id, p)
            })
            .collect();
        for &(down_at, victim) in &suspicions {
            let report_at = down_at + self.detection_delay;
            for survivor in (0..num_nodes).map(NodeId::new) {
                if survivor != victim {
                    net.schedule_local(
                        report_at,
                        survivor,
                        Event::DeserterSuspected { peer: victim },
                    );
                }
            }
        }
        for (object, action, table) in self.handlers {
            participants
                .get_mut(&object)
                .expect("handler for unknown object")
                .set_handlers(action, table);
        }
        for (object, action, remaining) in self.nested_remaining {
            participants
                .get_mut(&object)
                .expect("nested_remaining for unknown object")
                .set_nested_remaining(action, remaining);
        }
        for (time, object, event) in self.steps {
            net.schedule_local(time, object, event);
        }

        let mut notes = Vec::new();
        let mut resolutions = Vec::new();
        let mut handler_starts = Vec::new();
        let mut failures = Vec::new();
        let mut multicasts = std::collections::BTreeMap::new();
        let mut wire_bytes = 0u64;
        let mut hit_delivery_limit = false;
        // Synchronized exit lines: action -> objects waiting to leave.
        let mut leave_requests: HashMap<ActionId, std::collections::BTreeSet<NodeId>> =
            HashMap::new();
        let mut acceptance: HashMap<ActionId, AcceptanceTest> =
            self.acceptance.into_iter().collect();
        let mut bridge = crate::ObsBridge::new();

        while let Some(delivery) = net.next_delivery() {
            if net.delivered_count() > self.max_deliveries {
                hit_delivery_limit = true;
                break;
            }
            let at = delivery.at;
            let object = delivery.to;
            let participant = participants
                .get_mut(&object)
                .expect("delivery to unknown object");
            if let caex_net::DeliverySource::Remote(from) = delivery.source {
                bridge.on_receive(object, &delivery.payload, from, at, None, obs);
            }
            let pre = bridge.pre(participant, &delivery.payload);
            let effects = participant.handle(delivery.payload);
            bridge.post(&pre, participant, &effects, at, None, obs);
            for effect in effects {
                match effect {
                    Effect::Send { to, msg } => {
                        wire_bytes += crate::codec::encoded_len(&msg) as u64;
                        net.send(object, to, Event::Msg(msg));
                    }
                    Effect::After { delay, event } => net.schedule_local_in(delay, object, event),
                    Effect::Note(note) => {
                        match &note {
                            Note::ResolutionCommitted {
                                action,
                                resolver,
                                resolved,
                                raised,
                            } => resolutions.push(ResolutionRecord {
                                action: *action,
                                resolver: *resolver,
                                resolved: resolved.clone(),
                                raised: raised.clone(),
                                at,
                            }),
                            Note::HandlerStarted {
                                object: o,
                                action,
                                exc,
                                ..
                            } => handler_starts.push(HandlerStart {
                                object: *o,
                                action: *action,
                                exc: exc.clone(),
                                at,
                            }),
                            Note::ActionFailed {
                                object: o,
                                action,
                                exc,
                            } => failures.push((*o, *action, exc.clone())),
                            Note::Multicast { kind, .. } => {
                                *multicasts.entry((*kind).to_owned()).or_insert(0u64) += 1;
                            }
                            Note::LeaveRequested { object: o, action }
                                if self.leave_mode == LeaveMode::Managed =>
                            {
                                // The centralized action manager's
                                // synchronized exit: grant the leave once
                                // every participant is at the line.
                                let waiting = leave_requests.entry(*action).or_default();
                                waiting.insert(*o);
                                let everyone = self
                                    .registry
                                    .scope(*action)
                                    .expect("declared action")
                                    .participants();
                                if waiting.len() == everyone.len() {
                                    // Fig. 2b: the acceptance test runs
                                    // at the exit line. Rejection turns
                                    // into a raised exception at the
                                    // highest-numbered participant; an
                                    // exhausted (or absent) test accepts.
                                    let verdict = acceptance.get_mut(action).and_then(|t| t());
                                    match verdict {
                                        Some(exc) => {
                                            waiting.clear();
                                            let tester =
                                                *everyone.last().expect("actions are non-empty");
                                            net.schedule_local(
                                                net.now(),
                                                tester,
                                                Event::Raise(exc),
                                            );
                                        }
                                        None => {
                                            for &member in everyone {
                                                net.schedule_local(
                                                    net.now(),
                                                    member,
                                                    Event::LeaveGranted(*action),
                                                );
                                            }
                                        }
                                    }
                                }
                            }
                            _ => {}
                        }
                        notes.push(note);
                    }
                }
            }
        }

        let deadlocked: Vec<NodeId> = participants
            .values()
            .filter(|p| !p.is_normal())
            .map(Participant::id)
            .collect();
        obs.on_run_end(net.now());

        RunReport {
            resolutions,
            handler_starts,
            failures,
            notes,
            stats: net.stats().clone(),
            finished_at: net.now(),
            deadlocked,
            hit_delivery_limit,
            trace: net.trace().clone(),
            multicasts,
            wire_bytes,
        }
    }
}
