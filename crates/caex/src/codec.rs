//! A compact binary wire format for the protocol messages.
//!
//! The paper stresses that distributed objects "must communicate by the
//! exchange of messages over relatively narrow bandwidth communication
//! channels" (§2.1), so the *byte* volume of the protocol matters as
//! well as the message count. This module defines the wire encoding the
//! threaded transport would put on a real network and lets the harness
//! report byte volumes per §4.4 workload.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! tag:u8  body…
//!   1 Exception        action:u32 from:u32 exception
//!   2 HaveNested       from:u32 action:u32
//!   3 NestedCompleted  action:u32 from:u32 flag:u8 [exception]
//!   4 Ack              from:u32 action:u32
//!   5 Commit           action:u32 from:u32 exception
//! exception := id:u32 severity:u8 origin:opt_str detail:opt_str
//! opt_str   := 0:u8 | 1:u8 len:u16 utf8-bytes
//! ```
//!
//! # Examples
//!
//! ```
//! use caex::codec;
//! use caex::Msg;
//! use caex_action::ActionId;
//! use caex_net::NodeId;
//! use caex_tree::{Exception, ExceptionId};
//!
//! let msg = Msg::Commit {
//!     action: ActionId::new(1),
//!     from: NodeId::new(2),
//!     exc: Exception::new(ExceptionId::new(9)),
//! };
//! let bytes = codec::encode(&msg);
//! assert_eq!(codec::decode(&bytes).unwrap(), msg);
//! assert_eq!(bytes.len(), codec::encoded_len(&msg));
//! ```

use crate::Msg;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use caex_action::ActionId;
use caex_net::NodeId;
use caex_tree::{Exception, ExceptionId, Severity};
use std::error::Error;
use std::fmt;

/// Errors produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// An unknown message tag.
    BadTag(u8),
    /// An unknown severity byte.
    BadSeverity(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes followed a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadSeverity(s) => write!(f, "unknown severity byte {s}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid utf-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for CodecError {}

const TAG_EXCEPTION: u8 = 1;
const TAG_HAVE_NESTED: u8 = 2;
const TAG_NESTED_COMPLETED: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_LEAVE_READY: u8 = 6;

fn put_opt_str(buf: &mut BytesMut, s: Option<&str>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            let bytes = s.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            buf.put_u16_le(len as u16);
            buf.put_slice(&bytes[..len]);
        }
    }
}

fn opt_str_len(s: Option<&str>) -> usize {
    match s {
        None => 1,
        Some(s) => 1 + 2 + s.len().min(u16::MAX as usize),
    }
}

fn put_exception(buf: &mut BytesMut, exc: &Exception) {
    buf.put_u32_le(exc.id().index());
    buf.put_u8(match exc.severity() {
        Severity::Recoverable => 0,
        Severity::Serious => 1,
        Severity::Fatal => 2,
    });
    put_opt_str(buf, exc.origin());
    put_opt_str(buf, exc.detail());
}

fn exception_len(exc: &Exception) -> usize {
    4 + 1 + opt_str_len(exc.origin()) + opt_str_len(exc.detail())
}

/// Encodes a message into a freshly allocated buffer.
#[must_use]
pub fn encode(msg: &Msg) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(msg));
    match msg {
        Msg::Exception { action, from, exc } => {
            buf.put_u8(TAG_EXCEPTION);
            buf.put_u32_le(action.index());
            buf.put_u32_le(from.index());
            put_exception(&mut buf, exc);
        }
        Msg::HaveNested { from, action } => {
            buf.put_u8(TAG_HAVE_NESTED);
            buf.put_u32_le(from.index());
            buf.put_u32_le(action.index());
        }
        Msg::NestedCompleted { action, from, exc } => {
            buf.put_u8(TAG_NESTED_COMPLETED);
            buf.put_u32_le(action.index());
            buf.put_u32_le(from.index());
            match exc {
                None => buf.put_u8(0),
                Some(exc) => {
                    buf.put_u8(1);
                    put_exception(&mut buf, exc);
                }
            }
        }
        Msg::Ack { from, action } => {
            buf.put_u8(TAG_ACK);
            buf.put_u32_le(from.index());
            buf.put_u32_le(action.index());
        }
        Msg::Commit { action, from, exc } => {
            buf.put_u8(TAG_COMMIT);
            buf.put_u32_le(action.index());
            buf.put_u32_le(from.index());
            put_exception(&mut buf, exc);
        }
        Msg::LeaveReady { from, action } => {
            buf.put_u8(TAG_LEAVE_READY);
            buf.put_u32_le(from.index());
            buf.put_u32_le(action.index());
        }
    }
    buf.freeze()
}

/// Exact size [`encode`] will produce for this message.
#[must_use]
pub fn encoded_len(msg: &Msg) -> usize {
    match msg {
        Msg::Exception { exc, .. } => 1 + 4 + 4 + exception_len(exc),
        Msg::HaveNested { .. } | Msg::Ack { .. } | Msg::LeaveReady { .. } => 1 + 4 + 4,
        Msg::NestedCompleted { exc, .. } => 1 + 4 + 4 + 1 + exc.as_ref().map_or(0, exception_len),
        Msg::Commit { exc, .. } => 1 + 4 + 4 + exception_len(exc),
    }
}

fn get_opt_str(buf: &mut Bytes) -> Result<Option<String>, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    match buf.get_u8() {
        0 => Ok(None),
        _ => {
            if buf.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            let len = buf.get_u16_le() as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            let raw = buf.copy_to_bytes(len);
            String::from_utf8(raw.to_vec())
                .map(Some)
                .map_err(|_| CodecError::BadUtf8)
        }
    }
}

fn get_exception(buf: &mut Bytes) -> Result<Exception, CodecError> {
    if buf.remaining() < 5 {
        return Err(CodecError::Truncated);
    }
    let id = ExceptionId::new(buf.get_u32_le());
    let severity = match buf.get_u8() {
        0 => Severity::Recoverable,
        1 => Severity::Serious,
        2 => Severity::Fatal,
        other => return Err(CodecError::BadSeverity(other)),
    };
    let origin = get_opt_str(buf)?;
    let detail = get_opt_str(buf)?;
    let mut exc = Exception::new(id).with_severity(severity);
    if let Some(origin) = origin {
        exc = exc.with_origin(origin);
    }
    if let Some(detail) = detail {
        exc = exc.with_detail(detail);
    }
    Ok(exc)
}

/// Decodes one message, requiring the buffer to contain exactly one.
///
/// # Errors
///
/// Any [`CodecError`] variant, including [`CodecError::TrailingBytes`]
/// when the buffer holds more than one message.
pub fn decode(bytes: &Bytes) -> Result<Msg, CodecError> {
    let mut buf = bytes.clone();
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    let need_u32 = |buf: &mut Bytes| -> Result<u32, CodecError> {
        if buf.remaining() < 4 {
            Err(CodecError::Truncated)
        } else {
            Ok(buf.get_u32_le())
        }
    };
    let msg = match tag {
        TAG_EXCEPTION => {
            let action = ActionId::new(need_u32(&mut buf)?);
            let from = NodeId::new(need_u32(&mut buf)?);
            let exc = get_exception(&mut buf)?;
            Msg::Exception { action, from, exc }
        }
        TAG_HAVE_NESTED => {
            let from = NodeId::new(need_u32(&mut buf)?);
            let action = ActionId::new(need_u32(&mut buf)?);
            Msg::HaveNested { from, action }
        }
        TAG_NESTED_COMPLETED => {
            let action = ActionId::new(need_u32(&mut buf)?);
            let from = NodeId::new(need_u32(&mut buf)?);
            if buf.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            let exc = if buf.get_u8() == 0 {
                None
            } else {
                Some(get_exception(&mut buf)?)
            };
            Msg::NestedCompleted { action, from, exc }
        }
        TAG_ACK => {
            let from = NodeId::new(need_u32(&mut buf)?);
            let action = ActionId::new(need_u32(&mut buf)?);
            Msg::Ack { from, action }
        }
        TAG_COMMIT => {
            let action = ActionId::new(need_u32(&mut buf)?);
            let from = NodeId::new(need_u32(&mut buf)?);
            let exc = get_exception(&mut buf)?;
            Msg::Commit { action, from, exc }
        }
        TAG_LEAVE_READY => {
            let from = NodeId::new(need_u32(&mut buf)?);
            let action = ActionId::new(need_u32(&mut buf)?);
            Msg::LeaveReady { from, action }
        }
        other => return Err(CodecError::BadTag(other)),
    };
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        let action = ActionId::new(3);
        let from = NodeId::new(2);
        let bare = Exception::new(ExceptionId::new(7));
        let rich = Exception::new(ExceptionId::new(8))
            .with_severity(Severity::Fatal)
            .with_origin("sensor-9")
            .with_detail("pressure over limit");
        vec![
            Msg::Exception {
                action,
                from,
                exc: rich.clone(),
            },
            Msg::Exception {
                action,
                from,
                exc: bare.clone(),
            },
            Msg::HaveNested { from, action },
            Msg::NestedCompleted {
                action,
                from,
                exc: None,
            },
            Msg::NestedCompleted {
                action,
                from,
                exc: Some(rich),
            },
            Msg::Ack { from, action },
            Msg::Commit {
                action,
                from,
                exc: bare,
            },
            Msg::LeaveReady { from, action },
        ]
    }

    #[test]
    fn round_trips_every_variant() {
        for msg in samples() {
            let bytes = encode(&msg);
            assert_eq!(decode(&bytes).unwrap(), msg, "{msg}");
        }
    }

    #[test]
    fn encoded_len_is_exact() {
        for msg in samples() {
            assert_eq!(encode(&msg).len(), encoded_len(&msg), "{msg}");
        }
    }

    #[test]
    fn ack_is_the_smallest_message() {
        let ack = Msg::Ack {
            from: NodeId::new(0),
            action: ActionId::new(0),
        };
        assert_eq!(encoded_len(&ack), 9);
        for msg in samples() {
            assert!(encoded_len(&msg) >= 9);
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        for msg in samples() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                let prefix = bytes.slice(0..cut);
                assert!(
                    decode(&prefix).is_err(),
                    "{msg} decoded from {cut}/{} bytes",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let msg = Msg::Ack {
            from: NodeId::new(1),
            action: ActionId::new(1),
        };
        let mut extended = BytesMut::from(&encode(&msg)[..]);
        extended.put_u8(0xFF);
        assert_eq!(
            decode(&extended.freeze()),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_tag_and_severity_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        assert_eq!(decode(&buf.freeze()), Err(CodecError::BadTag(99)));

        let mut buf = BytesMut::new();
        buf.put_u8(TAG_COMMIT);
        buf.put_u32_le(0); // action
        buf.put_u32_le(0); // from
        buf.put_u32_le(0); // exception id
        buf.put_u8(7); // bad severity
        buf.put_u8(0);
        buf.put_u8(0);
        assert_eq!(decode(&buf.freeze()), Err(CodecError::BadSeverity(7)));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_COMMIT);
        buf.put_u32_le(0); // action
        buf.put_u32_le(2); // from
        buf.put_u32_le(1); // exception id
        buf.put_u8(0); // severity
        buf.put_u8(1); // origin present
        buf.put_u16_le(2);
        buf.put_slice(&[0xFF, 0xFE]); // invalid utf-8
        buf.put_u8(0); // no detail
        assert_eq!(decode(&buf.freeze()), Err(CodecError::BadUtf8));
    }

    #[test]
    fn long_strings_are_capped_at_u16() {
        let long = "x".repeat(70_000);
        let msg = Msg::Commit {
            action: ActionId::new(0),
            from: NodeId::new(0),
            exc: Exception::new(ExceptionId::new(1)).with_detail(long),
        };
        let bytes = encode(&msg);
        let decoded = decode(&bytes).unwrap();
        if let Msg::Commit { exc, .. } = decoded {
            assert_eq!(exc.detail().unwrap().len(), u16::MAX as usize);
        } else {
            panic!("wrong variant");
        }
    }
}
