//! Effects emitted by the participant state machine and the report
//! notes that document what happened.

use crate::{Event, Msg};
use caex_action::ActionId;
use caex_net::{NodeId, SimTime};
use caex_tree::Exception;
use serde::{Deserialize, Serialize};

/// How an object inside a nested action reacts when an exception is
/// raised in a containing action — the two methods of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NestedStrategy {
    /// Fig. 1(b), the paper's choice: raise an abortion exception in the
    /// nested actions and run their abortion handlers.
    #[default]
    Abort,
    /// Fig. 1(a): wait for the nested actions to complete. Simple but
    /// unbounded — and a deadlock if a nested action has a belated
    /// participant that never arrives.
    Wait,
}

/// How the synchronized exit of an action is coordinated — the paper's
/// "(centralized or decentralized) manager of CA actions" (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LeaveMode {
    /// A centralized manager (the engine) observes every participant
    /// reaching the exit line and grants the joint leave — free of
    /// protocol messages, which matches the paper's accounting.
    #[default]
    Managed,
    /// Decentralized: each participant broadcasts `LeaveReady` and
    /// leaves once it has everyone's announcement — `N(N−1)` extra
    /// messages per completing action, counted separately from the
    /// §4.4 resolution laws.
    Distributed,
}

/// An instruction the participant asks its runtime to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send a protocol message to a peer.
    Send {
        /// Destination object.
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// Deliver `event` back to this participant after `delay` of
    /// virtual time (handler/abortion execution cost).
    After {
        /// Virtual-time delay.
        delay: SimTime,
        /// The continuation event.
        event: Event,
    },
    /// A report note; does not affect the protocol.
    Note(Note),
}

/// Observations recorded while the protocol runs; the engine collects
/// them into the run report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Note {
    /// An object entered an action.
    Entered {
        /// The entering object.
        object: NodeId,
        /// The entered action.
        action: ActionId,
    },
    /// A belated or suspended object's entry was skipped.
    EnterSkipped {
        /// The object.
        object: NodeId,
        /// The action it could not enter.
        action: ActionId,
    },
    /// An object finished its work in an action and is waiting at the
    /// synchronized exit line for the other participants.
    LeaveRequested {
        /// The waiting object.
        object: NodeId,
        /// The action it wants to leave.
        action: ActionId,
    },
    /// An object completed an action normally.
    Completed {
        /// The completing object.
        object: NodeId,
        /// The completed action.
        action: ActionId,
    },
    /// An exception was raised (locally or as a signalled failure).
    Raised {
        /// The raising object.
        object: NodeId,
        /// The action raised in.
        action: ActionId,
        /// The occurrence.
        exc: Exception,
    },
    /// A raise was suppressed because the object already left the
    /// normal state (one exception per object per action, §4.1).
    RaiseSuppressed {
        /// The object.
        object: NodeId,
        /// The suppressed occurrence.
        exc: Exception,
    },
    /// A message belonging to an eliminated or finished resolution was
    /// discarded.
    StaleMessage {
        /// The receiving object.
        object: NodeId,
        /// The discarded message.
        msg: Msg,
    },
    /// Buffered messages of a nested action were cleaned up after a
    /// `HaveNested` announced its abortion.
    CleanedNestedMessages {
        /// The cleaning object.
        object: NodeId,
        /// The nested action whose messages were dropped.
        action: ActionId,
    },
    /// An object aborted its chain of nested actions (innermost first).
    AbortedNested {
        /// The aborting object.
        object: NodeId,
        /// The action unwound to.
        outer: ActionId,
        /// The aborted chain, innermost first.
        chain: Vec<ActionId>,
    },
    /// Wait strategy: an object is waiting for nested actions instead
    /// of aborting them.
    WaitingForNested {
        /// The waiting object.
        object: NodeId,
        /// The action unwound to.
        outer: ActionId,
        /// The chain being waited for.
        chain: Vec<ActionId>,
        /// `true` if some nested action can never complete (deadlock).
        forever: bool,
    },
    /// An abortion handler's signal from a deeper nested action was
    /// ignored (§4.1: only the directly nested action may signal).
    DeepSignalIgnored {
        /// The object.
        object: NodeId,
        /// The deep action whose signal was dropped.
        action: ActionId,
        /// The dropped exception.
        exc: Exception,
    },
    /// The elected resolver resolved the raised set and committed.
    ResolutionCommitted {
        /// The resolved action.
        action: ActionId,
        /// The elected resolver (max id among raisers).
        resolver: NodeId,
        /// The resolving exception.
        resolved: Exception,
        /// The raised set that entered resolution.
        raised: Vec<(NodeId, Exception)>,
    },
    /// A handler for the resolved exception started at an object.
    HandlerStarted {
        /// The object.
        object: NodeId,
        /// The action whose handler runs.
        action: ActionId,
        /// The handled exception.
        exc: Exception,
        /// The failure exception the handler will signal, if recovery
        /// fails.
        will_signal: Option<Exception>,
    },
    /// A handler signalled a failure exception to the containing action.
    SignalledFailure {
        /// The signalling object.
        object: NodeId,
        /// The failed action.
        action: ActionId,
        /// The signalled exception.
        exc: Exception,
    },
    /// One protocol fan-out (Exception / HaveNested / NestedCompleted /
    /// Commit broadcast to the action's peers). Under the reliable
    /// multicast of §4.5 each fan-out would be a single multicast and
    /// ACKs would disappear; counting fan-outs measures that regime.
    Multicast {
        /// The broadcasting object.
        object: NodeId,
        /// Message kind of the fan-out.
        kind: &'static str,
    },
    /// A peer was detected as crashed (a *deserter*, §2.2's fault
    /// assumption relaxed by the wire transport's failure detector) and
    /// excluded from the resolution: its outstanding ACK / abortion /
    /// leave obligations were waived and its raised exceptions dropped
    /// from `LE` so a live raiser wins the resolver election.
    Deserted {
        /// The surviving object that processed the desertion.
        object: NodeId,
        /// The crashed peer.
        peer: NodeId,
    },
    /// The accrual failure detector suspects a peer (silence beyond the
    /// suspicion threshold φ) without confirming its death: no
    /// obligation is waived, no exclusion happens — a latency spike or
    /// transient partition must not amputate a healthy peer. Either a
    /// [`Note::PeerRejoined`] (the peer returned) or a
    /// [`Note::Deserted`] (the detector confirmed) follows.
    PeerSuspected {
        /// The observing object.
        object: NodeId,
        /// The suspected peer.
        peer: NodeId,
    },
    /// A previously suspected peer was heard from again (the suspicion
    /// flapped — the partition healed). The observer re-forwards any
    /// commit the peer may have missed while unreachable.
    PeerRejoined {
        /// The observing object.
        object: NodeId,
        /// The returning peer.
        peer: NodeId,
    },
    /// The failure detector reported the *elected resolver* of an
    /// in-flight resolution as dead: the survivor drops the deserter's
    /// raised exceptions and (with failover enabled) falls back to the
    /// Exceptional state so a live raiser can be re-elected.
    ResolverSuspected {
        /// The surviving object that lost its resolver.
        object: NodeId,
        /// The action whose resolution lost its resolver.
        action: ActionId,
        /// The dead resolver (the max raiser before pruning).
        peer: NodeId,
    },
    /// A surviving raiser won the re-run election after the original
    /// resolver deserted, and is about to resolve and commit in its
    /// place.
    ResolverReelected {
        /// The action being resolved.
        action: ActionId,
        /// The newly elected resolver (max *live* raiser).
        resolver: NodeId,
        /// The resolver it replaces.
        replaced: NodeId,
    },
    /// A top-level action failed (no containing action to signal to).
    ActionFailed {
        /// The object.
        object: NodeId,
        /// The failed top-level action.
        action: ActionId,
        /// The failure exception.
        exc: Exception,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_strategy_is_abort() {
        assert_eq!(NestedStrategy::default(), NestedStrategy::Abort);
    }

    #[test]
    fn effects_compare_structurally() {
        let a = Effect::Note(Note::EnterSkipped {
            object: NodeId::new(1),
            action: ActionId::new(2),
        });
        let b = Effect::Note(Note::EnterSkipped {
            object: NodeId::new(1),
            action: ActionId::new(2),
        });
        assert_eq!(a, b);
    }
}
