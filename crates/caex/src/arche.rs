//! The Arche resolution model (§4.4's related-work comparison),
//! executable.
//!
//! Arche [Issarny et al.] lets a *multi-function call* invoke all `N`
//! implementations of one type; exceptions "propagated from several
//! objects … of the same type" are passed to a programmer-supplied
//! **resolution function** which returns the single "concerted"
//! exception, handled **in the context of the calling object**.
//!
//! The paper's critique, which this module makes testable:
//!
//! - Arche's model fits NVP-type schemes (replicated implementations of
//!   one type — see [`caex_action::nvp`]) but
//! - it "is not suitable for cooperative concurrency and recovery of
//!   several objects with different types": the callees take no part in
//!   recovery (only the *caller* handles the concerted exception — no
//!   cooperative handlers, no nested actions, no abortion machinery),
//!   and
//! - resolution is by an arbitrary function, not a declared exception
//!   tree — though a tree can be *used* as that function, which is how
//!   the two models meet (see the tests).

use caex_tree::{Exception, ExceptionTree};
use std::fmt;

type Implementation<I, O> = Box<dyn FnMut(I) -> Result<O, Exception> + Send>;

/// Outcome of a multi-function call whose implementations all
/// succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutputs<O> {
    /// One output per implementation, in registration order.
    pub outputs: Vec<O>,
}

/// An Arche-style multi-function call over `N` implementations of one
/// type. See the [module docs](self).
pub struct MultiCall<I, O> {
    implementations: Vec<Implementation<I, O>>,
}

impl<I, O> fmt::Debug for MultiCall<I, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiCall")
            .field("implementations", &self.implementations.len())
            .finish()
    }
}

impl<I, O> Default for MultiCall<I, O> {
    fn default() -> Self {
        MultiCall {
            implementations: Vec::new(),
        }
    }
}

impl<I: Clone, O> MultiCall<I, O> {
    /// Creates an empty multi-call.
    #[must_use]
    pub fn new() -> Self {
        MultiCall::default()
    }

    /// Registers one implementation of the called type.
    pub fn implementation<F>(&mut self, body: F) -> &mut Self
    where
        F: FnMut(I) -> Result<O, Exception> + Send + 'static,
    {
        self.implementations.push(Box::new(body));
        self
    }

    /// Number of registered implementations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.implementations.len()
    }

    /// `true` if no implementations are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.implementations.is_empty()
    }

    /// The multi-function call: invokes every implementation on (a
    /// clone of) `input`. If all succeed, their outputs are returned.
    /// If any raised, `resolution` — Arche's programmer-supplied
    /// function — receives *all* raised exceptions and its concerted
    /// exception is returned as the `Err` for the **caller** to handle
    /// (the callees perform no recovery of their own).
    ///
    /// # Errors
    ///
    /// The concerted exception, when any implementation raised.
    ///
    /// # Panics
    ///
    /// Panics if no implementations are registered.
    pub fn call<R>(&mut self, input: I, resolution: R) -> Result<CallOutputs<O>, Exception>
    where
        R: FnOnce(&[Exception]) -> Exception,
    {
        assert!(!self.implementations.is_empty(), "no implementations");
        let mut outputs = Vec::with_capacity(self.implementations.len());
        let mut raised = Vec::new();
        for implementation in &mut self.implementations {
            match implementation(input.clone()) {
                Ok(o) => outputs.push(o),
                Err(exc) => raised.push(exc),
            }
        }
        if raised.is_empty() {
            Ok(CallOutputs { outputs })
        } else {
            Err(resolution(&raised))
        }
    }
}

/// Adapts an exception tree into an Arche resolution function: the
/// concerted exception is the tree's least covering ancestor — showing
/// the two models agree on *what* to resolve to while differing on
/// *who recovers*.
///
/// # Examples
///
/// ```
/// use caex::arche::tree_resolution;
/// use caex_tree::{aircraft_tree, Exception};
///
/// let tree = aircraft_tree();
/// let left = tree.id_of("left_engine_exception").unwrap();
/// let right = tree.id_of("right_engine_exception").unwrap();
/// let resolve = tree_resolution(&tree);
/// let concerted = resolve(&[Exception::new(left), Exception::new(right)]);
/// assert_eq!(
///     tree.name(concerted.id()).unwrap(),
///     "emergency_engine_loss_exception"
/// );
/// ```
pub fn tree_resolution(tree: &ExceptionTree) -> impl Fn(&[Exception]) -> Exception + '_ {
    move |raised: &[Exception]| {
        let id = tree
            .resolve_occurrences(raised.iter())
            .expect("raised set is non-empty and from this tree");
        Exception::new(id).with_origin("arche resolution function")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_tree::{aircraft_tree, ExceptionId};

    #[test]
    fn all_implementations_succeeding_returns_outputs() {
        let mut call: MultiCall<i32, i32> = MultiCall::new();
        call.implementation(|x| Ok(x * 2))
            .implementation(|x| Ok(x * 2 + 1));
        let out = call.call(10, |_| unreachable!()).unwrap();
        assert_eq!(out.outputs, vec![20, 21]);
    }

    #[test]
    fn concerted_exception_goes_to_the_caller_only() {
        // The paper's structural point: handlers run in the CALLER's
        // context, never in the implementations. We count handler
        // activations to prove it.
        let tree = aircraft_tree();
        let left = tree.id_of("left_engine_exception").unwrap();
        let right = tree.id_of("right_engine_exception").unwrap();
        let emergency = tree.id_of("emergency_engine_loss_exception").unwrap();

        let mut call: MultiCall<(), ()> = MultiCall::new();
        call.implementation(move |()| Err(Exception::new(left)))
            .implementation(move |()| Err(Exception::new(right)))
            .implementation(|()| Ok(()));

        let concerted = call
            .call((), tree_resolution(&tree))
            .expect_err("exceptions were raised");
        // The caller gets the concerted exception to handle alone; the
        // model offers the callees no handler to run (contrast with the
        // engine tests, where every participant starts one).
        assert_eq!(concerted.id(), emergency);
    }

    #[test]
    fn custom_resolution_functions_are_arbitrary() {
        // Unlike the statically declared tree, Arche's function is free
        // code — here it just picks the highest id, which (as the
        // priority ablation shows) need not cover the others.
        let mut call: MultiCall<(), ()> = MultiCall::new();
        call.implementation(|()| Err(Exception::new(ExceptionId::new(2))))
            .implementation(|()| Err(Exception::new(ExceptionId::new(3))));
        let err = call
            .call((), |raised| {
                raised
                    .iter()
                    .max_by_key(|e| e.id())
                    .expect("non-empty")
                    .clone()
            })
            .unwrap_err();
        assert_eq!(err.id(), ExceptionId::new(3));
    }

    #[test]
    fn nvp_shape_is_expressible() {
        // §4.4: Arche "can be used for NVP-type schemes": N replicas of
        // one function; failures become exceptions the caller resolves.
        let mut call: MultiCall<u32, u32> = MultiCall::new();
        call.implementation(|x| Ok(x + 1))
            .implementation(|x| Ok(x + 1))
            .implementation(|_| Err(Exception::new(ExceptionId::ROOT)));
        let err = call.call(5, |raised| raised[0].clone()).unwrap_err();
        assert_eq!(err.id(), ExceptionId::ROOT);
        // Whereas what Arche cannot express — O2 aborting a nested
        // action and signalling into a containing one, belated
        // participants, per-participant handlers — has no counterpart
        // in this API at all: the type system of the model is the
        // paper's argument, exercised by the full engine tests instead.
    }

    #[test]
    #[should_panic(expected = "no implementations")]
    fn empty_call_panics() {
        let mut call: MultiCall<(), ()> = MultiCall::new();
        let _ = call.call((), |_| unreachable!());
    }
}
