//! The bridge between the engines' [`Note`]/[`Effect`] stream and the
//! typed [`caex_obs`] event stream.
//!
//! [`ObsBridge`] wraps every `Participant::handle` call: [`ObsBridge::pre`]
//! snapshots the participant's observable state before the event is
//! applied, [`ObsBridge::post`] compares it with the state afterwards and
//! translates the emitted effects into [`ObsEvent`]s — opening and
//! closing `(action, round)` correlation spans along the way. One
//! bridge instance serves a whole run: the per-action round counters
//! are global, which is what makes the correlation ids line up across
//! participants.
//!
//! Two translations are synthesized rather than copied from notes:
//!
//! - **Abortion end** — `on_abortion_done` has no dedicated note; the
//!   bridge derives [`ObsKind::AbortionEnd`] from the `aborting` flag
//!   dropping across the handle (stale `AbortionDone` continuations,
//!   whose epoch mismatches, correctly emit nothing).
//! - **Signal raises** — an abortion handler's signalled exception is
//!   pushed straight into `LE` without a `Raised` note; the bridge
//!   emits the [`ObsKind::Raise`] so metrics still count the paper's
//!   `P` correctly (Example 2's `E3`).

use crate::{Effect, Event, Note, PState, Participant};
use caex_action::ActionId;
use caex_net::{Kinded, NodeId, SimTime};
use caex_obs::{CorrelationId, ObsEvent, ObsKind, ObsState, Observer};
use caex_tree::Exception;
use std::collections::HashMap;

/// Maps the participant's optional [`PState`] onto the observable
/// four-state alphabet (`None` is the paper's `N`).
#[must_use]
pub fn obs_state(state: Option<PState>) -> ObsState {
    match state {
        None => ObsState::N,
        Some(PState::Exceptional) => ObsState::X,
        Some(PState::Suspended) => ObsState::S,
        Some(PState::Ready) => ObsState::R,
    }
}

/// Pre-`handle` snapshot of everything `post` needs to diff.
#[derive(Debug, Clone)]
pub struct PreSnapshot {
    object: NodeId,
    state: Option<PState>,
    aborting: bool,
    res_action: Option<ActionId>,
    active_action: Option<ActionId>,
    handler_done: Option<(ActionId, bool)>,
    abortion_done: Option<(ActionId, Option<Exception>)>,
}

#[derive(Debug, Default)]
struct RoundState {
    number: u32,
    open: bool,
    /// `true` when the round was opened by incoming traffic rather
    /// than a local `Raised` note — the per-process (`caex-wire`)
    /// case, where the bridge of a non-raiser first learns of a
    /// remote round from the wire itself.
    silent: bool,
}

/// Translates `Participant::handle` calls into [`ObsEvent`]s.
#[derive(Debug, Default)]
pub struct ObsBridge {
    rounds: HashMap<ActionId, RoundState>,
    open_handlers: HashMap<NodeId, ActionId>,
    /// Peers currently observed as suspected, keyed on the emitted
    /// events — makes the suspicion translations idempotent, since a
    /// suspicion can surface twice (once through the drive loop's
    /// detector polling, once through the engine's own proof-of-life
    /// path inside an event handle).
    suspected_peers: std::collections::HashSet<NodeId>,
}

impl ObsBridge {
    /// Creates a bridge with no open rounds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current round number of `action` (0 before the first raise).
    #[must_use]
    pub fn round_of(&self, action: ActionId) -> u32 {
        self.rounds.get(&action).map_or(0, |r| r.number)
    }

    fn open_round(&mut self, action: ActionId) -> (u32, bool) {
        let round = self.rounds.entry(action).or_default();
        if round.open {
            (round.number, false)
        } else {
            round.number += 1;
            round.open = true;
            round.silent = false;
            (round.number, true)
        }
    }

    fn close_round(&mut self, action: ActionId) {
        if let Some(round) = self.rounds.get_mut(&action) {
            round.open = false;
        }
    }

    /// Emits the [`ObsKind::MessageReceived`] event for a protocol
    /// message delivered to `object` from `from`, just before the
    /// participant handles it. Local (non-message) events emit
    /// nothing.
    ///
    /// Round synchronization: a globally bridged engine (simulator,
    /// threads) has already opened the round at the raiser's `Raised`
    /// note, so the receive simply joins it. A per-process bridge
    /// (`caex-wire`) whose object never raised first learns of the
    /// remote round from the incoming `Exception`/`HaveNested`/
    /// `NestedCompleted` itself — the round is then opened *silently*
    /// (no [`ObsKind::ResolutionStart`]; that event stays with the
    /// raiser) so correlation ids line up across processes, and a
    /// received `commit` closes a silently opened round again.
    pub fn on_receive(
        &mut self,
        object: NodeId,
        event: &Event,
        from: NodeId,
        at: SimTime,
        wall: Option<u64>,
        obs: &mut dyn Observer,
    ) {
        let Event::Msg(msg) = event else { return };
        let action = msg.action();
        let kind = msg.kind();
        let round = {
            let r = self.rounds.entry(action).or_default();
            if !r.open
                && r.number == 0
                && matches!(kind, "exception" | "have_nested" | "nested_completed")
            {
                r.number = 1;
                r.open = true;
                r.silent = true;
            }
            r.number
        };
        obs.on_event(&ObsEvent {
            at,
            wall_micros: wall,
            object,
            span: CorrelationId { action, round },
            kind: ObsKind::MessageReceived { kind, from },
        });
        if kind == "commit" {
            if let Some(r) = self.rounds.get_mut(&action) {
                if r.open && r.silent {
                    r.open = false;
                }
            }
        }
    }

    /// Snapshots `participant` before it handles `event`.
    #[must_use]
    pub fn pre(&self, participant: &Participant, event: &Event) -> PreSnapshot {
        PreSnapshot {
            object: participant.id(),
            state: participant.state(),
            aborting: participant.is_aborting(),
            res_action: participant.resolution_action(),
            active_action: participant.active_action(),
            handler_done: match event {
                Event::HandlerDone { action, signal } => Some((*action, signal.is_some())),
                _ => None,
            },
            abortion_done: match event {
                Event::AbortionDone { action, signal, .. } => {
                    Some((*action, signal.clone()))
                }
                _ => None,
            },
        }
    }

    /// Diffs the snapshot against the post-`handle` participant and
    /// streams the resulting events to `obs`. `wall` carries real
    /// elapsed microseconds on engines with a wall clock.
    #[allow(clippy::too_many_lines)]
    pub fn post(
        &mut self,
        snap: &PreSnapshot,
        participant: &Participant,
        fx: &[Effect],
        at: SimTime,
        wall: Option<u64>,
        obs: &mut dyn Observer,
    ) {
        let object = snap.object;
        let mk = |action: ActionId, round: u32, kind: ObsKind| ObsEvent {
            at,
            wall_micros: wall,
            object,
            span: CorrelationId { action, round },
            kind,
        };

        // Abortion completion: the `aborting` flag dropped across this
        // handle. Chronologically first — the NestedCompleted fan-out
        // and any immediate commit in `fx` happen after the abortion
        // has finished.
        if let Some((action, signal)) = &snap.abortion_done {
            if snap.aborting && !participant.is_aborting() {
                let round = self.round_of(*action);
                obs.on_event(&mk(*action, round, ObsKind::AbortionEnd));
                if let Some(exc) = signal {
                    // The signalled exception enters LE without a
                    // `Raised` note; synthesize its raise.
                    obs.on_event(&mk(
                        *action,
                        round,
                        ObsKind::Raise { exception: exc.id() },
                    ));
                }
            }
        }

        // Handler completion (the continuation may be void if an outer
        // abortion already tore the handler down — then the span was
        // closed by the abortion translation below).
        if let Some((action, signalled)) = snap.handler_done {
            if self.open_handlers.get(&object) == Some(&action) {
                self.open_handlers.remove(&object);
                obs.on_event(&mk(
                    action,
                    self.round_of(action),
                    ObsKind::HandlerEnd { signalled },
                ));
            }
        }

        for effect in fx {
            match effect {
                Effect::Send { to, msg } => {
                    let action = msg.action();
                    obs.on_event(&mk(
                        action,
                        self.round_of(action),
                        ObsKind::MessageSent { kind: msg.kind(), to: *to },
                    ));
                }
                Effect::After { .. } => {}
                Effect::Note(note) => {
                    self.translate_note(note, &mk, obs);
                }
            }
        }

        // The net state transition across the handle. Intra-handle
        // compound moves (N→X→N for a sole-raiser instant commit)
        // cancel out by design: dwell time in a zero-length state is
        // zero and the commit events above already tell the story.
        let from = obs_state(snap.state);
        let to = obs_state(participant.state());
        if from != to {
            let action = participant
                .resolution_action()
                .or(snap.res_action)
                .or(snap.active_action)
                .unwrap_or_else(|| ActionId::new(0));
            obs.on_event(&mk(
                action,
                self.round_of(action),
                ObsKind::StateTransition { from, to },
            ));
        }
    }

    /// Streams one note produced *outside* an event handle — the drive
    /// loops poll the transport's failure detector directly and fold
    /// [`Participant::on_suspect`] / [`Participant::on_rejoin`] /
    /// [`Participant::on_deserter`] effects in without going through
    /// [`ObsBridge::post`]. The suspicion translations are idempotent,
    /// so a note that also flowed through `post` is not emitted twice.
    pub fn note_out_of_band(
        &mut self,
        object: NodeId,
        note: &Note,
        at: SimTime,
        wall: Option<u64>,
        obs: &mut dyn Observer,
    ) {
        let mk = |action: ActionId, round: u32, kind: ObsKind| ObsEvent {
            at,
            wall_micros: wall,
            object,
            span: CorrelationId { action, round },
            kind,
        };
        self.translate_note(note, &mk, obs);
    }

    fn translate_note(
        &mut self,
        note: &Note,
        mk: &dyn Fn(ActionId, u32, ObsKind) -> ObsEvent,
        obs: &mut dyn Observer,
    ) {
        match note {
            Note::Entered { action, .. } => {
                obs.on_event(&mk(*action, self.round_of(*action), ObsKind::ActionEnter));
            }
            Note::Completed { action, .. } | Note::SignalledFailure { action, .. } => {
                obs.on_event(&mk(*action, self.round_of(*action), ObsKind::ActionLeave));
            }
            Note::Raised { action, exc, .. } => {
                let (round, fresh) = self.open_round(*action);
                if fresh {
                    obs.on_event(&mk(*action, round, ObsKind::ResolutionStart));
                }
                obs.on_event(&mk(*action, round, ObsKind::Raise { exception: exc.id() }));
            }
            Note::AbortedNested { object, outer, chain }
            | Note::WaitingForNested { object, outer, chain, .. } => {
                // A handler still running for a chain action dies with
                // it; close its span before the action spans.
                if let Some(h) = self.open_handlers.get(object).copied() {
                    if chain.contains(&h) {
                        self.open_handlers.remove(object);
                        obs.on_event(&mk(
                            h,
                            self.round_of(h),
                            ObsKind::HandlerEnd { signalled: false },
                        ));
                    }
                }
                // The chain unwinds innermost-first, keeping each
                // track's span stack LIFO.
                for nested in chain {
                    obs.on_event(&mk(
                        *nested,
                        self.round_of(*nested),
                        ObsKind::ActionLeave,
                    ));
                }
                obs.on_event(&mk(
                    *outer,
                    self.round_of(*outer),
                    ObsKind::AbortionStart { depth: chain.len() as u32 },
                ));
            }
            Note::ResolutionCommitted { action, resolver, resolved, raised } => {
                let round = self.round_of(*action);
                obs.on_event(&mk(
                    *action,
                    round,
                    ObsKind::ResolverElected { resolver: *resolver },
                ));
                let mut distinct: Vec<_> = raised.iter().map(|(_, e)| e.id()).collect();
                distinct.sort_unstable();
                distinct.dedup();
                obs.on_event(&mk(
                    *action,
                    round,
                    ObsKind::ResolutionCommit {
                        resolved: resolved.id(),
                        raised: distinct.len() as u32,
                    },
                ));
                self.close_round(*action);
            }
            Note::HandlerStarted { object, action, exc, .. } => {
                self.open_handlers.insert(*object, *action);
                obs.on_event(&mk(
                    *action,
                    self.round_of(*action),
                    ObsKind::HandlerStart { exception: exc.id() },
                ));
            }
            Note::ActionFailed { action, exc, .. } => {
                obs.on_event(&mk(
                    *action,
                    self.round_of(*action),
                    ObsKind::ActionFailed { exception: exc.id() },
                ));
            }
            Note::ResolverSuspected { action, peer, .. } => {
                obs.on_event(&mk(
                    *action,
                    self.round_of(*action),
                    ObsKind::ResolverSuspected { resolver: *peer },
                ));
            }
            // Suspicion is a node-level observation with no action
            // span of its own; the zero action is the span-less
            // convention (round 0 keeps it out of the law checks).
            // The guards make translation idempotent: notes can reach
            // the bridge both through an event handle and out-of-band
            // from a drive loop, and only the first sighting counts.
            Note::PeerSuspected { peer, .. }
                if self.suspected_peers.insert(*peer) =>
            {
                obs.on_event(&mk(
                    ActionId::new(0),
                    0,
                    ObsKind::PeerSuspected { peer: *peer },
                ));
            }
            Note::PeerRejoined { peer, .. }
                if self.suspected_peers.remove(peer) =>
            {
                obs.on_event(&mk(
                    ActionId::new(0),
                    0,
                    ObsKind::PeerRejoined { peer: *peer },
                ));
            }
            Note::ResolverReelected { action, resolver, replaced } => {
                obs.on_event(&mk(
                    *action,
                    self.round_of(*action),
                    ObsKind::ResolverReelected {
                        resolver: *resolver,
                        replaced: *replaced,
                    },
                ));
            }
            // Book-keeping notes with no span semantics: skipped
            // entries, suppressed raises, stale messages, multicast
            // tallies, leave coordination.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_open_once_and_reopen_after_close() {
        let mut bridge = ObsBridge::new();
        let a = ActionId::new(3);
        assert_eq!(bridge.round_of(a), 0);
        assert_eq!(bridge.open_round(a), (1, true));
        assert_eq!(bridge.open_round(a), (1, false));
        bridge.close_round(a);
        assert_eq!(bridge.round_of(a), 1);
        assert_eq!(bridge.open_round(a), (2, true));
    }

    #[test]
    fn obs_state_maps_the_paper_alphabet() {
        assert_eq!(obs_state(None), ObsState::N);
        assert_eq!(obs_state(Some(PState::Exceptional)), ObsState::X);
        assert_eq!(obs_state(Some(PState::Suspended)), ObsState::S);
        assert_eq!(obs_state(Some(PState::Ready)), ObsState::R);
    }
}
