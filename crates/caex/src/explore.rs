//! Interleaving exploration: run one scenario family under many seeds
//! and check the protocol invariants on every interleaving.
//!
//! The simulator is deterministic per seed, so sweeping seeds sweeps
//! message interleavings (latency draws reorder concurrent deliveries).
//! [`explore`] packages the sweep plus the invariant battery used
//! throughout the test suite, and reports each violation with the seed
//! that reproduces it — a lightweight schedule fuzzer for the protocol.
//!
//! # Examples
//!
//! ```
//! use caex::explore::{explore, Expect};
//! use caex::workloads;
//! use caex_net::{LatencyModel, NetConfig, SimTime};
//!
//! let outcome = explore(0..32, Expect::Clean, |seed| {
//!     let config = NetConfig::default()
//!         .with_seed(seed)
//!         .with_latency(LatencyModel::Uniform {
//!             min: SimTime::from_micros(1),
//!             max: SimTime::from_micros(2_000),
//!         });
//!     workloads::general(5, 2, 2, config).scenario
//! });
//! assert!(outcome.is_ok(), "{:?}", outcome.violations);
//! ```

use crate::{RunReport, Scenario};
use std::ops::Range;

/// What the explored scenario is expected to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Every run must finish cleanly with at least one resolution.
    Clean,
    /// Runs may stall (faulty environments) but committed resolutions
    /// must still satisfy the safety invariants.
    SafetyOnly,
}

/// One invariant violation, with the seed that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The seed to replay.
    pub seed: u64,
    /// Human-readable description of what broke.
    pub what: String,
}

/// Result of an exploration.
#[derive(Debug)]
pub struct Exploration {
    /// Number of interleavings executed.
    pub runs: u64,
    /// All violations found (empty on success).
    pub violations: Vec<Violation>,
}

impl Exploration {
    /// `true` when no interleaving violated an invariant.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the protocol invariant battery (DESIGN.md §4) on one report
/// and returns every violation found. Public so applications and tests
/// can audit any run; [`explore`] calls it per seed.
///
/// With [`Expect::Clean`], liveness is checked too (no deadlock, no
/// livelock, at least one resolution); with [`Expect::SafetyOnly`] only
/// the safety invariants are (agreement, max-raiser election).
///
/// # Examples
///
/// ```
/// use caex::explore::{verify_report, Expect};
/// use caex::workloads;
///
/// let report = workloads::case1(4, Default::default()).run();
/// assert!(verify_report(&report, Expect::Clean, 0).is_empty());
/// ```
#[must_use]
pub fn verify_report(report: &RunReport, expect: Expect, seed: u64) -> Vec<Violation> {
    let mut out = Vec::new();
    check(report, expect, seed, &mut out);
    out
}

fn check(report: &RunReport, expect: Expect, seed: u64, out: &mut Vec<Violation>) {
    let mut fail = |what: String| out.push(Violation { seed, what });

    if expect == Expect::Clean {
        if !report.deadlocked.is_empty() {
            fail(format!("deadlocked objects: {:?}", report.deadlocked));
        }
        if report.hit_delivery_limit {
            fail("livelock: delivery limit hit".to_owned());
        }
        if report.resolutions.is_empty() {
            fail("no resolution committed".to_owned());
        }
    }

    // Safety: agreement per action.
    for r in &report.resolutions {
        let handled: Vec<_> = report
            .handler_starts
            .iter()
            .filter(|h| h.action == r.action)
            .map(|h| h.exc.id())
            .collect();
        if handled.windows(2).any(|w| w[0] != w[1]) {
            fail(format!("agreement violated in {}: {handled:?}", r.action));
        }
        // Resolver is the max raiser of the resolved set.
        let max = r.raised.iter().map(|(o, _)| *o).max();
        if max != Some(r.resolver) && max.is_some() {
            fail(format!(
                "resolver {} is not the max raiser {:?} in {}",
                r.resolver, max, r.action
            ));
        }
    }
}

/// Runs `build(seed)` for every seed in `seeds`, executes each scenario
/// and checks the invariant battery. Never panics on a violation —
/// failures are collected with their reproducing seeds.
pub fn explore<F>(seeds: Range<u64>, expect: Expect, build: F) -> Exploration
where
    F: Fn(u64) -> Scenario,
{
    let mut violations = Vec::new();
    let mut runs = 0;
    for seed in seeds {
        let report = build(seed).run();
        check(&report, expect, seed, &mut violations);
        runs += 1;
    }
    Exploration { runs, violations }
}

/// [`explore`], with a static pre-check: before any seed runs, `audit`
/// inspects the seed-0 scenario and returns a list of predicted
/// problems (empty = statically clean). The audit's findings become
/// advisory context in the returned [`Exploration`]:
///
/// - statically *predicted* problems that then show up dynamically are
///   ordinary violations (the prediction held);
/// - a statically **clean** family that still violates invariants is
///   itself reported as an extra violation tagged
///   `"lint-clean but dynamically unsafe"` — a gap in the static
///   analysis worth a bug report.
///
/// The `audit` callback is deliberately generic (`Fn(&Scenario) ->
/// Vec<String>`), so `caex` does not depend on any particular analyser;
/// `caex-lint` wraps this as `lint_then_explore` with its own linter
/// plugged in.
pub fn explore_with_audit<F, A>(seeds: Range<u64>, expect: Expect, build: F, audit: A) -> Exploration
where
    F: Fn(u64) -> Scenario,
    A: Fn(&Scenario) -> Vec<String>,
{
    let first = seeds.start;
    let predictions = audit(&build(first));
    let mut outcome = explore(seeds, expect, build);
    if predictions.is_empty() && !outcome.violations.is_empty() {
        outcome.violations.push(Violation {
            seed: first,
            what: "lint-clean but dynamically unsafe: static analysis predicted no problem, \
                   yet the invariant battery failed (see other violations)"
                .to_owned(),
        });
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use caex_net::{FaultPlan, LatencyModel, NetConfig, SimTime};

    fn jittery(seed: u64) -> NetConfig {
        NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(1),
                max: SimTime::from_micros(3_000),
            })
    }

    #[test]
    fn clean_workloads_pass_everywhere() {
        let outcome = explore(0..192, Expect::Clean, |seed| {
            workloads::general(6, 3, 2, jittery(seed)).scenario
        });
        assert_eq!(outcome.runs, 192);
        assert!(outcome.is_ok(), "{:?}", outcome.violations);
    }

    #[test]
    fn lossy_runs_fail_clean_but_pass_safety() {
        let lossy = |seed: u64| {
            workloads::case3(
                5,
                jittery(seed).with_faults(FaultPlan::none().with_drop_probability(0.3)),
            )
            .scenario
        };
        let clean = explore(0..24, Expect::Clean, lossy);
        assert!(
            !clean.is_ok(),
            "30% loss should break liveness somewhere in 24 seeds"
        );
        let safety = explore(0..24, Expect::SafetyOnly, lossy);
        assert!(safety.is_ok(), "{:?}", safety.violations);
    }

    #[test]
    fn violations_carry_reproducing_seeds() {
        let outcome = explore(7..8, Expect::Clean, |seed| {
            workloads::case1(
                4,
                jittery(seed).with_faults(FaultPlan::none().with_drop_probability(1.0)),
            )
            .scenario
        });
        assert_eq!(outcome.violations.len(), 2); // deadlock + no resolution
        assert!(outcome.violations.iter().all(|v| v.seed == 7));
    }
}
