//! Closed-form message-count predictions from §4.4 of the paper.
//!
//! These are the paper's "tables": exact message counts for the three
//! canonical cases and the general law, plus the asymptotic bound model
//! used for the CR comparison. The benchmark harness runs the real
//! protocol and checks the executed counts against these functions.

/// §4.4 case 1: one exception raised, no nested actions —
/// `3 × (N − 1)` messages.
///
/// # Examples
///
/// ```
/// assert_eq!(caex::analysis::messages_case1(4), 9);
/// ```
#[must_use]
pub fn messages_case1(n: u64) -> u64 {
    assert!(n >= 1, "need at least one participant");
    3 * (n - 1)
}

/// §4.4 case 2: one exception raised and every other object inside a
/// nested action — `3N × (N − 1)` messages.
///
/// # Examples
///
/// ```
/// assert_eq!(caex::analysis::messages_case2(4), 36);
/// ```
#[must_use]
pub fn messages_case2(n: u64) -> u64 {
    assert!(n >= 1, "need at least one participant");
    3 * n * (n - 1)
}

/// §4.4 case 3: all `N` objects raise exceptions simultaneously —
/// `(N − 1) × (2N + 1)` messages.
///
/// # Examples
///
/// ```
/// assert_eq!(caex::analysis::messages_case3(4), 27);
/// ```
#[must_use]
pub fn messages_case3(n: u64) -> u64 {
    assert!(n >= 1, "need at least one participant");
    (n - 1) * (2 * n + 1)
}

/// §4.4 general law: `N` participants, `P` of which raise exceptions
/// and `Q` of which sit in nested actions —
/// `(N − 1) × (2P + 3Q + 1)` messages.
///
/// # Panics
///
/// Panics unless `1 ≤ P`, `P + Q ≤ N` (raisers and nested objects are
/// disjoint sets in the canonical workload).
///
/// # Examples
///
/// ```
/// use caex::analysis::{messages_case1, messages_case2, messages_case3,
///                      messages_general};
/// // The general law specialises to all three cases.
/// assert_eq!(messages_general(6, 1, 0), messages_case1(6));
/// assert_eq!(messages_general(6, 1, 5), messages_case2(6));
/// assert_eq!(messages_general(6, 6, 0), messages_case3(6));
/// ```
#[must_use]
pub fn messages_general(n: u64, p: u64, q: u64) -> u64 {
    assert!(n >= 1, "need at least one participant");
    assert!(p >= 1, "at least one raiser (otherwise no resolution runs)");
    assert!(
        p + q <= n,
        "raisers and nested objects are disjoint subsets"
    );
    (n - 1) * (2 * p + 3 * q + 1)
}

/// Per-kind breakdown of the general law, in the order
/// `(exception, ack, have_nested, nested_completed, commit)`.
///
/// # Examples
///
/// ```
/// let (exc, ack, hn, nc, commit) = caex::analysis::breakdown_general(4, 2, 1);
/// assert_eq!(exc, 6);      // P(N−1)
/// assert_eq!(ack, 9);      // P(N−1) + Q(N−1)
/// assert_eq!(hn, 3);       // Q(N−1)
/// assert_eq!(nc, 3);       // Q(N−1)
/// assert_eq!(commit, 3);   // N−1
/// assert_eq!(exc + ack + hn + nc + commit,
///            caex::analysis::messages_general(4, 2, 1));
/// ```
#[must_use]
pub fn breakdown_general(n: u64, p: u64, q: u64) -> (u64, u64, u64, u64, u64) {
    assert!(n >= 1 && p >= 1 && p + q <= n);
    let m = n - 1;
    (p * m, (p + q) * m, q * m, q * m, m)
}

/// §4.5 reliable-multicast regime: "acknowledgement messages will be no
/// longer necessary and so communications in our algorithm would
/// consist of only several multicasts (Exception, Commit, HaveNested,
/// and NestedCompleted)". One multicast per fan-out: `P` Exceptions,
/// `Q` HaveNesteds, `Q` NestedCompleteds, 1 Commit.
///
/// # Examples
///
/// ```
/// // 3 raisers + 2·2 nested fan-outs + 1 commit = 8 multicasts,
/// // versus (N−1)(2P+3Q+1) = 7·13 = 91 point-to-point messages.
/// assert_eq!(caex::analysis::multicasts_general(8, 3, 2), 8);
/// assert_eq!(caex::analysis::messages_general(8, 3, 2), 91);
/// ```
#[must_use]
pub fn multicasts_general(n: u64, p: u64, q: u64) -> u64 {
    assert!(n >= 1 && p >= 1 && p + q <= n);
    if n == 1 {
        return 0; // a lone participant has nobody to multicast to
    }
    p + 2 * q + 1
}

/// §4.4 resolver-group extension: `k` resolvers each broadcast a commit,
/// adding `(min(k, P) − 1) × (N − 1)` messages over the base law —
/// "only … a constant factor".
///
/// # Examples
///
/// ```
/// use caex::analysis::{messages_general, messages_general_grouped};
/// assert_eq!(messages_general_grouped(8, 3, 0, 1), messages_general(8, 3, 0));
/// assert_eq!(
///     messages_general_grouped(8, 3, 0, 2),
///     messages_general(8, 3, 0) + 7
/// );
/// ```
#[must_use]
pub fn messages_general_grouped(n: u64, p: u64, q: u64, k: u64) -> u64 {
    assert!(k >= 1, "resolver group must contain at least one object");
    messages_general(n, p, q) + (k.min(p) - 1) * (n - 1)
}

/// Cost of the decentralized synchronized-leave protocol (§4's
/// "decentralized manager"): every participant broadcasts `LeaveReady`
/// to its peers, so one completing action costs `N(N−1)` messages. The
/// paper's §4.4 laws assume the manager provides synchronous leave for
/// free; this formula prices the assumption.
///
/// # Examples
///
/// ```
/// assert_eq!(caex::analysis::leave_messages(4), 12);
/// assert_eq!(caex::analysis::leave_messages(1), 0);
/// ```
#[must_use]
pub fn leave_messages(n: u64) -> u64 {
    assert!(n >= 1);
    n * (n - 1)
}

/// Commit latency of a flat resolution under constant link latency
/// `l`: two hops after the raise (`Exception` out, `ACK` back; the
/// resolver then commits locally). Independent of `N` and of the
/// number of concurrent raisers — the protocol's fan-outs are fully
/// parallel.
///
/// # Examples
///
/// ```
/// use caex_net::SimTime;
/// let l = SimTime::from_micros(100);
/// assert_eq!(caex::analysis::commit_latency_flat(l), SimTime::from_micros(200));
/// ```
#[must_use]
pub fn commit_latency_flat(l: caex_net::SimTime) -> caex_net::SimTime {
    l + l
}

/// Commit latency when some participant must abort nested actions
/// whose abortion handlers cost `c` in total: the `NestedCompleted`
/// the resolver waits for leaves only after the handlers ran —
/// `2l + c` after the raise (§4.4's abortion-delay note, as a law).
///
/// # Examples
///
/// ```
/// use caex_net::SimTime;
/// let l = SimTime::from_micros(100);
/// let c = SimTime::from_micros(40);
/// assert_eq!(
///     caex::analysis::commit_latency_nested(l, c),
///     SimTime::from_micros(240),
/// );
/// ```
#[must_use]
pub fn commit_latency_nested(l: caex_net::SimTime, c: caex_net::SimTime) -> caex_net::SimTime {
    l + l + c
}

/// Time until the *last* handler starts: commit latency plus one more
/// hop for the `Commit` delivery.
///
/// # Examples
///
/// ```
/// use caex_net::SimTime;
/// let l = SimTime::from_micros(100);
/// assert_eq!(
///     caex::analysis::last_handler_latency_flat(l),
///     SimTime::from_micros(300),
/// );
/// ```
#[must_use]
pub fn last_handler_latency_flat(l: caex_net::SimTime) -> caex_net::SimTime {
    l + l + l
}

/// A simple operation-count model of the Campbell–Randell algorithm on
/// the same workload: every newly raised exception is broadcast and
/// acknowledged, and after each of the `R` raised exceptions **all**
/// `N` participants re-resolve and exchange their proposals
/// (`N(N−1)` messages per round) — the behaviour §4.4 summarises as
/// `O(N³)`. With interleaved reduced trees over a depth-`D` tree, the
/// domino effect makes `R ≈ D`, and `D` grows with the action's
/// exception tree, hence the cubic bound.
///
/// The `caex::cr` module *executes* this model; this function is its
/// closed form.
///
/// # Examples
///
/// ```
/// // One exception, full handlers: still quadratic for CR.
/// assert_eq!(caex::analysis::cr_messages(4, 1), 2 * 3 + 1 * 4 * 3);
/// ```
#[must_use]
pub fn cr_messages(n: u64, raised_total: u64) -> u64 {
    assert!(n >= 1);
    // Per raised exception: broadcast (N−1) + ACKs (N−1) + an
    // all-participants resolution exchange N(N−1).
    raised_total * (2 * (n - 1) + n * (n - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_values_match_paper_text() {
        // Spot values implied by the formulas in §4.4.
        assert_eq!(messages_case1(2), 3);
        assert_eq!(messages_case2(2), 6);
        assert_eq!(messages_case3(2), 5);
        assert_eq!(messages_case1(10), 27);
        assert_eq!(messages_case2(10), 270);
        assert_eq!(messages_case3(10), 189);
    }

    #[test]
    fn general_law_specialises() {
        for n in 2..=20 {
            assert_eq!(messages_general(n, 1, 0), messages_case1(n));
            assert_eq!(messages_general(n, 1, n - 1), messages_case2(n));
            assert_eq!(messages_general(n, n, 0), messages_case3(n));
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        for n in 2..=12 {
            for p in 1..=n {
                for q in 0..=(n - p) {
                    let (a, b, c, d, e) = breakdown_general(n, p, q);
                    assert_eq!(a + b + c + d + e, messages_general(n, p, q));
                }
            }
        }
    }

    #[test]
    fn single_participant_degenerates_to_zero() {
        assert_eq!(messages_case1(1), 0);
        assert_eq!(messages_case3(1), 0);
        assert_eq!(messages_general(1, 1, 0), 0);
    }

    #[test]
    fn growth_is_quadratic_vs_cubic() {
        // Doubling N roughly quadruples ours (case 3) but roughly
        // octuples CR's worst case (raised ≈ N).
        let ours = |n: u64| messages_case3(n) as f64;
        let cr = |n: u64| cr_messages(n, n) as f64;
        let ratio_ours = ours(64) / ours(32);
        let ratio_cr = cr(64) / cr(32);
        assert!((3.5..4.5).contains(&ratio_ours), "{ratio_ours}");
        assert!((7.0..9.0).contains(&ratio_cr), "{ratio_cr}");
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn general_rejects_overlapping_sets() {
        let _ = messages_general(4, 3, 2);
    }
}
