//! The Campbell–Randell (1986) exception-resolution baseline.
//!
//! The paper (§3.3, §4.4) compares its algorithm against the original
//! resolution scheme of Campbell & Randell, *of which only "a draft"
//! was published*. This module executes the behaviour the paper
//! attributes to it, so the `O(N³)`-vs-`O(N²)` comparison runs on real
//! counted messages:
//!
//! 1. **Reduced trees** — each participant holds specific handlers for
//!    only a subset of the action's exceptions.
//! 2. **The "third source"** — a participant informed of an exception it
//!    has no handler for climbs the full tree to the closest ancestor it
//!    *does* handle and raises that as a new exception (another full
//!    broadcast). With interleaved reduced trees over a chain this
//!    yields the §3.3 domino effect.
//! 3. **Everybody resolves** — after every change to its known set,
//!    *each* participant re-resolves and broadcasts its proposal
//!    ("each participant … has to look through it after raising each
//!    exception and after each resolution"); the paper's algorithm
//!    instead elects one resolver.
//!
//! Termination detection is idealised in CR's favour: when the network
//! goes quiescent, the highest-numbered participant broadcasts the final
//! commit. Even with that head start the message count grows as
//! `O(N³)` on domino workloads, versus `O(N²)` for the new algorithm.

use caex_action::ActionId;
use caex_net::{Kinded, NetConfig, NetStats, NodeId, SimNet, SimTime};
use caex_obs::{CorrelationId, ObsEvent, ObsKind, Observer};
use caex_tree::{ExceptionId, ExceptionTree, ReducedTree};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The conventional span for baseline engines: one flat resolution,
/// reported as round 1 of action 0.
fn span_event(at: SimTime, object: NodeId, kind: ObsKind) -> ObsEvent {
    ObsEvent {
        at,
        wall_micros: None,
        object,
        span: CorrelationId {
            action: ActionId::new(0),
            round: 1,
        },
        kind,
    }
}

/// Messages of the modelled CR protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrMsg {
    /// An exception broadcast (original raise or third-source re-raise).
    Exception {
        /// The raising participant.
        from: NodeId,
        /// The raised exception class.
        exc: ExceptionId,
    },
    /// Acknowledgement of an exception broadcast.
    Ack {
        /// The acknowledging participant.
        from: NodeId,
    },
    /// A participant's current resolution proposal.
    Proposal {
        /// The proposing participant.
        from: NodeId,
        /// Its locally resolved exception.
        resolved: ExceptionId,
    },
    /// Final commit from the highest-numbered participant.
    Commit {
        /// The agreed exception.
        exc: ExceptionId,
    },
    /// Local event: raise this exception here.
    LocalRaise(ExceptionId),
}

impl Kinded for CrMsg {
    fn kind(&self) -> &'static str {
        match self {
            CrMsg::Exception { .. } => "cr_exception",
            CrMsg::Ack { .. } => "cr_ack",
            CrMsg::Proposal { .. } => "cr_proposal",
            CrMsg::Commit { .. } => "cr_commit",
            CrMsg::LocalRaise(_) => "local_raise",
        }
    }
}

struct CrParticipant {
    id: NodeId,
    reduced: ReducedTree,
    known: BTreeSet<ExceptionId>,
    raised_by_me: BTreeSet<ExceptionId>,
    committed: Option<ExceptionId>,
}

/// Report of one CR execution.
#[derive(Debug)]
pub struct CrReport {
    /// Message statistics (kinds `cr_exception`, `cr_ack`,
    /// `cr_proposal`, `cr_commit`).
    pub stats: NetStats,
    /// Total distinct exceptions that ended up raised (original +
    /// third-source re-raises) — the domino length.
    pub raised_total: u32,
    /// The finally committed exception.
    pub committed: ExceptionId,
    /// Virtual completion time.
    pub finished_at: SimTime,
}

impl CrReport {
    /// Total protocol messages (excluding local events).
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.stats.sent_total()
    }
}

/// Executes the CR model: `n` participants of one action over `tree`,
/// participant `i` holding `reduced[i]`, with the given initial raises
/// happening concurrently at virtual time zero.
///
/// # Panics
///
/// Panics if `reduced.len() != n` or `initial_raises` is empty.
///
/// # Examples
///
/// The §3.3 domino: a chain of 8 exceptions, two participants with
/// interleaved reduced trees. Raising `e8` re-raises all the way to the
/// root.
///
/// ```
/// use caex::cr;
/// use caex_net::NodeId;
/// use caex_tree::{chain_tree, interleaved_reduced_trees, ExceptionId};
/// use std::sync::Arc;
///
/// let tree = Arc::new(chain_tree(8));
/// let (odd, even) = interleaved_reduced_trees(&tree, 8);
/// let report = cr::run(
///     2,
///     tree,
///     vec![odd, even],
///     &[(NodeId::new(1), ExceptionId::new(8))],
///     Default::default(),
/// );
/// assert!(report.raised_total >= 8); // the domino climbed the chain
/// assert_eq!(report.committed, ExceptionId::ROOT);
/// ```
#[must_use]
pub fn run(
    n: u32,
    tree: Arc<ExceptionTree>,
    reduced: Vec<ReducedTree>,
    initial_raises: &[(NodeId, ExceptionId)],
    net_config: NetConfig,
) -> CrReport {
    run_observed(n, tree, reduced, initial_raises, net_config, &mut ())
}

/// Like [`run`], but streams synthetic [`ObsEvent`]s to `obs`: every
/// raise (original and third-source re-raise — the domino is visible
/// as a chain of `Raise` events in one round), every `cr_*` message
/// send, and the idealised final election/commit. The whole run is
/// reported as span `A0#r1`, the baseline convention.
///
/// # Panics
///
/// Panics as [`run`] does.
#[must_use]
pub fn run_observed(
    n: u32,
    tree: Arc<ExceptionTree>,
    reduced: Vec<ReducedTree>,
    initial_raises: &[(NodeId, ExceptionId)],
    net_config: NetConfig,
    obs: &mut dyn Observer,
) -> CrReport {
    assert_eq!(
        reduced.len(),
        n as usize,
        "one reduced tree per participant"
    );
    assert!(!initial_raises.is_empty(), "nothing to resolve");

    let mut net: SimNet<CrMsg> = SimNet::new(net_config, n);
    let mut parts: Vec<CrParticipant> = (0..n)
        .zip(reduced)
        .map(|(i, reduced)| CrParticipant {
            id: NodeId::new(i),
            reduced,
            known: BTreeSet::new(),
            raised_by_me: BTreeSet::new(),
            committed: None,
        })
        .collect();

    for &(node, exc) in initial_raises {
        net.schedule_local(SimTime::ZERO, node, CrMsg::LocalRaise(exc));
    }

    let mut raised_total = 0u32;
    let mut started = false;
    // Two phases: exception storm to quiescence, then the idealised
    // final commit.
    loop {
        while let Some(d) = net.next_delivery() {
            let idx = d.to.index() as usize;
            match d.payload {
                CrMsg::LocalRaise(exc) => {
                    if !started {
                        started = true;
                        obs.on_event(&span_event(net.now(), d.to, ObsKind::ResolutionStart));
                    }
                    raise(&mut parts[idx], exc, &mut net, &mut raised_total, obs);
                    propose(&mut parts[idx], &tree, &mut net, obs);
                }
                CrMsg::Exception { from, exc } => {
                    obs.on_event(&span_event(
                        net.now(),
                        d.to,
                        ObsKind::MessageReceived { kind: "cr_exception", from },
                    ));
                    obs.on_event(&span_event(
                        net.now(),
                        d.to,
                        ObsKind::MessageSent { kind: "cr_ack", to: from },
                    ));
                    net.send(d.to, from, CrMsg::Ack { from: d.to });
                    let newly = parts[idx].known.insert(exc);
                    if newly {
                        // Third source: climb to the nearest handled
                        // ancestor and re-raise if it is new knowledge.
                        let climbed = parts[idx]
                            .reduced
                            .closest_handled_ancestor(&tree, exc)
                            .expect("exception ids come from this tree");
                        if climbed != exc
                            && !parts[idx].known.contains(&climbed)
                            && !parts[idx].raised_by_me.contains(&climbed)
                        {
                            raise(&mut parts[idx], climbed, &mut net, &mut raised_total, obs);
                        }
                        propose(&mut parts[idx], &tree, &mut net, obs);
                    }
                }
                CrMsg::Ack { from } => {
                    obs.on_event(&span_event(
                        net.now(),
                        d.to,
                        ObsKind::MessageReceived { kind: "cr_ack", from },
                    ));
                    // Acknowledgements complete a raise; no further
                    // obligation in this model.
                }
                CrMsg::Proposal { from, .. } => {
                    obs.on_event(&span_event(
                        net.now(),
                        d.to,
                        ObsKind::MessageReceived { kind: "cr_proposal", from },
                    ));
                    // Proposals inform but carry no protocol
                    // obligation in this model.
                }
                CrMsg::Commit { exc } => {
                    // The commit always originates at the idealised
                    // resolver: the highest-numbered participant.
                    obs.on_event(&span_event(
                        net.now(),
                        d.to,
                        ObsKind::MessageReceived {
                            kind: "cr_commit",
                            from: NodeId::new(n - 1),
                        },
                    ));
                    parts[idx].committed = Some(exc);
                }
            }
        }
        // Quiescent. If the final commit has not happened, the
        // highest-numbered participant issues it; the loop then drains
        // those deliveries and exits.
        let max = parts.last_mut().expect("n >= 1");
        if max.committed.is_none() {
            let resolved = tree
                .resolve(max.known.iter().copied())
                .expect("at least the initial raise is known");
            max.committed = Some(resolved);
            let me = max.id;
            let at = net.now();
            obs.on_event(&span_event(at, me, ObsKind::ResolverElected { resolver: me }));
            obs.on_event(&span_event(
                at,
                me,
                ObsKind::ResolutionCommit { resolved, raised: raised_total },
            ));
            for peer in 0..n {
                let peer = NodeId::new(peer);
                if peer != me {
                    obs.on_event(&span_event(
                        at,
                        me,
                        ObsKind::MessageSent { kind: "cr_commit", to: peer },
                    ));
                    net.send(me, peer, CrMsg::Commit { exc: resolved });
                }
            }
        } else {
            break;
        }
    }

    obs.on_run_end(net.now());
    let committed = parts
        .last()
        .and_then(|p| p.committed)
        .expect("commit happened");
    CrReport {
        stats: net.stats().clone(),
        raised_total,
        committed,
        finished_at: net.now(),
    }
}

fn raise(
    p: &mut CrParticipant,
    exc: ExceptionId,
    net: &mut SimNet<CrMsg>,
    raised_total: &mut u32,
    obs: &mut dyn Observer,
) {
    if !p.known.insert(exc) && !p.raised_by_me.insert(exc) {
        return;
    }
    p.raised_by_me.insert(exc);
    *raised_total += 1;
    let me = p.id;
    obs.on_event(&span_event(net.now(), me, ObsKind::Raise { exception: exc }));
    for peer in 0..net.num_nodes() {
        let peer = NodeId::new(peer);
        if peer != me {
            obs.on_event(&span_event(
                net.now(),
                me,
                ObsKind::MessageSent { kind: "cr_exception", to: peer },
            ));
            net.send(me, peer, CrMsg::Exception { from: me, exc });
        }
    }
}

/// "Each participant … has to look through [its handlers] after raising
/// each exception and after each resolution": every knowledge change
/// triggers a local resolution and a proposal broadcast.
fn propose(
    p: &mut CrParticipant,
    tree: &ExceptionTree,
    net: &mut SimNet<CrMsg>,
    obs: &mut dyn Observer,
) {
    let resolved = tree
        .resolve(p.known.iter().copied())
        .expect("known is non-empty here");
    let proposal = p
        .reduced
        .closest_handled_ancestor(tree, resolved)
        .expect("resolved id comes from this tree");
    let me = p.id;
    for peer in 0..net.num_nodes() {
        let peer = NodeId::new(peer);
        if peer != me {
            obs.on_event(&span_event(
                net.now(),
                me,
                ObsKind::MessageSent { kind: "cr_proposal", to: peer },
            ));
            net.send(
                me,
                peer,
                CrMsg::Proposal {
                    from: me,
                    resolved: proposal,
                },
            );
        }
    }
}

/// Builds the interleaved reduced trees for an `n`-participant CR run
/// over a chain of `len` exceptions: participant `i` handles the
/// exceptions `{e : e ≡ i (mod n)}` — the n-way generalisation of the
/// §3.3 two-party domino configuration.
#[must_use]
pub fn interleaved_parties(tree: &ExceptionTree, len: u32, n: u32) -> Vec<ReducedTree> {
    (0..n)
        .map(|i| {
            ReducedTree::new(tree, (1..=len).filter(|e| e % n == i).map(ExceptionId::new))
                .expect("chain ids are valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caex_tree::{chain_tree, interleaved_reduced_trees};

    fn chain_setup(len: u32) -> (Arc<ExceptionTree>, Vec<ReducedTree>) {
        let tree = Arc::new(chain_tree(len));
        let (odd, even) = interleaved_reduced_trees(&tree, len);
        (tree, vec![odd, even])
    }

    #[test]
    fn single_exception_full_handlers_terminates_fast() {
        let tree = Arc::new(chain_tree(4));
        let reduced = vec![ReducedTree::full(&tree); 3];
        let report = run(
            3,
            tree,
            reduced,
            &[(NodeId::new(0), ExceptionId::new(2))],
            NetConfig::default(),
        );
        assert_eq!(report.raised_total, 1);
        assert_eq!(report.committed, ExceptionId::new(2));
        // 1 raise: broadcast 2 + acks 2 + proposals from all 3 who
        // learnt something (raiser + 2 receivers) 3*2 + commit 2.
        assert_eq!(report.total_messages(), 2 + 2 + 6 + 2);
    }

    #[test]
    fn domino_effect_reraises_up_the_chain() {
        let (tree, reduced) = chain_setup(8);
        let report = run(
            2,
            tree,
            reduced,
            &[(NodeId::new(1), ExceptionId::new(8))],
            NetConfig::default(),
        );
        // e8 raised; O0 (odds) climbs e8→e7; O1 climbs e7→e6; … until
        // the root is the only refuge.
        assert!(report.raised_total >= 8, "raised {}", report.raised_total);
        assert_eq!(report.committed, ExceptionId::ROOT);
    }

    #[test]
    fn no_domino_with_full_handlers() {
        let tree = Arc::new(chain_tree(8));
        let reduced = vec![ReducedTree::full(&tree); 2];
        let report = run(
            2,
            tree,
            reduced,
            &[(NodeId::new(1), ExceptionId::new(8))],
            NetConfig::default(),
        );
        assert_eq!(report.raised_total, 1);
        assert_eq!(report.committed, ExceptionId::new(8));
    }

    #[test]
    fn message_count_grows_cubically_on_domino_workloads() {
        // Chain length scales with N: the §4.4 worst case.
        let count = |n: u32| {
            let len = 2 * n;
            let tree = Arc::new(chain_tree(len));
            let reduced = interleaved_parties(&tree, len, n);
            run(
                n,
                tree,
                reduced,
                &[(NodeId::new(0), ExceptionId::new(len))],
                NetConfig::default(),
            )
            .total_messages() as f64
        };
        let ratio = count(16) / count(8);
        // Cubic growth doubles to ~8x; allow a generous band.
        assert!(ratio > 5.5, "ratio {ratio} not cubic-like");
    }

    #[test]
    fn concurrent_raises_converge() {
        let (tree, reduced) = chain_setup(6);
        let report = run(
            2,
            Arc::clone(&tree),
            reduced,
            &[
                (NodeId::new(0), ExceptionId::new(5)),
                (NodeId::new(1), ExceptionId::new(6)),
            ],
            NetConfig::default(),
        );
        assert_eq!(report.committed, ExceptionId::ROOT);
    }

    #[test]
    fn interleaved_parties_partition() {
        let tree = chain_tree(9);
        let parties = interleaved_parties(&tree, 9, 3);
        for e in 1..=9u32 {
            let holders = parties
                .iter()
                .filter(|r| r.handles(ExceptionId::new(e)))
                .count();
            assert_eq!(holders, 1, "e{e} held by {holders}");
        }
    }

    #[test]
    #[should_panic(expected = "one reduced tree per participant")]
    fn mismatched_reduced_trees_panic() {
        let tree = Arc::new(chain_tree(2));
        let _ = run(
            3,
            Arc::clone(&tree),
            vec![ReducedTree::full(&tree)],
            &[(NodeId::new(0), ExceptionId::new(1))],
            NetConfig::default(),
        );
    }
}
