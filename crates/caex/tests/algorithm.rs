//! Behavioural tests of the resolution algorithm: one test per clause
//! of §4.1–§4.4, driven through scripted scenarios.

use caex::{analysis, workloads, NestedStrategy, Note, Scenario};
use caex_action::{AbortionOutcome, ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_net::{LatencyModel, NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId, TreeBuilder};
use std::sync::Arc;

fn uniform_config(seed: u64) -> NetConfig {
    NetConfig::default()
        .with_latency(LatencyModel::Uniform {
            min: SimTime::from_micros(50),
            max: SimTime::from_micros(500),
        })
        .with_seed(seed)
}

// ---------------------------------------------------------------------
// §4.4 message-count laws, executed.
// ---------------------------------------------------------------------

#[test]
fn case1_message_count_matches_formula_across_n() {
    for n in 2..=24 {
        let report = workloads::case1(n, NetConfig::default()).run();
        assert!(report.is_clean());
        assert_eq!(
            report.total_messages(),
            analysis::messages_case1(n as u64),
            "case 1 mismatch at N={n}"
        );
    }
}

#[test]
fn case2_message_count_matches_formula_across_n() {
    for n in 2..=16 {
        let report = workloads::case2(n, NetConfig::default()).run();
        assert!(report.is_clean());
        assert_eq!(
            report.total_messages(),
            analysis::messages_case2(n as u64),
            "case 2 mismatch at N={n}"
        );
    }
}

#[test]
fn case3_message_count_matches_formula_across_n() {
    for n in 2..=16 {
        let report = workloads::case3(n, NetConfig::default()).run();
        assert!(report.is_clean());
        assert_eq!(
            report.total_messages(),
            analysis::messages_case3(n as u64),
            "case 3 mismatch at N={n}"
        );
    }
}

#[test]
fn general_law_holds_over_full_pq_grid() {
    for n in 2..=10u32 {
        for p in 1..=n {
            for q in 0..=(n - p) {
                let report = workloads::general(n, p, q, NetConfig::default()).run();
                assert!(report.is_clean(), "unclean at N={n} P={p} Q={q}");
                assert_eq!(
                    report.total_messages(),
                    analysis::messages_general(n as u64, p as u64, q as u64),
                    "general law mismatch at N={n} P={p} Q={q}"
                );
            }
        }
    }
}

#[test]
fn per_kind_breakdown_matches_formula() {
    let (n, p, q) = (8u32, 3u32, 2u32);
    let report = workloads::general(n, p, q, NetConfig::default()).run();
    let (exc, ack, hn, nc, commit) = analysis::breakdown_general(n as u64, p as u64, q as u64);
    assert_eq!(report.messages_of("exception"), exc);
    assert_eq!(report.messages_of("ack"), ack);
    assert_eq!(report.messages_of("have_nested"), hn);
    assert_eq!(report.messages_of("nested_completed"), nc);
    assert_eq!(report.messages_of("commit"), commit);
}

#[test]
fn counts_are_invariant_under_latency_jitter() {
    // The law counts messages, not time: moderate jitter does not
    // change the totals for these seeds. (Under *extreme* spread a
    // post-commit straggler's ACK can be elided, making the law an
    // upper bound — see `fig3_holds_under_jitter` in
    // `tests/artifacts.rs` for the envelope.)
    for seed in 0..8 {
        let report = workloads::general(6, 2, 3, uniform_config(seed)).run();
        assert!(report.is_clean(), "seed {seed}");
        assert_eq!(
            report.total_messages(),
            analysis::messages_general(6, 2, 3),
            "seed {seed}"
        );
    }
}

#[test]
fn no_overhead_when_no_exception_is_raised() {
    // §4.4: "our algorithm (and the CR algorithm) will have no overhead
    // if an exception is not raised".
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..6).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let mut scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, a1);
    for i in 0..3 {
        scenario = scenario
            .enter_at(SimTime::from_micros(5), NodeId::new(i), a2)
            .complete_at(SimTime::from_micros(50), NodeId::new(i), a2);
    }
    let report = scenario.run();
    assert!(report.is_clean());
    assert_eq!(report.total_messages(), 0);
    assert!(report.resolutions.is_empty());
}

// ---------------------------------------------------------------------
// §4.3 worked examples, step by step.
// ---------------------------------------------------------------------

#[test]
fn example1_resolver_is_o2_and_everyone_handles_resolved() {
    let (w, ids) = workloads::example1(NetConfig::default());
    let report = w.run();
    let r = report.resolution_for(ids.a1).expect("resolution committed");
    assert_eq!(r.resolver, NodeId::new(2), "name(O2) > name(O1) elects O2");
    // Raised set is exactly {O1:E1, O2:E2}.
    let mut raisers: Vec<_> = r.raised.iter().map(|(o, _)| *o).collect();
    raisers.sort();
    assert_eq!(raisers, vec![NodeId::new(1), NodeId::new(2)]);
    // All three objects started the same handler.
    let agreed = report.agreed_exception(ids.a1).expect("handlers ran");
    assert_eq!(report.handlers_for(ids.a1).len(), 3);
    assert_eq!(agreed.id(), r.resolved.id());
    // Message count: two raisers, no nesting, N = 3.
    assert_eq!(report.total_messages(), analysis::messages_general(3, 2, 0));
}

#[test]
fn example2_outer_resolution_eliminates_nested_one() {
    let (w, ids) = workloads::example2(NetConfig::default());
    let report = w.run();
    assert!(report.is_clean(), "report: {report}");

    // Exactly one resolution, in A1 — the one O2 started in A3 was
    // eliminated.
    assert_eq!(report.resolutions.len(), 1);
    let r = report.resolution_for(ids.a1).expect("resolution in A1");
    assert_eq!(r.resolver, NodeId::new(2));

    // The resolved set is {E1 (from O1), E3 (abortion signal from O2)};
    // E2 disappeared with the eliminated nested resolution.
    let raised_ids: Vec<ExceptionId> = r.raised.iter().map(|(_, e)| e.id()).collect();
    assert!(raised_ids.contains(&ids.e1));
    assert!(raised_ids.contains(&ids.e3));
    assert!(!raised_ids.contains(&ids.e2));

    // All four objects started the handler for the resolved exception.
    assert_eq!(report.handlers_for(ids.a1).len(), 4);
    report.agreed_exception(ids.a1).expect("agreement");
}

#[test]
fn example2_o3_cleans_up_the_belated_exception() {
    let (w, ids) = workloads::example2(NetConfig::default());
    let report = w.run();
    // O3 never entered A3, so O2's Exception(A3, O2, E2) was buffered
    // there and then cleaned when HaveNested announced A3's abortion.
    let cleaned = report.notes.iter().any(|n| {
        matches!(
            n,
            Note::CleanedNestedMessages { object, action }
                if *object == NodeId::new(3) && *action == ids.a3
        )
    });
    assert!(cleaned, "O3 must clean up the buffered A3 exception");
}

#[test]
fn example2_nested_actions_abort_innermost_first() {
    let (w, ids) = workloads::example2(NetConfig::default());
    let report = w.run();
    // O2 aborted [A3, A2] in that order (§3.3 problem 1: "A3 should be
    // aborted before A2").
    let o2_chain = report.notes.iter().find_map(|n| match n {
        Note::AbortedNested { object, chain, .. } if *object == NodeId::new(2) => {
            Some(chain.clone())
        }
        _ => None,
    });
    assert_eq!(o2_chain, Some(vec![ids.a3, ids.a2]));
    // O3 and O4, which were only in A2, abort just [A2].
    for o in [3u32, 4] {
        let chain = report.notes.iter().find_map(|n| match n {
            Note::AbortedNested { object, chain, .. } if *object == NodeId::new(o) => {
                Some(chain.clone())
            }
            _ => None,
        });
        assert_eq!(chain, Some(vec![ids.a2]), "O{o}");
    }
}

// ---------------------------------------------------------------------
// §4.1 abortion semantics.
// ---------------------------------------------------------------------

/// Builds A1{O0,O1} ⊃ A2{O1} ⊃ A3{O1}: object O1 nested two deep,
/// with configurable abortion handlers.
fn deep_nest(
    o1_a2: Option<ExceptionId>,
    o1_a3: Option<ExceptionId>,
) -> (Scenario, caex_action::ActionId) {
    let tree = Arc::new(chain_tree(6));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let a3 = reg
        .declare(ActionScope::nested(
            "A3",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a2,
        ))
        .unwrap();

    let mk = |signal: Option<ExceptionId>| {
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        t.on_abort(SimTime::from_micros(3), move || match signal {
            Some(id) => AbortionOutcome::Signal(Exception::new(id)),
            None => AbortionOutcome::Aborted,
        });
        t
    };

    let scenario = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .enter_at(SimTime::from_micros(2), NodeId::new(1), a3)
        .handlers(NodeId::new(1), a2, mk(o1_a2))
        .handlers(NodeId::new(1), a3, mk(o1_a3))
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        );
    (scenario, a1)
}

#[test]
fn only_directly_nested_action_may_signal() {
    // A3 (deep) signals e5, A2 (directly nested in A1) signals e4:
    // only e4 may enter the A1 resolution; e5 is ignored (§4.1).
    let (scenario, a1) = deep_nest(Some(ExceptionId::new(4)), Some(ExceptionId::new(5)));
    let report = scenario.run();
    let r = report.resolution_for(a1).expect("resolution");
    let raised: Vec<ExceptionId> = r.raised.iter().map(|(_, e)| e.id()).collect();
    assert!(raised.contains(&ExceptionId::new(4)), "A2 signal honoured");
    assert!(!raised.contains(&ExceptionId::new(5)), "A3 signal masked");
    let masked = report.notes.iter().any(
        |n| matches!(n, Note::DeepSignalIgnored { exc, .. } if exc.id() == ExceptionId::new(5)),
    );
    assert!(masked, "deep signal must be reported as ignored");
}

#[test]
fn clean_abortion_contributes_no_exception() {
    let (scenario, a1) = deep_nest(None, None);
    let report = scenario.run();
    let r = report.resolution_for(a1).expect("resolution");
    // Only the raiser's exception is resolved.
    assert_eq!(r.raised.len(), 1);
    assert_eq!(r.resolved.id(), ExceptionId::new(1));
}

#[test]
fn abortion_signal_makes_the_nested_object_a_raiser() {
    let (scenario, a1) = deep_nest(Some(ExceptionId::new(4)), None);
    let report = scenario.run();
    let r = report.resolution_for(a1).expect("resolution");
    // O1 signalled e4 via NestedCompleted, becoming a raiser; it has
    // the bigger name, so it resolves.
    assert_eq!(r.resolver, NodeId::new(1));
}

#[test]
fn abortion_handler_cost_delays_resolution() {
    let run_with_cost = |cost: u64| {
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a1 = reg
            .declare(ActionScope::top_level(
                "A1",
                [NodeId::new(0), NodeId::new(1)],
                Arc::clone(&tree),
            ))
            .unwrap();
        let a2 = reg
            .declare(ActionScope::nested(
                "A2",
                [NodeId::new(1)],
                Arc::clone(&tree),
                a1,
            ))
            .unwrap();
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        t.on_abort(SimTime::from_micros(cost), || AbortionOutcome::Aborted);
        let report = Scenario::new(Arc::new(reg))
            .enter_all_at(SimTime::ZERO, a1)
            .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
            .handlers(NodeId::new(1), a2, t)
            .raise_at(
                SimTime::from_micros(10),
                NodeId::new(0),
                Exception::new(ExceptionId::new(1)),
            )
            .run();
        report.resolution_for(a1).expect("resolution").at
    };
    let fast = run_with_cost(0);
    let slow = run_with_cost(10_000);
    assert!(
        slow >= fast + SimTime::from_micros(10_000),
        "§4.4: abortion handler execution delays the protocol ({fast} vs {slow})"
    );
}

// ---------------------------------------------------------------------
// Fig. 1 strategies: wait vs abort.
// ---------------------------------------------------------------------

#[test]
fn wait_strategy_waits_for_nested_completion() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let remaining = SimTime::from_millis(50);
    let report = Scenario::new(Arc::new(reg))
        .with_strategy(NestedStrategy::Wait)
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .nested_remaining(NodeId::new(1), a2, Some(remaining))
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    let r = report.resolution_for(a1).expect("resolution");
    assert!(
        r.at >= remaining,
        "wait strategy must stall until the nested action ends ({})",
        r.at
    );
    assert!(report.is_clean());
}

#[test]
fn wait_strategy_deadlocks_on_belated_participant() {
    // Fig. 1(a)'s fatal flaw: a nested action that can never complete
    // (its belated participant never arrives) blocks the resolution
    // forever under the wait strategy.
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let report = Scenario::new(Arc::new(reg))
        .with_strategy(NestedStrategy::Wait)
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .nested_remaining(NodeId::new(1), a2, None) // never completes
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    assert!(!report.is_clean());
    assert!(report.resolutions.is_empty());
    assert!(report.deadlocked.contains(&NodeId::new(0)));
    // The abort strategy on the identical structure succeeds (shown by
    // every other test in this file).
}

// ---------------------------------------------------------------------
// Signalling between nested actions (§3.1 termination model).
// ---------------------------------------------------------------------

#[test]
fn failure_signal_cascades_into_containing_action() {
    // A2 = {O1, O2} nested in A1 = {O0, O1, O2}. An exception in A2 is
    // resolved there; both handlers signal e5 to A1, which starts a
    // second resolution in A1 involving O0 as well.
    let tree = Arc::new(chain_tree(6));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1), NodeId::new(2)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let failing_table = |cost: u64| {
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        for id in tree.iter() {
            t.on(id, SimTime::from_micros(cost), move |_| {
                HandlerOutcome::Signal(Exception::new(ExceptionId::new(5)))
            });
        }
        t
    };
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), a2)
        .handlers(NodeId::new(1), a2, failing_table(10))
        .handlers(NodeId::new(2), a2, failing_table(10))
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(1),
            Exception::new(ExceptionId::new(2)),
        )
        .run();

    assert!(report.is_clean(), "{report}");
    assert_eq!(report.resolutions.len(), 2, "{report}");
    let inner = report.resolution_for(a2).expect("inner resolution");
    assert_eq!(inner.resolved.id(), ExceptionId::new(2));
    let outer = report.resolution_for(a1).expect("outer resolution");
    assert_eq!(outer.resolved.id(), ExceptionId::new(5));
    // The outer resolution reached all three objects.
    assert_eq!(report.handlers_for(a1).len(), 3);
    report.agreed_exception(a1).expect("agreement in A1");
}

#[test]
fn top_level_failure_is_reported() {
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut failing = HandlerTable::recover_all(Arc::clone(&tree));
    failing.on(ExceptionId::new(1), SimTime::ZERO, |_| {
        HandlerOutcome::Signal(Exception::new(ExceptionId::new(3)))
    });
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .handlers(NodeId::new(0), a1, failing)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    assert_eq!(report.failures.len(), 1);
    let (object, action, exc) = &report.failures[0];
    assert_eq!((*object, *action), (NodeId::new(0), a1));
    assert_eq!(exc.id(), ExceptionId::new(3));
}

// ---------------------------------------------------------------------
// Belated participants and delayed resolution (§3.3 problem 4).
// ---------------------------------------------------------------------

#[test]
fn resolution_in_nested_action_waits_for_belated_participant() {
    // A2 = {O1, O2}; O2 enters late. O1 raises inside A2: the protocol
    // must stall until O2 enters (its buffered Exception is then
    // processed) and still resolve correctly.
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1), NodeId::new(2)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    let late_entry = SimTime::from_millis(30);
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .enter_at(late_entry, NodeId::new(2), a2) // belated
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(1),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    assert!(report.is_clean(), "{report}");
    let r = report.resolution_for(a2).expect("resolution in A2");
    assert!(
        r.at >= late_entry,
        "resolution must be delayed past the belated entry ({})",
        r.at
    );
    assert_eq!(report.handlers_for(a2).len(), 2);
}

#[test]
fn suppressed_second_raise_in_one_object() {
    // §4.1: only one exception can be raised per object per action.
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .raise_at(
            SimTime::from_micros(6),
            NodeId::new(0),
            Exception::new(ExceptionId::new(2)),
        )
        .run();
    assert_eq!(report.suppressed_raises(), 1);
    let r = report.resolution_for(a1).expect("resolution");
    assert_eq!(r.raised.len(), 1, "only the first raise is resolved");
}

#[test]
fn raise_after_suspension_is_suppressed() {
    // O1 learns of O0's exception (becomes S) before its own raise
    // fires: the raise must be suppressed and only one exception
    // resolved.
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let report = Scenario::new(Arc::new(reg))
        .with_config(
            NetConfig::default().with_latency(LatencyModel::Constant(SimTime::from_micros(10))),
        )
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(
            SimTime::from_micros(1),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        // Arrives at O1 at t=11; O1's own raise fires at t=100.
        .raise_at(
            SimTime::from_micros(100),
            NodeId::new(1),
            Exception::new(ExceptionId::new(2)),
        )
        .run();
    assert_eq!(report.suppressed_raises(), 1);
    let r = report.resolution_for(a1).expect("resolution");
    assert_eq!(r.raised.len(), 1);
    assert_eq!(r.resolved.id(), ExceptionId::new(1));
}

// ---------------------------------------------------------------------
// §2.2/Fig. 2b: acceptance tests at the synchronized exit line.
// ---------------------------------------------------------------------

#[test]
fn passing_acceptance_test_grants_the_leave() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut scenario = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .with_exit_acceptance(a1, || None); // always accepts
    for i in 0..3 {
        scenario = scenario.complete_at(SimTime::from_micros(10), NodeId::new(i), a1);
    }
    let report = scenario.run();
    assert!(report.is_clean());
    assert!(report.resolutions.is_empty());
    assert_eq!(report.total_messages(), 0);
}

#[test]
fn failing_acceptance_test_raises_and_recovers() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut scenario = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .with_exit_acceptance(a1, || {
            Some(Exception::new(ExceptionId::new(1)).with_origin("acceptance test"))
        });
    for i in 0..3 {
        scenario = scenario.complete_at(SimTime::from_micros(10), NodeId::new(i), a1);
    }
    let report = scenario.run();
    assert!(report.is_clean(), "{report}");
    // The rejection became a resolution: the highest-numbered object
    // raised, everyone handled, the handlers completed the action.
    let r = report
        .resolution_for(a1)
        .expect("resolution from acceptance failure");
    assert_eq!(r.resolver, NodeId::new(2));
    assert_eq!(r.resolved.id(), ExceptionId::new(1));
    assert_eq!(report.handlers_for(a1).len(), 3);
}

#[test]
fn acceptance_failure_can_cascade_to_containing_action() {
    // A nested action fails its acceptance test; its handlers signal;
    // the containing action resolves the signal.
    let tree = Arc::new(chain_tree(4));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let a2 = reg
        .declare(ActionScope::nested(
            "A2",
            [NodeId::new(1), NodeId::new(2)],
            Arc::clone(&tree),
            a1,
        ))
        .unwrap();
    // Handlers in A2 cannot recover from e1: they signal e3 upward.
    let failing = |_: &str| {
        let mut t = HandlerTable::recover_all(Arc::clone(&tree));
        t.on(ExceptionId::new(1), SimTime::from_micros(5), |_| {
            HandlerOutcome::Signal(Exception::new(ExceptionId::new(3)))
        });
        t
    };
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a2)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), a2)
        .handlers(NodeId::new(1), a2, failing("o1"))
        .handlers(NodeId::new(2), a2, failing("o2"))
        .with_exit_acceptance(a2, || Some(Exception::new(ExceptionId::new(1))))
        .complete_at(SimTime::from_micros(20), NodeId::new(1), a2)
        .complete_at(SimTime::from_micros(20), NodeId::new(2), a2)
        .run();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.resolutions.len(), 2, "{report}");
    assert_eq!(
        report.resolution_for(a2).unwrap().resolved.id(),
        ExceptionId::new(1)
    );
    assert_eq!(
        report.resolution_for(a1).unwrap().resolved.id(),
        ExceptionId::new(3)
    );
    // All three objects of A1 eventually handled the cascaded failure.
    assert_eq!(report.handlers_for(a1).len(), 3);
}

// ---------------------------------------------------------------------
// Resolution semantics over the exception tree.
// ---------------------------------------------------------------------

#[test]
fn resolved_exception_is_least_common_dominator() {
    // Aircraft tree: left + right engine failures resolve to the
    // emergency class, not the universal root.
    let mut b = TreeBuilder::new("universal");
    let emergency = b.child_of_root("emergency").unwrap();
    let left = b.child("left", emergency).unwrap();
    let right = b.child("right", emergency).unwrap();
    let tree = Arc::new(b.build().unwrap());
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..4).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(left),
        )
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(3),
            Exception::new(right),
        )
        .run();
    let r = report.resolution_for(a1).expect("resolution");
    assert_eq!(r.resolved.id(), emergency);
    assert_eq!(report.agreed_exception(a1).unwrap().id(), emergency);
}

#[test]
fn single_participant_action_resolves_locally_with_zero_messages() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            [NodeId::new(0)],
            Arc::clone(&tree),
        ))
        .unwrap();
    let report = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a1)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        )
        .run();
    assert_eq!(report.total_messages(), 0);
    let r = report.resolution_for(a1).expect("resolution");
    assert_eq!(r.resolver, NodeId::new(0));
    assert_eq!(report.handlers_for(a1).len(), 1);
}

#[test]
fn exactly_one_commit_broadcast_per_resolution() {
    for seed in 0..6 {
        let report = workloads::case3(7, uniform_config(seed)).run();
        // N−1 commit messages means exactly one object broadcast them.
        assert_eq!(report.messages_of("commit"), 6, "seed {seed}");
        assert_eq!(report.resolutions.len(), 1, "seed {seed}");
    }
}

#[test]
fn resolver_is_always_max_raiser() {
    for seed in 0..6 {
        let report = workloads::general(8, 3, 2, uniform_config(seed)).run();
        let r = &report.resolutions[0];
        let max_raiser = r.raised.iter().map(|(o, _)| *o).max().unwrap();
        assert_eq!(r.resolver, max_raiser, "seed {seed}");
    }
}

#[test]
fn deterministic_under_equal_seeds() {
    let run = |seed| {
        let report = workloads::general(6, 2, 2, uniform_config(seed)).run();
        (
            report.total_messages(),
            report.finished_at,
            report.resolutions[0].resolved.id(),
            report.resolutions[0].resolver,
        )
    };
    assert_eq!(run(42), run(42));
}
