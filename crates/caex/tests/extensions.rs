//! Tests for the paper's extension points: the §4.5 reliable-multicast
//! regime, the §4.4 resolver-group fault-tolerance extension, and the
//! FIFO-assumption ablation.

use caex::{analysis, workloads};
use caex_net::{LatencyModel, NetConfig, SimTime};

// ---------------------------------------------------------------------
// §4.5: reliable multicast would reduce the protocol to a few
// multicasts (no ACKs).
// ---------------------------------------------------------------------

#[test]
fn multicast_count_matches_formula_over_grid() {
    for n in 2..=8u32 {
        for p in 1..=n {
            for q in 0..=(n - p) {
                let report = workloads::general(n, p, q, NetConfig::default()).run();
                assert_eq!(
                    report.multicasts_total(),
                    analysis::multicasts_general(n as u64, p as u64, q as u64),
                    "multicast mismatch at N={n} P={p} Q={q}"
                );
            }
        }
    }
}

#[test]
fn multicast_kinds_decompose() {
    let (n, p, q) = (6u32, 2u32, 3u32);
    let report = workloads::general(n, p, q, NetConfig::default()).run();
    assert_eq!(report.multicasts_of("exception"), p as u64);
    assert_eq!(report.multicasts_of("have_nested"), q as u64);
    assert_eq!(report.multicasts_of("nested_completed"), q as u64);
    assert_eq!(report.multicasts_of("commit"), 1);
}

#[test]
fn multicast_is_linear_while_point_to_point_is_quadratic() {
    // §4.5's payoff: the multicast count is independent of N for fixed
    // P and Q while the point-to-point count grows linearly in N (and
    // quadratically when P, Q scale with N).
    let at = |n: u32| {
        let report = workloads::general(n, 1, 0, NetConfig::default()).run();
        (report.multicasts_total(), report.total_messages())
    };
    let (m8, p8) = at(8);
    let (m32, p32) = at(32);
    assert_eq!(m8, m32, "multicast count is N-independent");
    assert!(p32 > 4 * p8 - 10, "point-to-point grows with N");
}

// ---------------------------------------------------------------------
// §4.4: resolver groups ("only contributes a constant factor").
// ---------------------------------------------------------------------

#[test]
fn resolver_group_adds_constant_commit_factor() {
    for k in 1..=3u32 {
        let n = 8u32;
        let p = 3u32;
        let w = workloads::general(n, p, 0, NetConfig::default());
        let report = w.scenario.with_resolver_group(k).run();
        assert!(report.is_clean(), "k={k}: {report}");
        assert_eq!(
            report.total_messages(),
            analysis::messages_general_grouped(n as u64, p as u64, 0, k as u64),
            "grouped law mismatch at k={k}"
        );
        // k resolutions recorded (each group resolver commits) …
        assert_eq!(report.resolutions.len(), k.min(p) as usize);
        // … all with the same resolved exception and raised set size.
        let first = &report.resolutions[0];
        for r in &report.resolutions {
            assert_eq!(r.resolved.id(), first.resolved.id());
            assert_eq!(r.raised.len(), first.raised.len());
        }
        // Every object still starts exactly one handler.
        assert_eq!(report.handlers_for(first.action).len(), n as usize, "k={k}");
    }
}

#[test]
fn resolver_groups_compose_with_nested_abortion() {
    // The grouped law extends the general law, Q included:
    // (N−1)(2P+3Q+1) + (min(k,P)−1)(N−1).
    let (n, p, q, k) = (7u32, 2u32, 3u32, 2u32);
    let w = workloads::general(n, p, q, NetConfig::default());
    let report = w.scenario.with_resolver_group(k).run();
    assert!(report.is_clean(), "{report}");
    assert_eq!(
        report.total_messages(),
        analysis::messages_general(n as u64, p as u64, q as u64)
            + (u64::from(k.min(p)) - 1) * (u64::from(n) - 1)
    );
    assert_eq!(
        report.handlers_for(report.resolutions[0].action).len(),
        n as usize
    );
}

#[test]
fn resolver_group_larger_than_raisers_caps_at_raisers() {
    let n = 6u32;
    let p = 2u32;
    let w = workloads::general(n, p, 0, NetConfig::default());
    let report = w.scenario.with_resolver_group(10).run();
    assert!(report.is_clean());
    assert_eq!(report.resolutions.len(), p as usize);
    assert_eq!(
        report.total_messages(),
        analysis::messages_general_grouped(n as u64, p as u64, 0, 10),
    );
}

#[test]
fn duplicate_commits_are_absorbed_as_stale() {
    let w = workloads::general(5, 3, 0, NetConfig::default());
    let report = w.scenario.with_resolver_group(3).run();
    assert!(report.is_clean());
    // Each object accepts one commit; the other group commits arrive
    // stale. 3 resolvers × 4 peers = 12 commits; each of the 5 objects
    // accepts 1 (resolvers accept their own), so 12 − (5 − 3) = 10 of
    // the *received* commits are stale? Simpler invariant: staleness is
    // nonzero and agreement still holds.
    assert!(report.stale_messages() > 0);
    assert!(report
        .agreed_exception(report.resolutions[0].action)
        .is_some());
}

#[test]
fn elected_resolver_load_is_balanced() {
    // Contrast with the central coordinator's hot spot: in the paper's
    // design the per-node in-load of a case-3 storm is uniform — every
    // object receives (N−1) exceptions + its share of ACKs/commits.
    let n = 8u32;
    let report = workloads::case3(n, NetConfig::default()).run();
    let loads: Vec<u64> = (0..n)
        .map(|i| report.stats.node_in_load(caex_net::NodeId::new(i)))
        .collect();
    let max = *loads.iter().max().unwrap();
    let min = *loads.iter().min().unwrap();
    // The resolver gets a few extra ACKs; the spread stays small.
    assert!(max - min <= n as u64, "load spread too wide: {loads:?}");
}

// ---------------------------------------------------------------------
// §4's "centralized or decentralized manager": the leave protocols.
// ---------------------------------------------------------------------

mod leave {
    use caex::{analysis, LeaveMode, Note, Scenario};
    use caex_action::{ActionRegistry, ActionScope};
    use caex_net::{NodeId, SimTime};
    use caex_tree::{chain_tree, Exception, ExceptionId};
    use std::sync::Arc;

    fn setup(n: u32) -> (Arc<ActionRegistry>, caex_action::ActionId) {
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level("A", (0..n).map(NodeId::new), tree))
            .unwrap();
        (Arc::new(reg), a)
    }

    fn completing_scenario(n: u32, mode: LeaveMode) -> caex::RunReport {
        let (reg, a) = setup(n);
        let mut s = Scenario::new(reg)
            .with_leave_mode(mode)
            .enter_all_at(SimTime::ZERO, a);
        for i in 0..n {
            // Staggered exit-line arrivals.
            s = s.complete_at(SimTime::from_micros(10 * (i as u64 + 1)), NodeId::new(i), a);
        }
        s.run()
    }

    #[test]
    fn managed_leave_is_message_free() {
        let report = completing_scenario(5, LeaveMode::Managed);
        assert!(report.is_clean());
        assert_eq!(report.total_messages(), 0);
        let completions = report
            .notes
            .iter()
            .filter(|n| matches!(n, Note::Completed { .. }))
            .count();
        assert_eq!(completions, 5);
    }

    #[test]
    fn distributed_leave_costs_n_times_n_minus_1() {
        for n in [2u32, 4, 7] {
            let report = completing_scenario(n, LeaveMode::Distributed);
            assert!(report.is_clean(), "N={n}");
            assert_eq!(
                report.total_messages(),
                analysis::leave_messages(n as u64),
                "N={n}"
            );
            assert_eq!(
                report.messages_of("leave_ready"),
                analysis::leave_messages(n as u64)
            );
            let completions = report
                .notes
                .iter()
                .filter(|note| matches!(note, Note::Completed { .. }))
                .count();
            assert_eq!(completions, n as usize, "N={n}");
        }
    }

    #[test]
    fn nobody_leaves_before_the_last_arrival() {
        // With distributed leave, completions all happen at/after the
        // last object's exit-line arrival plus one message delay.
        let report = completing_scenario(4, LeaveMode::Distributed);
        let last_arrival = SimTime::from_micros(40);
        for note in &report.notes {
            if matches!(note, Note::Completed { .. }) {
                // Completion notes carry no time; use finished_at as the
                // proxy: the run ends after the last leave.
            }
        }
        assert!(report.finished_at >= last_arrival);
    }

    #[test]
    fn exception_during_distributed_leave_takes_over() {
        // Objects 0 and 1 reach the exit line; object 2 raises instead.
        // The leave must not happen — the resolution takes over and its
        // handlers complete the action.
        let (reg, a) = setup(3);
        let report = Scenario::new(reg)
            .with_leave_mode(LeaveMode::Distributed)
            .enter_all_at(SimTime::ZERO, a)
            .complete_at(SimTime::from_micros(10), NodeId::new(0), a)
            .complete_at(SimTime::from_micros(10), NodeId::new(1), a)
            .raise_at(
                SimTime::from_micros(10),
                NodeId::new(2),
                Exception::new(ExceptionId::new(1)),
            )
            .run();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.resolutions.len(), 1);
        // All three handled the exception (the two at the exit line
        // were still reachable participants).
        assert_eq!(report.handlers_for(a).len(), 3);
    }

    #[test]
    fn threaded_distributed_completion_works() {
        use caex::thread_engine::ThreadRunner;
        let (reg, a) = setup(3);
        let mut runner = ThreadRunner::new(reg).enter_all_at(SimTime::ZERO, a);
        for i in 0..3 {
            runner = runner.complete_at(SimTime::from_millis(1), NodeId::new(i), a);
        }
        let report = runner.run();
        let completions = report
            .notes
            .iter()
            .filter(|n| matches!(n, Note::Completed { .. }))
            .count();
        assert_eq!(completions, 3);
        assert_eq!(report.stats.sent_total(), 6); // N(N−1)
    }
}

// ---------------------------------------------------------------------
// FIFO ablation: the §4.2 assumption is load-bearing.
// ---------------------------------------------------------------------

fn anomaly(report: &caex::RunReport, expected_raisers: usize) -> bool {
    if !report.is_clean() {
        return true;
    }
    // Distinct handled exceptions per action.
    for r in &report.resolutions {
        let handled: Vec<_> = report
            .handler_starts
            .iter()
            .filter(|h| h.action == r.action)
            .map(|h| h.exc.id())
            .collect();
        if handled.windows(2).any(|w| w[0] != w[1]) {
            return true; // agreement broken
        }
    }
    // Incomplete raiser visibility at the resolver.
    report
        .resolutions
        .first()
        .is_some_and(|r| r.raised.len() < expected_raisers)
}

#[test]
fn fifo_on_never_shows_anomalies() {
    for seed in 0..40 {
        let config = NetConfig::default()
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(1),
                max: SimTime::from_micros(5_000),
            })
            .with_seed(seed);
        let report = workloads::case3(6, config).run();
        assert!(
            !anomaly(&report, 6),
            "anomaly with FIFO enabled at seed {seed}"
        );
    }
}

#[test]
fn fifo_off_eventually_shows_anomalies() {
    // Without FIFO a raiser's ACK can overtake its own Exception, so a
    // lower-ranked raiser may believe itself the max raiser and commit
    // early / over an incomplete set. Across jittered seeds this must
    // show up — demonstrating the assumption is necessary, §4.2.
    let mut anomalies = 0;
    for seed in 0..40 {
        let config = NetConfig::default()
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(1),
                max: SimTime::from_micros(5_000),
            })
            .with_seed(seed)
            .with_fifo(false);
        let report = workloads::case3(6, config).run();
        if anomaly(&report, 6) {
            anomalies += 1;
        }
    }
    assert!(
        anomalies > 0,
        "expected at least one protocol anomaly without FIFO channels"
    );
}
