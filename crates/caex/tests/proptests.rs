//! Property-based tests of the protocol invariants (DESIGN.md §4)
//! under randomized action structures, exception trees, raise patterns
//! and network jitter.

use caex::{NestedStrategy, Scenario};
use caex_action::{AbortionOutcome, ActionRegistry, ActionScope, HandlerTable};
use caex_net::{LatencyModel, NetConfig, NodeId, SimTime};
use caex_tree::{Exception, ExceptionId, ExceptionTree, TreeBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// A randomly generated scenario description.
#[derive(Debug, Clone)]
struct RandomScenario {
    n: u32,
    tree_parents: Vec<usize>,
    /// For each object: whether it owns a singleton nested action, and
    /// whether that nested action's abortion handler signals.
    nested: Vec<(bool, bool)>,
    /// Raisers: (object index, exception choice, raise-time offset µs).
    raises: Vec<(usize, usize, u64)>,
    seed: u64,
    latency_max: u64,
}

fn arb_scenario() -> impl Strategy<Value = RandomScenario> {
    (2u32..9, 1usize..18)
        .prop_flat_map(|(n, tree_size)| {
            let nested = prop::collection::vec((any::<bool>(), any::<bool>()), n as usize);
            let raises = prop::collection::vec(
                (0usize..n as usize, 0usize..tree_size, 0u64..40),
                1..=(n as usize),
            );
            let tree_parents = prop::collection::vec(0usize..usize::MAX, tree_size);
            (
                Just(n),
                tree_parents,
                nested,
                raises,
                any::<u64>(),
                1u64..2_000,
            )
        })
        .prop_map(
            |(n, tree_parents, nested, raises, seed, latency_max)| RandomScenario {
                n,
                tree_parents,
                nested,
                raises,
                seed,
                latency_max,
            },
        )
}

fn build_tree(parents: &[usize]) -> Arc<ExceptionTree> {
    let mut b = TreeBuilder::new("root");
    let mut ids = vec![ExceptionId::ROOT];
    for (i, &c) in parents.iter().enumerate() {
        let parent = ids[c % ids.len()];
        ids.push(b.child(format!("n{i}"), parent).unwrap());
    }
    Arc::new(b.build().unwrap())
}

struct Built {
    report: caex::RunReport,
    tree: Arc<ExceptionTree>,
    top: caex_action::ActionId,
    n: u32,
}

fn run_scenario(rs: &RandomScenario) -> Built {
    let tree = build_tree(&rs.tree_parents);
    let mut reg = ActionRegistry::new();
    let top = reg
        .declare(ActionScope::top_level(
            "top",
            (0..rs.n).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .unwrap();
    let mut nested_ids = Vec::new();
    for (i, &(has_nested, _)) in rs.nested.iter().enumerate() {
        if has_nested {
            let id = reg
                .declare(ActionScope::nested(
                    format!("nested-{i}"),
                    [NodeId::new(i as u32)],
                    Arc::clone(&tree),
                    top,
                ))
                .unwrap();
            nested_ids.push((i, id));
        }
    }
    let registry = Arc::new(reg);
    let mut scenario = Scenario::new(Arc::clone(&registry))
        .with_config(
            NetConfig::default()
                .with_latency(LatencyModel::Uniform {
                    min: SimTime::from_micros(1),
                    max: SimTime::from_micros(rs.latency_max),
                })
                .with_seed(rs.seed),
        )
        .with_strategy(NestedStrategy::Abort)
        .enter_all_at(SimTime::ZERO, top);
    for &(i, nested_action) in &nested_ids {
        scenario = scenario.enter_at(
            SimTime::from_micros(1),
            NodeId::new(i as u32),
            nested_action,
        );
        if rs.nested[i].1 {
            // This nested action's abortion handler signals some
            // exception from the tree (derived from the index).
            let exc = ExceptionId::new((i as u32) % tree.len() as u32);
            let mut t = HandlerTable::recover_all(Arc::clone(&tree));
            t.on_abort(SimTime::from_micros(3), move || {
                AbortionOutcome::Signal(Exception::new(exc))
            });
            scenario = scenario.handlers(NodeId::new(i as u32), nested_action, t);
        }
    }
    for &(obj, exc_choice, offset) in &rs.raises {
        let exc = ExceptionId::new((exc_choice % tree.len()) as u32);
        scenario = scenario.raise_at(
            SimTime::from_micros(5 + offset),
            NodeId::new(obj as u32),
            Exception::new(exc),
        );
    }
    let report = scenario.with_delivery_limit(200_000).run();
    Built {
        report,
        tree,
        top,
        n: rs.n,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1 (termination): every random scenario with at least
    /// one raise reaches quiescence with no stuck participants and no
    /// livelock.
    #[test]
    fn termination(rs in arb_scenario()) {
        let built = run_scenario(&rs);
        prop_assert!(!built.report.hit_delivery_limit, "livelock");
        prop_assert!(
            built.report.deadlocked.is_empty(),
            "deadlocked: {:?}",
            built.report.deadlocked
        );
    }

    /// Invariants 2+5 (agreement, single resolver): at most one
    /// resolution commits in the top action, every participant that
    /// handles it handles the same exception, and if any raise survived
    /// to the top action a resolution did happen.
    #[test]
    fn agreement_and_single_commit(rs in arb_scenario()) {
        let built = run_scenario(&rs);
        let top_resolutions: Vec<_> = built
            .report
            .resolutions
            .iter()
            .filter(|r| r.action == built.top)
            .collect();
        prop_assert!(top_resolutions.len() <= 1, "multiple commits in one action");
        if let Some(r) = top_resolutions.first() {
            let agreed = built.report.agreed_exception(built.top);
            prop_assert_eq!(agreed.map(|e| e.id()), Some(r.resolved.id()));
            // Every participant of the action handled it.
            prop_assert_eq!(
                built.report.handlers_for(built.top).len(),
                built.n as usize
            );
        }
    }

    /// Invariants 3+4 (coverage, minimality): the committed exception is
    /// the least ancestor of everything in the resolved set.
    #[test]
    fn coverage_and_minimality(rs in arb_scenario()) {
        let built = run_scenario(&rs);
        for r in &built.report.resolutions {
            for (_, exc) in &r.raised {
                prop_assert!(
                    built.tree.is_ancestor(r.resolved.id(), exc.id()).unwrap(),
                    "{} does not cover {}", r.resolved.id(), exc.id()
                );
            }
            let lca = built
                .tree
                .resolve(r.raised.iter().map(|(_, e)| e.id()))
                .unwrap();
            prop_assert_eq!(r.resolved.id(), lca, "not minimal");
        }
    }

    /// Invariant 6 (raiser visibility via FIFO): the resolver's raised
    /// set contains an entry for every object whose raise was *not*
    /// suppressed and not eliminated with a nested resolution.
    /// Weaker check, strongest form that survives nesting: the resolver
    /// is the max id among the resolved raisers.
    #[test]
    fn resolver_is_max_raiser(rs in arb_scenario()) {
        let built = run_scenario(&rs);
        for r in &built.report.resolutions {
            let max = r.raised.iter().map(|(o, _)| *o).max().unwrap();
            prop_assert_eq!(r.resolver, max);
        }
    }

    /// Determinism: same scenario, same seed, same outcome (messages,
    /// final time, resolutions).
    #[test]
    fn deterministic_replay(rs in arb_scenario()) {
        let a = run_scenario(&rs);
        let b = run_scenario(&rs);
        prop_assert_eq!(a.report.total_messages(), b.report.total_messages());
        prop_assert_eq!(a.report.finished_at, b.report.finished_at);
        prop_assert_eq!(a.report.resolutions.len(), b.report.resolutions.len());
        for (x, y) in a.report.resolutions.iter().zip(&b.report.resolutions) {
            prop_assert_eq!(x.resolved.id(), y.resolved.id());
            prop_assert_eq!(x.resolver, y.resolver);
        }
    }

    /// Codec round-trip: any protocol message survives encode/decode,
    /// and the declared length is exact.
    #[test]
    fn codec_round_trip(
        tag in 0u8..5,
        action in 0u32..1000,
        from in 0u32..1000,
        exc_id in 0u32..1000,
        severity in 0u8..3,
        origin in prop::option::of(".{0,40}"),
        detail in prop::option::of(".{0,40}"),
        with_exc in any::<bool>(),
    ) {
        use caex::{codec, Msg};
        use caex_action::ActionId;
        use caex_tree::Severity;

        let mut e = Exception::new(ExceptionId::new(exc_id)).with_severity(
            match severity { 0 => Severity::Recoverable, 1 => Severity::Serious, _ => Severity::Fatal },
        );
        if let Some(o) = origin { e = e.with_origin(o); }
        if let Some(d) = detail { e = e.with_detail(d); }
        let action = ActionId::new(action);
        let from = NodeId::new(from);
        let msg = match tag {
            0 => Msg::Exception { action, from, exc: e },
            1 => Msg::HaveNested { from, action },
            2 => Msg::NestedCompleted { action, from, exc: with_exc.then_some(e) },
            3 => Msg::Ack { from, action },
            _ => Msg::Commit { action, from, exc: e },
        };
        let bytes = codec::encode(&msg);
        prop_assert_eq!(bytes.len(), codec::encoded_len(&msg));
        prop_assert_eq!(codec::decode(&bytes).unwrap(), msg);
    }

    /// Message-count sanity: the executed count never exceeds the
    /// paper's worst-case law for the scenario's N with P = Q = N
    /// treated independently (upper envelope), and commit messages are
    /// exactly (participants − 1) per resolution in that action's
    /// scope... here: commits = Σ (|G_A| − 1).
    #[test]
    fn message_counts_within_paper_envelope(rs in arb_scenario()) {
        let built = run_scenario(&rs);
        let n = built.n as u64;
        // Envelope: every object both raises and aborts nested work —
        // impossible simultaneously, so this strictly dominates; plus
        // cascaded resolutions can at most repeat it once per nesting
        // level (depth ≤ 1 here).
        let envelope = 2 * (n - 1) * (2 * n + 3 * n + 1);
        prop_assert!(
            built.report.total_messages() <= envelope,
            "{} > envelope {envelope}",
            built.report.total_messages()
        );
    }
}
