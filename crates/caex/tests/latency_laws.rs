//! Latency laws of the protocol under constant link latency `L`:
//! the timing counterpart to the §4.4 message counts.
//!
//! With one raiser and no nesting the critical path is two hops —
//! `Exception` out, `ACK` back — so the commit happens at
//! `raise + 2L`, and the last handler starts at `raise + 3L` (commit
//! delivery). Nested abortion inserts the abortion-handler cost `C`
//! before `NestedCompleted`, giving `raise + 2L + C`. These laws are
//! verified against the executed virtual times.

use caex::{workloads, Scenario};
use caex_action::{AbortionOutcome, ActionRegistry, ActionScope, HandlerTable};
use caex_net::{LatencyModel, NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use std::sync::Arc;

fn constant(l_us: u64) -> NetConfig {
    NetConfig::default().with_latency(LatencyModel::Constant(SimTime::from_micros(l_us)))
}

/// The raise instant used by `workloads::general` scenarios.
const RAISE_AT: u64 = 2;

#[test]
fn case1_commit_at_two_hops() {
    for l in [50u64, 100, 700] {
        let report = workloads::case1(5, constant(l)).run();
        let commit = report.resolutions[0].at.as_micros();
        assert_eq!(commit, RAISE_AT + 2 * l, "L={l}");
        assert_eq!(
            commit - RAISE_AT,
            caex::analysis::commit_latency_flat(SimTime::from_micros(l)).as_micros()
        );
        // Non-resolver handlers start at commit delivery: one hop more.
        let last_handler = report
            .handler_starts
            .iter()
            .map(|h| h.at.as_micros())
            .max()
            .unwrap();
        assert_eq!(last_handler, RAISE_AT + 3 * l, "L={l}");
        assert_eq!(
            last_handler - RAISE_AT,
            caex::analysis::last_handler_latency_flat(SimTime::from_micros(l)).as_micros()
        );
    }
}

#[test]
fn case3_is_no_slower_than_case1() {
    // Concurrent raisers don't lengthen the critical path: everyone's
    // Exception and ACK travel in parallel.
    for l in [100u64, 300] {
        let c1 = workloads::case1(6, constant(l)).run().resolutions[0].at;
        let c3 = workloads::case3(6, constant(l)).run().resolutions[0].at;
        assert_eq!(c1, c3, "L={l}");
    }
}

#[test]
fn nested_abortion_adds_exactly_its_handler_cost() {
    // One raiser, one nested object with abortion cost C: the resolver
    // must wait for the nested object's NestedCompleted, which leaves
    // C after the Exception arrives. Critical path: L (exception) + C
    // (abortion) + L (NestedCompleted/ACK) = 2L + C after the raise.
    let l = 100u64;
    for c in [0u64, 40, 500, 5_000] {
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a1 = reg
            .declare(ActionScope::top_level(
                "A1",
                (0..3).map(NodeId::new),
                Arc::clone(&tree),
            ))
            .unwrap();
        let a2 = reg
            .declare(ActionScope::nested(
                "A2",
                [NodeId::new(0)],
                Arc::clone(&tree),
                a1,
            ))
            .unwrap();
        let mut table = HandlerTable::recover_all(Arc::clone(&tree));
        table.on_abort(SimTime::from_micros(c), || AbortionOutcome::Aborted);
        let raise_at = 10u64;
        let report = Scenario::new(Arc::new(reg))
            .with_config(constant(l))
            .enter_all_at(SimTime::ZERO, a1)
            .enter_at(SimTime::from_micros(1), NodeId::new(0), a2)
            .handlers(NodeId::new(0), a2, table)
            .raise_at(
                SimTime::from_micros(raise_at),
                NodeId::new(2),
                Exception::new(ExceptionId::new(1)),
            )
            .run();
        let commit = report.resolutions[0].at.as_micros();
        assert_eq!(commit, raise_at + 2 * l + c, "C={c}");
        assert_eq!(
            commit - raise_at,
            caex::analysis::commit_latency_nested(SimTime::from_micros(l), SimTime::from_micros(c))
                .as_micros()
        );
    }
}

#[test]
fn latency_scales_linearly_not_with_n() {
    // The commit time is independent of N under constant latency: the
    // protocol is fully parallel in its fan-outs.
    let l = 200u64;
    let t4 = workloads::case1(4, constant(l)).run().resolutions[0].at;
    let t32 = workloads::case1(32, constant(l)).run().resolutions[0].at;
    assert_eq!(t4, t32);
}

#[test]
fn slowest_participant_link_dominates_commit() {
    // Heterogeneous topology: one WAN participant (5ms both ways)
    // among LAN peers (100µs). The resolver cannot be ready before the
    // WAN member's ACK returns: commit at raise + 2×WAN.
    let wan = NodeId::new(0);
    let wan_latency = SimTime::from_millis(5);
    let mk = |raiser: NodeId| {
        constant(100)
            .with_link_latency(raiser, wan, LatencyModel::Constant(wan_latency))
            .with_link_latency(wan, raiser, LatencyModel::Constant(wan_latency))
    };
    // In case1(5) the raiser is the last object, O4.
    let report = workloads::case1(5, mk(NodeId::new(4))).run();
    let commit = report.resolutions[0].at.as_micros();
    assert_eq!(commit, RAISE_AT + 2 * wan_latency.as_micros());
    assert!(report.is_clean());
}

#[test]
fn slowdown_window_during_resolution_stretches_commit() {
    // A congestion window covering the whole run multiplies every hop.
    let l = 100u64;
    let factor = 4u64;
    let slow = constant(l).with_faults(caex_net::FaultPlan::none().with_slowdown(
        factor as u32,
        SimTime::ZERO,
        SimTime::from_millis(100),
    ));
    let fast = workloads::case1(5, constant(l)).run().resolutions[0].at;
    let slowed = workloads::case1(5, slow).run().resolutions[0].at;
    assert_eq!(
        slowed.as_micros() - RAISE_AT,
        (fast.as_micros() - RAISE_AT) * factor
    );
}
