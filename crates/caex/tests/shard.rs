//! Golden equivalence of the fleet engine at `K = 1`: a one-instance,
//! one-shard, one-slot [`FleetEngine`] must reproduce exactly what
//! [`Scenario::run`] produces for the same action — same message
//! counts, same resolution pick, same observability stream. This is
//! the safety net under the multi-action sharding refactor: the load
//! generator's engine *is* the single-action engine when the fleet
//! degenerates.

use caex::shard::{ActionInstance, FleetConfig, FleetEngine};
use caex::{analysis, workloads};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_obs::{ObsEvent, Observer};
use proptest::prelude::*;

/// Collects the raw event stream.
#[derive(Default)]
struct Recorder {
    events: Vec<ObsEvent>,
}

impl Observer for Recorder {
    fn on_event(&mut self, event: &ObsEvent) {
        self.events.push(event.clone());
    }
}

/// Runs one scenario both ways and returns
/// `(scenario events, fleet events, fleet report, scenario report)`.
fn both_ways(
    build: impl Fn() -> caex::Scenario,
) -> (Vec<ObsEvent>, Vec<ObsEvent>, caex::shard::FleetReport, caex::RunReport) {
    let mut direct_obs = Recorder::default();
    let direct = build().run_observed(&mut direct_obs);

    let mut fleet_obs = Recorder::default();
    let instance = ActionInstance::from_scenario(build(), SimTime::ZERO);
    let config = FleetConfig {
        shards: 1,
        capacity: 1,
        law: Some(analysis::messages_general),
        ..Default::default()
    };
    let fleet = FleetEngine::new(config).run_observed(vec![instance], &mut fleet_obs);
    (direct_obs.events, fleet_obs.events, fleet, direct)
}

fn assert_golden_equivalence(
    direct_events: &[ObsEvent],
    fleet_events: &[ObsEvent],
    fleet: &caex::shard::FleetReport,
    direct: &caex::RunReport,
) {
    // Message accounting is identical, kind by kind.
    assert_eq!(fleet.stats.sent_total(), direct.stats.sent_total());
    for kind in ["exception", "ack", "have_nested", "nested_completed", "commit"] {
        assert_eq!(
            fleet.stats.sent_of_kind(kind),
            direct.stats.sent_of_kind(kind),
            "kind {kind}"
        );
    }
    // The resolution pick matches.
    let outcome = &fleet.outcomes[0];
    match direct.resolution_for(outcome.key) {
        Some(r) => {
            assert_eq!(outcome.resolver, Some(r.resolver));
            assert_eq!(
                outcome.resolved.as_ref().map(|e| e.id()),
                Some(r.resolved.id())
            );
            assert_eq!(outcome.committed, Some(r.at));
        }
        None => assert_eq!(outcome.resolver, None),
    }
    // The observability stream is bit-identical (same spans, same
    // order, same timestamps), which subsumes span balance.
    assert_eq!(direct_events, fleet_events);
}

#[test]
fn example1_through_the_fleet_matches_the_scenario_engine() {
    let (de, fe, fleet, direct) =
        both_ways(|| workloads::example1(NetConfig::default()).0.scenario);
    assert_golden_equivalence(&de, &fe, &fleet, &direct);
    assert_eq!(fleet.outcomes[0].resolver, Some(NodeId::new(2)));
    assert!(fleet.law_all_hold());
}

#[test]
fn example2_through_the_fleet_matches_the_scenario_engine() {
    let (de, fe, fleet, direct) =
        both_ways(|| workloads::example2(NetConfig::default()).0.scenario);
    assert_golden_equivalence(&de, &fe, &fleet, &direct);
    // O2 resolves in A1 after the nested resolution is eliminated
    // (§4.3 Example 2's narration).
    assert_eq!(fleet.outcomes[0].resolver, Some(NodeId::new(2)));
}

/// Valid §4.4 shapes: `N` participants, `1 <= P`, `P + Q <= N`, plus a
/// relocation offset pair for the fleet instance.
fn arb_shape() -> impl Strategy<Value = (u32, u32, u32, u32, u32)> {
    (2u32..7)
        .prop_flat_map(|n| (Just(n), 1..=n))
        .prop_flat_map(|(n, p)| (Just(n), Just(p), 0..=(n - p)))
        .prop_flat_map(|(n, p, q)| (Just(n), Just(p), Just(q), 0u32..40, 0u32..40))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A relocated general workload through the degenerate fleet
    /// reproduces the direct engine's outcomes: the §4.4 law count,
    /// the resolver (shifted by the node base), and the obs stream
    /// (shifted spans aside, verified via per-span event counts).
    #[test]
    fn relocated_k1_fleet_reproduces_the_general_workload(
        (n, p, q, node_base, action_base) in arb_shape()
    ) {
        let direct = workloads::general(n, p, q, NetConfig::default()).run();

        let w = workloads::general_at(n, p, q, node_base, action_base, NetConfig::default());
        let instance = ActionInstance::from_scenario(w.scenario, SimTime::ZERO);
        let config = FleetConfig {
            shards: 1,
            capacity: 1,
            law: Some(analysis::messages_general),
            ..Default::default()
        };
        let fleet = FleetEngine::new(config).run(vec![instance]);

        let outcome = &fleet.outcomes[0];
        // Message counts: fleet == direct == the closed-form law.
        prop_assert_eq!(fleet.stats.sent_total(), direct.stats.sent_total());
        prop_assert_eq!(
            outcome.messages,
            analysis::messages_general(u64::from(n), u64::from(p), u64::from(q))
        );
        prop_assert!(fleet.law_all_hold(), "§4.4 law after relocation");
        // Resolution pick: same resolver modulo the node relocation,
        // same exception, same commit time.
        let r = direct
            .resolution_for(direct.resolutions[0].action)
            .expect("general workload resolves");
        prop_assert_eq!(
            outcome.resolver,
            Some(NodeId::new(r.resolver.index() + node_base))
        );
        prop_assert_eq!(
            outcome.resolved.as_ref().map(caex_tree::Exception::id),
            Some(r.resolved.id())
        );
        prop_assert_eq!(outcome.committed, Some(r.at));
        prop_assert_eq!(outcome.finished, Some(direct.finished_at));
        prop_assert!(fleet.deadlocked.is_empty());
    }
}
