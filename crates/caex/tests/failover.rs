//! Resolver-failover battery: crash every role at every protocol step
//! and demand the §4.2 survivors terminate — committing over the full
//! raised set (deserted raisers' exceptions survive as ghost entries)
//! or cleanly standing down — never deadlocking, never splitting the
//! decision, and never exceeding the adjusted message budget.
//!
//! The grid sweeps are exhaustive over (victim × crash time) for the
//! paper's Examples 1 and 2; the proptest randomizes the whole
//! `(n, p, q)` family with a random crash point; the thread-engine
//! test replays the same failover on real OS threads.

use caex::thread_engine::ThreadRunner;
use caex::{analysis, workloads, Note, RunReport};
use caex_action::{ActionRegistry, ActionScope};
use caex_net::{FaultPlan, LatencyModel, NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId};
use proptest::prelude::*;
use std::sync::Arc;

fn agreement_holds(report: &RunReport) -> bool {
    report.resolutions.iter().all(|r| {
        let handled: Vec<_> = report
            .handler_starts
            .iter()
            .filter(|h| h.action == r.action)
            .map(|h| h.exc.id())
            .collect();
        handled.windows(2).all(|w| w[0] == w[1])
    })
}

/// The failover safety contract for one crash run: the network went
/// quiescent without hitting the delivery limit, no *survivor* is
/// stuck mid-resolution (the victim's own frozen state is expected),
/// and every started handler agrees per action.
fn assert_survivors_terminated(report: &RunReport, victim: NodeId, tag: &str) {
    assert!(!report.hit_delivery_limit, "[{tag}] delivery limit hit");
    let stuck: Vec<_> = report
        .deadlocked
        .iter()
        .filter(|n| **n != victim)
        .collect();
    assert!(
        stuck.is_empty(),
        "[{tag}] survivors stuck mid-resolution: {stuck:?}"
    );
    assert!(agreement_holds(report), "[{tag}] agreement violated");
}

/// Adjusted §4.4 budget under one crash: the baseline count plus
/// `3(N−1)²` slack for detection, re-election recovery probes, and the
/// second commit round.
fn message_budget(baseline: u64, n: u64) -> u64 {
    baseline + 3 * (n - 1) * (n - 1)
}

fn crash_config(victim: NodeId, at: SimTime) -> NetConfig {
    NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_crash(victim, at))
}

fn clean_config() -> NetConfig {
    NetConfig::default().with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
}

#[test]
fn example1_crash_grid_every_role_every_step() {
    // Example 1: participants O1..O3, raisers O1 and O2, resolver O2.
    // With 100µs links the whole protocol (raise → inform → ack →
    // commit → handle) spans ~400µs; sweeping crash times to 500µs in
    // 10µs steps covers every protocol step plus the post-commit tail.
    let baseline = workloads::example1(clean_config()).0.run();
    assert!(baseline.is_clean());
    let budget = message_budget(baseline.total_messages(), 3);
    for victim in (1..=3).map(NodeId::new) {
        for t in (0..=50).map(|k| SimTime::from_micros(k * 10)) {
            let tag = format!("example1 victim={victim} t={t}");
            let (workload, _) = workloads::example1(crash_config(victim, t));
            let action = workload.action;
            let report = workload.run();
            assert_survivors_terminated(&report, victim, &tag);
            // Both raisers can never die in one crash, so resolution
            // always completes and every survivor handles it.
            assert_eq!(report.resolutions.len(), 1, "[{tag}]");
            assert!(
                report.handlers_for(action).len() >= 2,
                "[{tag}] expected every survivor to handle"
            );
            assert!(
                report.total_messages() <= budget,
                "[{tag}] {} messages exceeds adjusted budget {budget}",
                report.total_messages()
            );
        }
    }
}

#[test]
fn example2_crash_grid_every_role_every_step() {
    // Example 2 nests A3 ⊂ A2 ⊂ A1 across four objects with a
    // cross-level concurrent raise — the crash can hit a raiser, the
    // resolver, a nested-action member, or a bystander at any point in
    // the abort/resolve cascade. The contract is the safety core:
    // survivors terminate, agree, and stay within budget.
    let baseline = workloads::example2(clean_config()).0.run();
    assert!(baseline.is_clean());
    let budget = message_budget(baseline.total_messages(), 4);
    for victim in (1..=4).map(NodeId::new) {
        for t in (0..=30).map(|k| SimTime::from_micros(k * 20)) {
            let tag = format!("example2 victim={victim} t={t}");
            let (workload, _) = workloads::example2(crash_config(victim, t));
            let report = workload.run();
            assert_survivors_terminated(&report, victim, &tag);
            assert!(
                report.total_messages() <= budget,
                "[{tag}] {} messages exceeds adjusted budget {budget}",
                report.total_messages()
            );
        }
    }
}

#[test]
fn reelected_resolver_commits_the_dead_resolvers_exception() {
    // Pin the ghost-entry guarantee: O2 (Example 1's resolver) raises
    // E2 and dies before committing. The survivors re-elect O1, whose
    // resolution must still cover the dead raiser's E2 — committing
    // exactly what O2 would have, so any peer the dead resolver *did*
    // reach cannot disagree.
    let victim = NodeId::new(2);
    let (workload, ids) = workloads::example1(crash_config(victim, SimTime::from_micros(150)));
    let report = workload.run();
    assert_survivors_terminated(&report, victim, "ghost");
    assert_eq!(report.resolutions.len(), 1);
    let resolution = &report.resolutions[0];
    assert_eq!(resolution.resolver, NodeId::new(1), "next-highest live raiser");
    assert!(
        resolution.raised.iter().any(|(o, e)| *o == victim && e.id() == ids.e2),
        "the deserter's raise must survive as a ghost entry: {:?}",
        resolution.raised
    );
    let reelections: Vec<_> = report
        .notes
        .iter()
        .filter(|n| matches!(n, Note::ResolverReelected { .. }))
        .collect();
    assert!(!reelections.is_empty(), "re-election must be noted");
}

#[test]
fn sole_raiser_partial_commit_converges_via_forwarding() {
    // The p = 1 soft spot: O3 is the only raiser of general(4,1,0), so
    // the whole raised set dies with it. A partition window drops the
    // commit O3 sends to O0 at t=202µs (exception t=2 → ACKs t=102 →
    // commit t=202 under 100µs links), then O3 crashes. O1 and O2
    // handled the commit; O0 holds only a ghost entry and stands down.
    // Pre-forwarding, the run "terminated" with O0 silently completing
    // normally while its peers handled an exception. Now the desertion
    // report makes the informed survivors re-forward the decision, and
    // the stood-down O0 accepts it: all three survivors handle.
    let victim = NodeId::new(3);
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(
            FaultPlan::none()
                .with_partition(
                    [NodeId::new(0)],
                    SimTime::from_micros(150),
                    SimTime::from_micros(250),
                )
                .with_crash(victim, SimTime::from_micros(400)),
        );
    let workload = workloads::general(4, 1, 0, config);
    let action = workload.action;
    let report = workload.run();
    assert_survivors_terminated(&report, victim, "p=1 partial commit");
    assert_eq!(report.resolutions.len(), 1);
    let handlers: Vec<NodeId> = report
        .handlers_for(action)
        .iter()
        .map(|h| h.object)
        .collect();
    for survivor in (0..3).map(NodeId::new) {
        assert!(
            handlers.contains(&survivor),
            "{survivor} must handle the forwarded commit; handlers: {handlers:?}"
        );
    }
    // Agreement over the forwarded decision is part of
    // assert_survivors_terminated; pin the exception too.
    let agreed = report.agreed_exception(action).expect("resolved");
    assert_eq!(agreed.id(), ExceptionId::new(1));
}

#[test]
fn healing_partition_stalls_but_never_amputates() {
    // The same topology under a *healing* partition and no crash: O0
    // is unreachable while the resolution wants its ACK, the traffic
    // is deferred (not dropped) to the heal time, and the run must
    // finish with every participant handling — zero deserters, zero
    // resolutions lost.
    let config = NetConfig::default()
        .with_latency(LatencyModel::Constant(SimTime::from_micros(100)))
        .with_faults(FaultPlan::none().with_healing_partition(
            [NodeId::new(0)],
            SimTime::ZERO,
            SimTime::from_millis(2),
        ));
    let workload = workloads::general(4, 1, 0, config);
    let action = workload.action;
    let report = workload.run();
    assert!(report.is_clean(), "healed run must be clean");
    assert_eq!(report.resolutions.len(), 1);
    assert_eq!(
        report.handlers_for(action).len(),
        4,
        "every participant handles after the heal"
    );
}

#[test]
fn thread_engine_crash_injection_fails_over_on_real_threads() {
    // The same failover on the threaded engine: node 2 raises, wins
    // the election, and is halted abruptly mid-protocol; the scripted
    // failure detector reports it to the survivors, node 0 takes over,
    // and both survivors handle the dead raiser's ghost exception.
    //
    // Real threads have no virtual clock, so the crash window is made
    // structural rather than temporal: node 1 enters the action only
    // at t=100ms, and a pre-entry participant buffers exceptions and
    // ACKs them on entry — the elected resolver therefore *cannot*
    // collect its last ACK (and commit) before its halt at t=20ms, no
    // matter how the scheduler interleaves the threads.
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a1 = reg
        .declare(ActionScope::top_level(
            "A1",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    let victim = NodeId::new(2);
    let report = ThreadRunner::new(Arc::new(reg))
        .enter_at(SimTime::ZERO, NodeId::new(0), a1)
        .enter_at(SimTime::ZERO, victim, a1)
        .enter_at(SimTime::from_millis(100), NodeId::new(1), a1)
        .raise_at(SimTime::from_millis(1), NodeId::new(0), Exception::new(ExceptionId::new(1)))
        .raise_at(SimTime::from_millis(1), victim, Exception::new(ExceptionId::new(2)))
        // Halt the prospective resolver while node 1's ACK is still
        // outstanding; detection (default 50ms later) hands the
        // election to node 0, which commits once node 1 enters.
        .crash_at(SimTime::from_millis(20), victim)
        .run();
    let agreed = report.agreed_exception(a1).expect("survivors resolve");
    // resolve(E1, E2) on chain_tree(2) — the same exception the dead
    // resolver would have committed.
    assert_eq!(agreed.id(), ExceptionId::new(1));
    let handled = report.handled_exceptions(a1);
    let handlers: Vec<NodeId> = handled.iter().map(|(o, _)| *o).collect();
    assert!(handlers.contains(&NodeId::new(0)) && handlers.contains(&NodeId::new(1)));
    assert!(!handlers.contains(&victim), "the halted victim cannot handle");
    assert!(
        report
            .notes
            .iter()
            .any(|n| matches!(n, Note::ResolverReelected { .. })),
        "re-election must be noted on the thread engine too"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random `(n, p, q)` cell, random victim, random crash point:
    /// survivors always terminate and agree within the adjusted
    /// budget, and whenever a live raiser remains the resolution
    /// still commits with every survivor handling it.
    #[test]
    fn random_cell_random_crash_point_survives(
        (n, p, q) in (2u32..=6)
            .prop_flat_map(|n| (Just(n), 1..=n))
            .prop_flat_map(|(n, p)| (Just(n), Just(p), 0..=(n - p))),
        victim_idx in 0u32..6,
        crash_us in 0u64..=600,
    ) {
        let victim = NodeId::new(victim_idx % n);
        let at = SimTime::from_micros(crash_us);
        let workload = workloads::general(n, p, q, crash_config(victim, at));
        let action = workload.action;
        let report = workload.run();
        let tag = format!("general:{n},{p},{q} victim={victim} t={at}");
        assert_survivors_terminated(&report, victim, &tag);
        let budget = message_budget(
            analysis::messages_general(u64::from(n), u64::from(p), u64::from(q)),
            u64::from(n),
        );
        prop_assert!(
            report.total_messages() <= budget,
            "[{tag}] {} messages exceeds adjusted budget {budget}",
            report.total_messages()
        );
        // The raisers are the top `p` node ids; if at least one raiser
        // survives, failover guarantees a commit that every survivor
        // handles. (A sole raiser that crashes may leave nothing to
        // resolve — survivors then stand down to normal, which
        // `assert_survivors_terminated` has already checked.)
        let raiser_survives = (0..p).any(|j| NodeId::new(n - 1 - j) != victim);
        if raiser_survives {
            prop_assert_eq!(report.resolutions.len(), 1, "{}", tag);
            prop_assert!(
                report.handlers_for(action).len() >= (n as usize) - 1,
                "[{tag}] every survivor must handle"
            );
        }
    }
}
