//! Error type for tree construction and queries.

use crate::ExceptionId;
use std::error::Error;
use std::fmt;

/// Errors produced when building or querying an exception tree.
///
/// # Examples
///
/// ```
/// use caex_tree::{TreeBuilder, TreeError, ExceptionId};
///
/// let tree = TreeBuilder::new("root").build().unwrap();
/// let err = tree.parent(ExceptionId::new(42)).unwrap_err();
/// assert!(matches!(err, TreeError::UnknownId(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// An [`ExceptionId`] does not belong to this tree.
    UnknownId(ExceptionId),
    /// A name was declared twice in the same tree.
    DuplicateName(String),
    /// A name was looked up but never declared.
    UnknownName(String),
    /// `resolve` was called with an empty set of raised exceptions.
    EmptyResolutionSet,
    /// A reduced tree would be empty (it must retain at least the root).
    EmptyReducedTree,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownId(id) => write!(f, "unknown exception id {id}"),
            TreeError::DuplicateName(name) => {
                write!(f, "duplicate exception name `{name}`")
            }
            TreeError::UnknownName(name) => write!(f, "unknown exception name `{name}`"),
            TreeError::EmptyResolutionSet => {
                write!(f, "cannot resolve an empty set of exceptions")
            }
            TreeError::EmptyReducedTree => {
                write!(f, "reduced tree must contain at least the root")
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let cases: Vec<(TreeError, &str)> = vec![
            (
                TreeError::UnknownId(ExceptionId::new(7)),
                "unknown exception id e7",
            ),
            (
                TreeError::DuplicateName("boom".into()),
                "duplicate exception name `boom`",
            ),
            (
                TreeError::UnknownName("gone".into()),
                "unknown exception name `gone`",
            ),
            (
                TreeError::EmptyResolutionSet,
                "cannot resolve an empty set of exceptions",
            ),
            (
                TreeError::EmptyReducedTree,
                "reduced tree must contain at least the root",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(TreeError::EmptyResolutionSet);
    }
}
