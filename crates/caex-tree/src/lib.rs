//! Exception values and exception trees for coordinated atomic (CA) actions.
//!
//! This crate is the exception-model substrate of the `caex` workspace, a
//! reproduction of *Exception Handling and Resolution in Distributed
//! Object-Oriented Systems* (Romanovsky, Xu & Randell, 1996). The paper
//! models exceptions as a run-time class hierarchy — an **exception tree**
//! imposing a partial order in which "a higher exception has a handler
//! which is intended to handle any lower level exception" (§2.2). Because
//! Rust has no native exception classes, exceptions here are first-class
//! values ([`Exception`]) whose identities ([`ExceptionId`]) live in an
//! explicit [`ExceptionTree`].
//!
//! The central operation is [`ExceptionTree::resolve`]: given the set of
//! exceptions raised concurrently by the participants of a CA action, it
//! returns the *least* exception in the tree that covers all of them —
//! the exception whose handler is then started in every participant.
//!
//! # Quick example
//!
//! The paper's §3.2 aircraft-engine hierarchy:
//!
//! ```
//! use caex_tree::{TreeBuilder, ExceptionTree};
//!
//! # fn main() -> Result<(), caex_tree::TreeError> {
//! let mut b = TreeBuilder::new("universal_exception");
//! let emergency = b.child_of_root("emergency_engine_loss_exception")?;
//! let left = b.child("left_engine_exception", emergency)?;
//! let right = b.child("right_engine_exception", emergency)?;
//! let tree = b.build()?;
//!
//! // Both engines fail concurrently: the resolved exception is the
//! // least ancestor covering both raised exceptions.
//! assert_eq!(tree.resolve([left, right])?, emergency);
//! # Ok(())
//! # }
//! ```


pub mod parse;

mod edit;
mod error;
mod exception;
mod generate;
mod id;
mod reduced;
mod resolve;
mod tree;

pub use edit::TreeEdit;
pub use error::TreeError;
pub use exception::{Exception, ExceptionBuilder, Severity};
pub use generate::{aircraft_tree, balanced_tree, chain_tree, interleaved_reduced_trees};
pub use id::ExceptionId;
pub use parse::ParseError;
pub use reduced::ReducedTree;
pub use resolve::Resolution;
pub use tree::{ExceptionTree, TreeBuilder, TreeStats};
