//! Identity of an exception class within a tree.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an exception class inside one [`ExceptionTree`].
///
/// Ids are dense indices assigned by [`TreeBuilder`] in insertion order;
/// the root is always id `0`. An id is only meaningful relative to the
/// tree that produced it — mixing ids across trees is caught by the
/// tree's bounds checks and reported as [`TreeError::UnknownId`].
///
/// [`ExceptionTree`]: crate::ExceptionTree
/// [`TreeBuilder`]: crate::TreeBuilder
/// [`TreeError::UnknownId`]: crate::TreeError::UnknownId
///
/// # Examples
///
/// ```
/// use caex_tree::ExceptionId;
///
/// let id = ExceptionId::new(3);
/// assert_eq!(id.index(), 3);
/// assert!(!id.is_root());
/// assert!(ExceptionId::ROOT.is_root());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExceptionId(u32);

impl ExceptionId {
    /// The id of every tree's root exception ("universal exception").
    pub const ROOT: ExceptionId = ExceptionId(0);

    /// Creates an id from a raw dense index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        ExceptionId(index)
    }

    /// Returns the dense index of this id.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the root ("universal") exception id.
    #[must_use]
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ExceptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for ExceptionId {
    fn from(index: u32) -> Self {
        ExceptionId::new(index)
    }
}

impl From<ExceptionId> for u32 {
    fn from(id: ExceptionId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_zero() {
        assert_eq!(ExceptionId::ROOT.index(), 0);
        assert!(ExceptionId::ROOT.is_root());
    }

    #[test]
    fn new_round_trips_index() {
        for i in [0, 1, 7, u32::MAX] {
            assert_eq!(ExceptionId::new(i).index(), i);
        }
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(ExceptionId::new(4).to_string(), "e4");
    }

    #[test]
    fn conversions_round_trip() {
        let id: ExceptionId = 9u32.into();
        let back: u32 = id.into();
        assert_eq!(back, 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ExceptionId::new(1) < ExceptionId::new(2));
        assert_eq!(ExceptionId::new(3), ExceptionId::new(3));
    }
}
