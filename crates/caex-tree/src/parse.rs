//! A compact text format for declaring exception trees.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! tree  :=  name [ '(' tree (',' tree)* ')' ]
//! name  :=  [A-Za-z0-9_.-]+
//! ```
//!
//! So the paper's §3.2 hierarchy is simply:
//!
//! ```text
//! universal_exception(emergency_engine_loss_exception(
//!     left_engine_exception, right_engine_exception))
//! ```

use crate::{ExceptionTree, TreeBuilder, TreeError};
use std::error::Error;
use std::fmt;

/// Errors produced by [`ExceptionTree::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// Unexpected character at the given byte offset.
    Unexpected {
        /// Byte offset into the spec.
        at: usize,
        /// The offending character, or `None` at end of input.
        found: Option<char>,
    },
    /// Input ended before the tree was complete.
    UnexpectedEnd,
    /// Input continued after a complete tree.
    TrailingInput {
        /// Byte offset where the trailing input starts.
        at: usize,
    },
    /// A structural error from the underlying builder (e.g. duplicate
    /// names).
    Tree(TreeError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Unexpected { at, found: Some(c) } => {
                write!(f, "unexpected character `{c}` at offset {at}")
            }
            ParseError::Unexpected { at, found: None } => {
                write!(f, "unexpected end of input at offset {at}")
            }
            ParseError::UnexpectedEnd => write!(f, "input ended before the tree was complete"),
            ParseError::TrailingInput { at } => {
                write!(f, "trailing input after the tree at offset {at}")
            }
            ParseError::Tree(e) => write!(f, "invalid tree: {e}"),
        }
    }
}

impl Error for ParseError {}

impl From<TreeError> for ParseError {
    fn from(e: TreeError) -> Self {
        ParseError::Tree(e)
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(char::is_whitespace) {
            self.pos += self.src[self.pos..]
                .chars()
                .next()
                .expect("starts_with matched")
                .len_utf8();
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn name(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = &self.src[start..];
        let len = rest
            .char_indices()
            .find(|&(_, c)| !(c.is_alphanumeric() || "_-.".contains(c)))
            .map_or(rest.len(), |(i, _)| i);
        if len == 0 {
            return Err(ParseError::Unexpected {
                at: start,
                found: rest.chars().next(),
            });
        }
        self.pos = start + len;
        Ok(&self.src[start..start + len])
    }

    fn children(
        &mut self,
        builder: &mut TreeBuilder,
        parent: crate::ExceptionId,
    ) -> Result<(), ParseError> {
        if self.peek() != Some('(') {
            return Ok(());
        }
        self.pos += 1;
        loop {
            let name = self.name()?;
            let id = builder.child(name, parent)?;
            self.children(builder, id)?;
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(')') => {
                    self.pos += 1;
                    return Ok(());
                }
                found => {
                    return Err(found.map_or(ParseError::UnexpectedEnd, |c| {
                        ParseError::Unexpected {
                            at: self.pos,
                            found: Some(c),
                        }
                    }))
                }
            }
        }
    }
}

impl ExceptionTree {
    /// Serialises the tree back into the compact spec format parsed by
    /// [`parse`](Self::parse); `parse(tree.to_spec())` reproduces the
    /// tree exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_tree::ExceptionTree;
    ///
    /// let spec = "sys(net(timeout,refused),disk)";
    /// let tree = ExceptionTree::parse(spec).unwrap();
    /// assert_eq!(tree.to_spec(), spec);
    /// ```
    #[must_use]
    pub fn to_spec(&self) -> String {
        fn rec(tree: &ExceptionTree, node: crate::ExceptionId, out: &mut String) {
            out.push_str(tree.name(node).expect("node from this tree"));
            let children: Vec<_> = tree.children(node).expect("node from this tree").collect();
            if children.is_empty() {
                return;
            }
            out.push('(');
            for (i, child) in children.into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                rec(tree, child, out);
            }
            out.push(')');
        }
        let mut out = String::new();
        rec(self, crate::ExceptionId::ROOT, &mut out);
        out
    }

    /// Parses a tree from the compact spec format (see the
    /// [`parse` module](crate::parse) docs for the grammar).
    ///
    /// # Errors
    ///
    /// Any [`ParseError`] variant, including structural errors such as
    /// duplicate names.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_tree::ExceptionTree;
    ///
    /// let tree = ExceptionTree::parse(
    ///     "universal(engine_loss(left, right), io_error)",
    /// ).unwrap();
    /// assert_eq!(tree.len(), 5);
    /// let left = tree.id_of("left").unwrap();
    /// let right = tree.id_of("right").unwrap();
    /// let loss = tree.id_of("engine_loss").unwrap();
    /// assert_eq!(tree.resolve([left, right]).unwrap(), loss);
    /// ```
    pub fn parse(spec: &str) -> Result<ExceptionTree, ParseError> {
        let mut parser = Parser { src: spec, pos: 0 };
        let root = parser.name()?;
        let mut builder = TreeBuilder::new(root);
        parser.children(&mut builder, crate::ExceptionId::ROOT)?;
        parser.skip_ws();
        if parser.pos != spec.len() {
            return Err(ParseError::TrailingInput { at: parser.pos });
        }
        Ok(builder.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_only() {
        let tree = ExceptionTree::parse("root").unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.name(tree.root()).unwrap(), "root");
    }

    #[test]
    fn paper_hierarchy_round_trips() {
        let tree = ExceptionTree::parse(
            "universal_exception(emergency_engine_loss_exception(\
             left_engine_exception, right_engine_exception))",
        )
        .unwrap();
        let reference = crate::aircraft_tree();
        assert_eq!(tree.len(), reference.len());
        for id in tree.iter() {
            assert_eq!(tree.name(id).unwrap(), reference.name(id).unwrap());
            assert_eq!(tree.parent(id).unwrap(), reference.parent(id).unwrap());
        }
    }

    #[test]
    fn whitespace_is_free() {
        let a = ExceptionTree::parse("r(a(b,c),d)").unwrap();
        let b = ExceptionTree::parse("  r ( a ( b , c ) , d )  ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn deep_nesting_parses() {
        let tree = ExceptionTree::parse("a(b(c(d(e(f)))))").unwrap();
        assert_eq!(tree.height(), 5);
        let f = tree.id_of("f").unwrap();
        assert_eq!(tree.depth(f).unwrap(), 5);
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(
            ExceptionTree::parse(""),
            Err(ParseError::Unexpected { at: 0, found: None })
        ));
        assert!(matches!(
            ExceptionTree::parse("r(a"),
            Err(ParseError::UnexpectedEnd)
        ));
        assert!(matches!(
            ExceptionTree::parse("r(a))"),
            Err(ParseError::TrailingInput { .. })
        ));
        assert!(matches!(
            ExceptionTree::parse("r(a,,b)"),
            Err(ParseError::Unexpected { .. })
        ));
        assert!(matches!(
            ExceptionTree::parse("r(a,a)"),
            Err(ParseError::Tree(TreeError::DuplicateName(_)))
        ));
    }

    #[test]
    fn parse_then_dot_round_trip_names() {
        let tree = ExceptionTree::parse("sys(net(timeout,refused),disk)").unwrap();
        let dot = tree.to_dot();
        for name in ["sys", "net", "timeout", "refused", "disk"] {
            assert!(dot.contains(name));
        }
    }
}
