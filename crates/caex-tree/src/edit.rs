//! Minimal structural edits that repair resolution weaknesses.
//!
//! The static analyser reports *non-covering pairs* — raisable classes
//! whose concurrent resolution degenerates to the universal root
//! exception (see [`ExceptionTree::non_covering_pairs`]). The repair is
//! always the same shape: give the offending subtrees a common ancestor
//! below the root. [`TreeEdit`] describes that repair as data so a
//! fix-it engine can render it, cost it, and apply it.

use crate::{ExceptionId, ExceptionTree, TreeError};
use std::fmt;

/// One structural edit to an exception tree: insert a fresh class
/// between the root and a set of existing root-level subtrees.
///
/// Applying the edit is guaranteed to remove every non-covering pair
/// among the raisables it was computed from: after the edit, any two of
/// them meet at (or below) the inserted class instead of at the root.
///
/// # Examples
///
/// ```
/// use caex_tree::{TreeBuilder, TreeEdit};
///
/// # fn main() -> Result<(), caex_tree::TreeError> {
/// let mut b = TreeBuilder::new("universal");
/// let e1 = b.child_of_root("e1")?;
/// let e2 = b.child_of_root("e2")?;
/// let tree = b.build()?;
/// assert_eq!(tree.non_covering_pairs(&[e1, e2]).len(), 1);
///
/// let edit = TreeEdit::group_non_covering(&tree, &[e1, e2]).unwrap();
/// let fixed = edit.apply(&tree)?;
/// assert!(fixed.non_covering_pairs(&[e1, e2]).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeEdit {
    /// Name of the class to insert (fresh in the target tree).
    pub name: String,
    /// Direct children of the root to reparent under the new class.
    pub grouped: Vec<ExceptionId>,
}

impl TreeEdit {
    /// Computes the minimal insert-parent edit that removes every
    /// non-covering pair among `raisables`, or `None` when the tree is
    /// already free of them (or the raisables share fewer than two
    /// root-level subtrees).
    ///
    /// The edit groups the root-child ancestor of each non-root
    /// raisable under one fresh class, so the LCA of any two raisables
    /// drops from the root to the inserted class: a single insertion,
    /// which is as small as a covering repair can be.
    #[must_use]
    pub fn group_non_covering(tree: &ExceptionTree, raisables: &[ExceptionId]) -> Option<TreeEdit> {
        if tree.non_covering_pairs(raisables).is_empty() {
            return None;
        }
        let mut grouped: Vec<ExceptionId> = Vec::new();
        for &id in raisables {
            let Ok(path) = tree.path_to_root(id) else {
                continue;
            };
            // path = [id, .., root_child, root]; the root-child ancestor
            // is the second-to-last entry (id itself may be the root).
            if path.len() < 2 {
                continue;
            }
            let root_child = path[path.len() - 2];
            if !grouped.contains(&root_child) {
                grouped.push(root_child);
            }
        }
        if grouped.len() < 2 {
            return None;
        }
        let mut name = String::from("resolution_group");
        let mut suffix = 2;
        while tree.id_of(&name).is_ok() {
            name = format!("resolution_group_{suffix}");
            suffix += 1;
        }
        Some(TreeEdit { name, grouped })
    }

    /// Number of elementary operations the edit performs: one class
    /// insertion plus one reparenting per grouped subtree. This is the
    /// edit distance between the original tree and the repaired one
    /// under insert/reparent operations.
    #[must_use]
    pub fn cost(&self) -> usize {
        1 + self.grouped.len()
    }

    /// Applies the edit, returning the repaired tree. Existing ids keep
    /// their meaning; the inserted class takes the next free id.
    ///
    /// # Errors
    ///
    /// Propagates [`ExceptionTree::with_inserted_parent`] errors: a
    /// duplicate name or a grouped id that is not a direct child of the
    /// root in `tree`.
    pub fn apply(&self, tree: &ExceptionTree) -> Result<ExceptionTree, TreeError> {
        tree.with_inserted_parent(self.name.clone(), &self.grouped)
    }
}

impl fmt::Display for TreeEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insert class \"{}\" under the root and reparent [",
            self.name
        )?;
        for (i, id) in self.grouped.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "] beneath it ({} operations)", self.cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    /// root → {a → a1, b → b1, c}; raisables a1 and b1 meet only at
    /// the root.
    fn flat() -> (ExceptionTree, ExceptionId, ExceptionId, ExceptionId) {
        let mut b = TreeBuilder::new("root");
        let a = b.child_of_root("a").unwrap();
        let bb = b.child_of_root("b").unwrap();
        let c = b.child_of_root("c").unwrap();
        let a1 = b.child("a1", a).unwrap();
        let b1 = b.child("b1", bb).unwrap();
        (b.build().unwrap(), a1, b1, c)
    }

    #[test]
    fn grouping_removes_all_pairs_and_preserves_ids() {
        let (tree, a1, b1, c) = flat();
        assert!(!tree.non_covering_pairs(&[a1, b1, c]).is_empty());
        let edit = TreeEdit::group_non_covering(&tree, &[a1, b1, c]).unwrap();
        let fixed = edit.apply(&tree).unwrap();
        assert!(fixed.non_covering_pairs(&[a1, b1, c]).is_empty());
        // Old ids keep their names; the new class is appended.
        assert_eq!(fixed.name(a1).unwrap(), "a1");
        assert_eq!(fixed.len(), tree.len() + 1);
        // Resolution of the repaired pair is now informative.
        assert!(!fixed.resolve([a1, b1]).unwrap().is_root());
    }

    #[test]
    fn covered_raisables_need_no_edit() {
        let mut b = TreeBuilder::new("root");
        let g = b.child_of_root("g").unwrap();
        let x = b.child("x", g).unwrap();
        let y = b.child("y", g).unwrap();
        let tree = b.build().unwrap();
        assert!(TreeEdit::group_non_covering(&tree, &[x, y]).is_none());
    }

    #[test]
    fn name_collisions_pick_a_fresh_suffix() {
        let mut b = TreeBuilder::new("root");
        b.child_of_root("resolution_group").unwrap();
        let x = b.child_of_root("x").unwrap();
        let y = b.child_of_root("y").unwrap();
        let tree = b.build().unwrap();
        let edit = TreeEdit::group_non_covering(&tree, &[x, y]).unwrap();
        assert_eq!(edit.name, "resolution_group_2");
        assert!(edit.apply(&tree).is_ok());
    }

    #[test]
    fn cost_counts_insert_plus_reparents() {
        let (tree, a1, b1, c) = flat();
        let edit = TreeEdit::group_non_covering(&tree, &[a1, b1, c]).unwrap();
        assert_eq!(edit.cost(), 1 + edit.grouped.len());
        assert!(edit.to_string().contains("resolution_group"));
    }

    #[test]
    fn apply_rejects_non_root_children() {
        let (tree, a1, _b1, _c) = flat();
        let edit = TreeEdit {
            name: "g".into(),
            grouped: vec![a1], // a1 is a grandchild of the root
        };
        assert!(edit.apply(&tree).is_err());
    }

    #[test]
    fn depths_are_recomputed_below_the_insertion() {
        let (tree, a1, b1, _c) = flat();
        let edit = TreeEdit::group_non_covering(&tree, &[a1, b1]).unwrap();
        let fixed = edit.apply(&tree).unwrap();
        let new = fixed.id_of(&edit.name).unwrap();
        assert_eq!(fixed.depth(new).unwrap(), 1);
        assert_eq!(fixed.depth(a1).unwrap(), tree.depth(a1).unwrap() + 1);
        assert_eq!(fixed.lca(a1, b1).unwrap(), new);
    }
}
