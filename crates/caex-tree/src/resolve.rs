//! Resolution of a set of concurrently raised exceptions.

use crate::{Exception, ExceptionId, ExceptionTree, TreeError};
use serde::{Deserialize, Serialize};

/// The outcome of resolving a set of concurrently raised exceptions.
///
/// Produced by [`ExceptionTree::resolve_detailed`]; the plain
/// [`ExceptionTree::resolve`] returns only the resolved id.
///
/// # Examples
///
/// ```
/// use caex_tree::{chain_tree, ExceptionId};
///
/// # fn main() -> Result<(), caex_tree::TreeError> {
/// let tree = chain_tree(4); // root -> e1 -> e2 -> e3 -> e4
/// let res = tree.resolve_detailed([ExceptionId::new(2), ExceptionId::new(4)])?;
/// assert_eq!(res.resolved(), ExceptionId::new(2));
/// assert_eq!(res.raised().len(), 2);
/// assert!(!res.was_trivial());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resolution {
    resolved: ExceptionId,
    raised: Vec<ExceptionId>,
}

impl Resolution {
    /// The least exception in the tree covering all raised exceptions.
    #[must_use]
    pub fn resolved(&self) -> ExceptionId {
        self.resolved
    }

    /// The distinct raised exceptions that were resolved, in input order.
    #[must_use]
    pub fn raised(&self) -> &[ExceptionId] {
        &self.raised
    }

    /// `true` when only one distinct exception was raised, so resolution
    /// simply returned it unchanged.
    #[must_use]
    pub fn was_trivial(&self) -> bool {
        self.raised.len() == 1 && self.raised[0] == self.resolved
    }

    /// `true` when resolution had to escalate all the way to the root
    /// ("universal") exception.
    #[must_use]
    pub fn escalated_to_root(&self) -> bool {
        self.resolved.is_root()
    }
}

impl ExceptionTree {
    /// Resolves a set of concurrently raised exceptions to the *least*
    /// exception in the tree whose handler covers all of them — the
    /// lowest common ancestor of the raised set (§3.2 of the paper).
    ///
    /// Duplicates in the input are ignored. Accepts anything iterable
    /// over [`ExceptionId`] so both id lists and extracted message sets
    /// work directly.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::EmptyResolutionSet`] for an empty input and
    /// [`TreeError::UnknownId`] if any raised id is not in this tree.
    pub fn resolve<I>(&self, raised: I) -> Result<ExceptionId, TreeError>
    where
        I: IntoIterator<Item = ExceptionId>,
    {
        let mut iter = raised.into_iter();
        let first = iter.next().ok_or(TreeError::EmptyResolutionSet)?;
        if !self.contains(first) {
            return Err(TreeError::UnknownId(first));
        }
        let mut acc = first;
        for id in iter {
            acc = self.lca(acc, id)?;
        }
        Ok(acc)
    }

    /// Like [`resolve`](Self::resolve) but also reports which distinct
    /// exceptions entered the resolution.
    ///
    /// # Errors
    ///
    /// Same as [`resolve`](Self::resolve).
    pub fn resolve_detailed<I>(&self, raised: I) -> Result<Resolution, TreeError>
    where
        I: IntoIterator<Item = ExceptionId>,
    {
        let mut distinct: Vec<ExceptionId> = Vec::new();
        for id in raised {
            if !self.contains(id) {
                return Err(TreeError::UnknownId(id));
            }
            if !distinct.contains(&id) {
                distinct.push(id);
            }
        }
        let resolved = self.resolve(distinct.iter().copied())?;
        Ok(Resolution {
            resolved,
            raised: distinct,
        })
    }

    /// Resolves a set of exception *occurrences*, convenience for
    /// resolution over collected [`Exception`] values.
    ///
    /// # Errors
    ///
    /// Same as [`resolve`](Self::resolve).
    pub fn resolve_occurrences<'a, I>(&self, raised: I) -> Result<ExceptionId, TreeError>
    where
        I: IntoIterator<Item = &'a Exception>,
    {
        self.resolve(raised.into_iter().map(Exception::id))
    }

    /// The alternative policy the paper argues *against* (§2.2):
    /// priority-based selection picks the raised exception with the
    /// highest `priority` (ties broken by lower id) — it selects *one
    /// of* the raised exceptions rather than an exception that covers
    /// them all, so the winner's handler generally cannot handle the
    /// losers ("several errors … could be the symptoms of a different,
    /// more serious fault"). Provided for ablation experiments.
    ///
    /// # Errors
    ///
    /// [`TreeError::EmptyResolutionSet`] for an empty input,
    /// [`TreeError::UnknownId`] for foreign ids.
    pub fn resolve_by_priority<I, P>(
        &self,
        raised: I,
        priority: P,
    ) -> Result<ExceptionId, TreeError>
    where
        I: IntoIterator<Item = ExceptionId>,
        P: Fn(ExceptionId) -> u32,
    {
        let mut best: Option<(u32, ExceptionId)> = None;
        for id in raised {
            if !self.contains(id) {
                return Err(TreeError::UnknownId(id));
            }
            let p = priority(id);
            best = match best {
                None => Some((p, id)),
                Some((bp, bid)) if p > bp || (p == bp && id < bid) => Some((p, id)),
                keep => keep,
            };
        }
        best.map(|(_, id)| id).ok_or(TreeError::EmptyResolutionSet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn engines() -> (ExceptionTree, ExceptionId, ExceptionId, ExceptionId) {
        let mut b = TreeBuilder::new("universal_exception");
        let emergency = b.child_of_root("emergency_engine_loss_exception").unwrap();
        let left = b.child("left_engine_exception", emergency).unwrap();
        let right = b.child("right_engine_exception", emergency).unwrap();
        (b.build().unwrap(), emergency, left, right)
    }

    #[test]
    fn single_exception_resolves_to_itself() {
        let (tree, _e, left, _r) = engines();
        assert_eq!(tree.resolve([left]).unwrap(), left);
    }

    #[test]
    fn siblings_resolve_to_parent() {
        let (tree, emergency, left, right) = engines();
        assert_eq!(tree.resolve([left, right]).unwrap(), emergency);
    }

    #[test]
    fn ancestor_and_descendant_resolve_to_ancestor() {
        let (tree, emergency, left, _r) = engines();
        assert_eq!(tree.resolve([left, emergency]).unwrap(), emergency);
    }

    #[test]
    fn unrelated_resolve_to_root() {
        let mut b = TreeBuilder::new("root");
        let a = b.child_of_root("a").unwrap();
        let z = b.child_of_root("z").unwrap();
        let tree = b.build().unwrap();
        let res = tree.resolve_detailed([a, z]).unwrap();
        assert!(res.escalated_to_root());
    }

    #[test]
    fn empty_set_is_an_error() {
        let (tree, ..) = engines();
        assert_eq!(
            tree.resolve(std::iter::empty()),
            Err(TreeError::EmptyResolutionSet)
        );
    }

    #[test]
    fn unknown_id_is_an_error() {
        let (tree, ..) = engines();
        assert!(matches!(
            tree.resolve([ExceptionId::new(77)]),
            Err(TreeError::UnknownId(_))
        ));
    }

    #[test]
    fn duplicates_are_ignored_in_detailed_resolution() {
        let (tree, _e, left, _r) = engines();
        let res = tree.resolve_detailed([left, left, left]).unwrap();
        assert!(res.was_trivial());
        assert_eq!(res.raised(), &[left]);
    }

    #[test]
    fn occurrences_resolve_via_their_ids() {
        let (tree, emergency, left, right) = engines();
        let occs = vec![Exception::new(left), Exception::new(right)];
        assert_eq!(tree.resolve_occurrences(&occs).unwrap(), emergency);
    }

    #[test]
    fn resolution_is_order_independent() {
        let (tree, _e, left, right) = engines();
        let ab = tree.resolve([left, right]).unwrap();
        let ba = tree.resolve([right, left]).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn priority_policy_violates_coverage_where_tree_does_not() {
        // §2.2's argument, executed: two sibling engine failures. The
        // priority policy picks one of them, whose handler cannot cover
        // the other; the tree policy escalates to the emergency class.
        let (tree, emergency, left, right) = engines();
        let by_priority = tree
            .resolve_by_priority([left, right], |id| id.index())
            .unwrap();
        assert_eq!(by_priority, right, "priority picks a raised exception");
        assert!(
            !tree.is_ancestor(by_priority, left).unwrap(),
            "the priority winner does not cover the other failure"
        );
        let by_tree = tree.resolve([left, right]).unwrap();
        assert_eq!(by_tree, emergency);
        assert!(tree.is_ancestor(by_tree, left).unwrap());
        assert!(tree.is_ancestor(by_tree, right).unwrap());
    }

    #[test]
    fn priority_ties_break_toward_lower_id() {
        let (tree, _e, left, right) = engines();
        let picked = tree.resolve_by_priority([right, left], |_| 7).unwrap();
        assert_eq!(picked, left.min(right));
    }

    #[test]
    fn priority_rejects_empty_and_foreign() {
        let (tree, ..) = engines();
        assert_eq!(
            tree.resolve_by_priority(std::iter::empty(), |_| 0),
            Err(TreeError::EmptyResolutionSet)
        );
        assert!(matches!(
            tree.resolve_by_priority([ExceptionId::new(50)], |_| 0),
            Err(TreeError::UnknownId(_))
        ));
    }

    #[test]
    fn resolved_covers_every_raised() {
        let (tree, _e, left, right) = engines();
        let res = tree.resolve_detailed([left, right]).unwrap();
        for &r in res.raised() {
            assert!(tree.is_ancestor(res.resolved(), r).unwrap());
        }
    }
}
