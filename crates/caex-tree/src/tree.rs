//! The exception tree: a rooted hierarchy imposing the resolution order.

use crate::{ExceptionId, TreeError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A rooted exception hierarchy declared with a CA action.
///
/// The tree encodes the paper's partial order on exceptions: an exception
/// `a` is *higher* than `b` when `a` is an ancestor of `b`, meaning the
/// handler for `a` is able to handle `b` as well (§2.2). Every tree has a
/// single root — the "universal exception" whose handler covers anything.
///
/// Trees are immutable once built (the paper requires the resolution tree
/// to be statically declared, §4.1); construct them with [`TreeBuilder`].
///
/// # Examples
///
/// ```
/// use caex_tree::TreeBuilder;
///
/// # fn main() -> Result<(), caex_tree::TreeError> {
/// let mut b = TreeBuilder::new("universal");
/// let io = b.child_of_root("io_error")?;
/// let timeout = b.child("timeout", io)?;
/// let tree = b.build()?;
///
/// assert!(tree.is_ancestor(io, timeout)?);
/// assert_eq!(tree.depth(timeout)?, 2);
/// assert_eq!(tree.name(io)?, "io_error");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionTree {
    /// `parent[i]` is the parent of node `i`; the root stores itself.
    parent: Vec<u32>,
    /// `depth[i]` is the distance from the root (root = 0).
    depth: Vec<u32>,
    names: Vec<String>,
    children: Vec<Vec<u32>>,
    by_name: HashMap<String, u32>,
}

impl ExceptionTree {
    /// Returns the number of exception classes in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the tree contains only the root.
    ///
    /// A tree is never fully empty — construction guarantees a root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Returns the root ("universal") exception id.
    #[must_use]
    pub fn root(&self) -> ExceptionId {
        ExceptionId::ROOT
    }

    /// Returns `true` if `id` names a class of this tree.
    #[must_use]
    pub fn contains(&self, id: ExceptionId) -> bool {
        (id.index() as usize) < self.len()
    }

    fn check(&self, id: ExceptionId) -> Result<usize, TreeError> {
        let idx = id.index() as usize;
        if idx < self.len() {
            Ok(idx)
        } else {
            Err(TreeError::UnknownId(id))
        }
    }

    /// Returns the declared name of an exception class.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn name(&self, id: ExceptionId) -> Result<&str, TreeError> {
        Ok(&self.names[self.check(id)?])
    }

    /// Looks an exception class up by its declared name.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownName`] if no class has that name.
    pub fn id_of(&self, name: &str) -> Result<ExceptionId, TreeError> {
        self.by_name
            .get(name)
            .map(|&i| ExceptionId::new(i))
            .ok_or_else(|| TreeError::UnknownName(name.to_owned()))
    }

    /// Returns the parent of `id`, or `None` for the root.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn parent(&self, id: ExceptionId) -> Result<Option<ExceptionId>, TreeError> {
        let idx = self.check(id)?;
        if idx == 0 {
            Ok(None)
        } else {
            Ok(Some(ExceptionId::new(self.parent[idx])))
        }
    }

    /// Returns the children of `id` in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn children(
        &self,
        id: ExceptionId,
    ) -> Result<impl Iterator<Item = ExceptionId> + '_, TreeError> {
        let idx = self.check(id)?;
        Ok(self.children[idx].iter().map(|&c| ExceptionId::new(c)))
    }

    /// Returns the distance of `id` from the root (root has depth 0).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn depth(&self, id: ExceptionId) -> Result<u32, TreeError> {
        Ok(self.depth[self.check(id)?])
    }

    /// Returns `true` if `ancestor` covers `descendant` — i.e. the handler
    /// for `ancestor` is able to handle `descendant`. Every class is its
    /// own ancestor.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if either id is not in this tree.
    pub fn is_ancestor(
        &self,
        ancestor: ExceptionId,
        descendant: ExceptionId,
    ) -> Result<bool, TreeError> {
        let a = self.check(ancestor)? as u32;
        let mut d = self.check(descendant)? as u32;
        loop {
            if d == a {
                return Ok(true);
            }
            if d == 0 {
                return Ok(false);
            }
            d = self.parent[d as usize];
        }
    }

    /// Returns the lowest common ancestor of two classes.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if either id is not in this tree.
    pub fn lca(&self, a: ExceptionId, b: ExceptionId) -> Result<ExceptionId, TreeError> {
        let mut x = self.check(a)? as u32;
        let mut y = self.check(b)? as u32;
        while self.depth[x as usize] > self.depth[y as usize] {
            x = self.parent[x as usize];
        }
        while self.depth[y as usize] > self.depth[x as usize] {
            y = self.parent[y as usize];
        }
        while x != y {
            x = self.parent[x as usize];
            y = self.parent[y as usize];
        }
        Ok(ExceptionId::new(x))
    }

    /// Returns the path from `id` up to and including the root.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn path_to_root(&self, id: ExceptionId) -> Result<Vec<ExceptionId>, TreeError> {
        let mut idx = self.check(id)? as u32;
        let mut path = Vec::with_capacity(self.depth[idx as usize] as usize + 1);
        loop {
            path.push(ExceptionId::new(idx));
            if idx == 0 {
                return Ok(path);
            }
            idx = self.parent[idx as usize];
        }
    }

    /// Iterates over all exception ids in the tree, root first.
    pub fn iter(&self) -> impl Iterator<Item = ExceptionId> + '_ {
        (0..self.len() as u32).map(ExceptionId::new)
    }

    /// Returns all ids in the subtree rooted at `id` (preorder).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn subtree(&self, id: ExceptionId) -> Result<Vec<ExceptionId>, TreeError> {
        let start = self.check(id)? as u32;
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            out.push(ExceptionId::new(n));
            // Push in reverse so preorder visits children left-to-right.
            for &c in self.children[n as usize].iter().rev() {
                stack.push(c);
            }
        }
        Ok(out)
    }

    /// Returns the ids of all leaf classes (classes with no children).
    #[must_use]
    pub fn leaves(&self) -> Vec<ExceptionId> {
        self.children
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_empty())
            .map(|(i, _)| ExceptionId::new(i as u32))
            .collect()
    }

    /// Returns the maximum depth of any class in the tree.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// `true` if `id` has no children.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn is_leaf(&self, id: ExceptionId) -> Result<bool, TreeError> {
        Ok(self.children[self.check(id)?].is_empty())
    }

    /// The other children of `id`'s parent (empty for the root).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `id` is not in this tree.
    pub fn siblings(&self, id: ExceptionId) -> Result<Vec<ExceptionId>, TreeError> {
        match self.parent(id)? {
            None => Ok(Vec::new()),
            Some(p) => Ok(self
                .children(p)
                .expect("parent is valid")
                .filter(|&c| c != id)
                .collect()),
        }
    }

    /// Summary statistics of the tree's shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_tree::balanced_tree;
    ///
    /// let stats = balanced_tree(2, 3).stats();
    /// assert_eq!(stats.classes, 15);
    /// assert_eq!(stats.height, 3);
    /// assert_eq!(stats.leaves, 8);
    /// assert!((stats.mean_branching - 2.0).abs() < f64::EPSILON);
    /// ```
    #[must_use]
    pub fn stats(&self) -> TreeStats {
        let leaves = self.leaves().len();
        let internal = self.len() - leaves;
        let mean_branching = if internal == 0 {
            0.0
        } else {
            (self.len() - 1) as f64 / internal as f64
        };
        TreeStats {
            classes: self.len(),
            height: self.height(),
            leaves,
            mean_branching,
        }
    }

    /// Renders the tree in Graphviz DOT format (edges point from parent
    /// to child), for documentation and debugging.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_tree::aircraft_tree;
    ///
    /// let dot = aircraft_tree().to_dot();
    /// assert!(dot.starts_with("digraph exception_tree {"));
    /// assert!(dot.contains("left_engine_exception"));
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph exception_tree {\n  rankdir=TB;\n");
        for (i, name) in self.names.iter().enumerate() {
            out.push_str(&format!("  n{i} [label=\"{name}\"];\n"));
        }
        for (i, &p) in self.parent.iter().enumerate().skip(1) {
            out.push_str(&format!("  n{p} -> n{i};\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Returns `true` when a handler bound to `handler_class` covers a
    /// raise of `raised`: the handler's class is an ancestor of (or
    /// equal to) the raised class. Alias of [`ExceptionTree::is_ancestor`]
    /// in the vocabulary used by the static analyser.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if either id is not in this tree.
    pub fn covers(&self, handler_class: ExceptionId, raised: ExceptionId) -> Result<bool, TreeError> {
        self.is_ancestor(handler_class, raised)
    }

    /// Returns every unordered pair from `raisables` whose concurrent
    /// resolution degenerates to the universal (root) exception: their
    /// LCA is the root while neither member is the root itself.
    ///
    /// Such pairs predict the §4.2 resolution fallback — if both are
    /// raised concurrently the resolved class carries no information
    /// beyond "something went wrong", which the linter flags.
    ///
    /// Unknown ids are skipped rather than reported; callers that care
    /// should validate membership first with [`ExceptionTree::contains`].
    #[must_use]
    pub fn non_covering_pairs(&self, raisables: &[ExceptionId]) -> Vec<(ExceptionId, ExceptionId)> {
        let root = self.root();
        let known: Vec<ExceptionId> = {
            let mut seen = Vec::new();
            for &id in raisables {
                if self.contains(id) && !seen.contains(&id) {
                    seen.push(id);
                }
            }
            seen
        };
        let mut pairs = Vec::new();
        for (i, &a) in known.iter().enumerate() {
            for &b in &known[i + 1..] {
                if a == root || b == root {
                    continue;
                }
                if self.lca(a, b) == Ok(root) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Returns the set of classes on some root path of a raisable: the
    /// union of [`ExceptionTree::path_to_root`] over `raisables`, sorted
    /// by id. Classes *outside* this closure can never be raised nor
    /// resolved to, which makes them dead weight in a declaration.
    ///
    /// Unknown ids are skipped.
    #[must_use]
    pub fn ancestor_closure(&self, raisables: &[ExceptionId]) -> Vec<ExceptionId> {
        let mut mark = vec![false; self.len()];
        for &id in raisables {
            if let Ok(path) = self.path_to_root(id) {
                for p in path {
                    mark[p.index() as usize] = true;
                }
            }
        }
        mark.iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| ExceptionId::new(i as u32))
            .collect()
    }

    /// Returns `true` when the tree is a single chain (every class has
    /// at most one child). A chain hierarchy makes every concurrent
    /// resolution trivially pick the shallower exception — usually a
    /// sign the tree was not designed for concurrent raises.
    #[must_use]
    pub fn is_chain(&self) -> bool {
        self.iter().all(|id| {
            self.children(id)
                .map(|c| c.count() <= 1)
                .unwrap_or(true)
        })
    }

    /// Returns a copy of this tree with one new class named `name`
    /// inserted between the root and the given `children`, which must
    /// currently be direct children of the root. Existing ids keep
    /// their meaning; the new class takes the next free id.
    ///
    /// This is the minimal structural edit that gives a set of
    /// root-level subtrees a common ancestor below the root — the
    /// repair suggested by the static analyser when concurrent raises
    /// would otherwise resolve to the uninformative universal
    /// exception (see [`ExceptionTree::non_covering_pairs`]).
    ///
    /// # Errors
    ///
    /// - [`TreeError::DuplicateName`] if `name` is already declared;
    /// - [`TreeError::UnknownId`] if a listed child is not in the tree,
    ///   is the root itself, or is not a direct child of the root.
    pub fn with_inserted_parent(
        &self,
        name: impl Into<String>,
        children: &[ExceptionId],
    ) -> Result<ExceptionTree, TreeError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(TreeError::DuplicateName(name));
        }
        for &c in children {
            let idx = self.check(c)?;
            if idx == 0 || self.parent[idx] != 0 {
                return Err(TreeError::UnknownId(c));
            }
        }
        let new = self.len() as u32;
        let mut parent = self.parent.clone();
        parent.push(0);
        for &c in children {
            parent[c.index() as usize] = new;
        }
        // Reparenting breaks the parents-precede-children invariant
        // the builder relies on, so recompute depths breadth-first.
        let n = parent.len();
        let mut child_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, &p) in parent.iter().enumerate().skip(1) {
            child_lists[p as usize].push(i as u32);
        }
        let mut depth = vec![0u32; n];
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(node) = queue.pop_front() {
            for &c in &child_lists[node as usize] {
                depth[c as usize] = depth[node as usize] + 1;
                queue.push_back(c);
            }
        }
        let mut names = self.names.clone();
        names.push(name.clone());
        let mut by_name = self.by_name.clone();
        by_name.insert(name, new);
        Ok(ExceptionTree {
            parent,
            depth,
            names,
            children: child_lists,
            by_name,
        })
    }
}

impl fmt::Display for ExceptionTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            tree: &ExceptionTree,
            node: u32,
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(
                f,
                "{:indent$}{} {}",
                "",
                ExceptionId::new(node),
                tree.names[node as usize],
                indent = indent
            )?;
            for &c in &tree.children[node as usize] {
                rec(tree, c, indent + 2, f)?;
            }
            Ok(())
        }
        rec(self, 0, 0, f)
    }
}

/// Shape summary produced by [`ExceptionTree::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Number of exception classes (including the root).
    pub classes: usize,
    /// Maximum depth.
    pub height: u32,
    /// Number of leaf classes.
    pub leaves: usize,
    /// Average children per internal node.
    pub mean_branching: f64,
}

/// Builder for [`ExceptionTree`].
///
/// Nodes are added top-down: the root is fixed at construction, children
/// are attached to already-declared parents, so the result is acyclic and
/// connected by construction. Names must be unique.
///
/// # Examples
///
/// ```
/// use caex_tree::TreeBuilder;
///
/// # fn main() -> Result<(), caex_tree::TreeError> {
/// let mut b = TreeBuilder::new("universal");
/// let disk = b.child_of_root("disk_error")?;
/// b.child("disk_full", disk)?;
/// let tree = b.build()?;
/// assert_eq!(tree.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    parent: Vec<u32>,
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl TreeBuilder {
    /// Starts a tree whose root class has the given name.
    #[must_use]
    pub fn new(root_name: impl Into<String>) -> Self {
        let root_name = root_name.into();
        let mut by_name = HashMap::new();
        by_name.insert(root_name.clone(), 0);
        TreeBuilder {
            parent: vec![0],
            names: vec![root_name],
            by_name,
        }
    }

    /// Declares a new class as a child of the root.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::DuplicateName`] if `name` is already declared.
    pub fn child_of_root(&mut self, name: impl Into<String>) -> Result<ExceptionId, TreeError> {
        self.child(name, ExceptionId::ROOT)
    }

    /// Declares a new class as a child of `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `parent` has not been declared,
    /// or [`TreeError::DuplicateName`] if `name` is already declared.
    pub fn child(
        &mut self,
        name: impl Into<String>,
        parent: ExceptionId,
    ) -> Result<ExceptionId, TreeError> {
        let name = name.into();
        if (parent.index() as usize) >= self.parent.len() {
            return Err(TreeError::UnknownId(parent));
        }
        if self.by_name.contains_key(&name) {
            return Err(TreeError::DuplicateName(name));
        }
        let id = self.parent.len() as u32;
        self.parent.push(parent.index());
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        Ok(ExceptionId::new(id))
    }

    /// Finishes construction and returns the immutable tree.
    ///
    /// # Errors
    ///
    /// Currently infallible by construction but kept fallible for future
    /// validation extensions; never returns an error today.
    pub fn build(self) -> Result<ExceptionTree, TreeError> {
        let n = self.parent.len();
        let mut depth = vec![0u32; n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 1..n {
            // Parents always precede children, so depths can be filled in
            // a single forward pass.
            depth[i] = depth[self.parent[i] as usize] + 1;
            children[self.parent[i] as usize].push(i as u32);
        }
        Ok(ExceptionTree {
            parent: self.parent,
            depth,
            names: self.names,
            children,
            by_name: self.by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (
        ExceptionTree,
        ExceptionId,
        ExceptionId,
        ExceptionId,
        ExceptionId,
    ) {
        let mut b = TreeBuilder::new("root");
        let a = b.child_of_root("a").unwrap();
        let b1 = b.child("b1", a).unwrap();
        let b2 = b.child("b2", a).unwrap();
        let c = b.child("c", b1).unwrap();
        (b.build().unwrap(), a, b1, b2, c)
    }

    #[test]
    fn root_only_tree_is_empty() {
        let tree = TreeBuilder::new("root").build().unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn depths_follow_structure() {
        let (tree, a, b1, _b2, c) = sample();
        assert_eq!(tree.depth(tree.root()).unwrap(), 0);
        assert_eq!(tree.depth(a).unwrap(), 1);
        assert_eq!(tree.depth(b1).unwrap(), 2);
        assert_eq!(tree.depth(c).unwrap(), 3);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn ancestor_relation() {
        let (tree, a, b1, b2, c) = sample();
        assert!(tree.is_ancestor(a, c).unwrap());
        assert!(tree.is_ancestor(tree.root(), c).unwrap());
        assert!(tree.is_ancestor(c, c).unwrap());
        assert!(!tree.is_ancestor(c, a).unwrap());
        assert!(!tree.is_ancestor(b2, b1).unwrap());
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let (tree, a, b1, b2, c) = sample();
        assert_eq!(tree.lca(b1, b2).unwrap(), a);
        assert_eq!(tree.lca(c, b2).unwrap(), a);
        assert_eq!(tree.lca(c, b1).unwrap(), b1);
        assert_eq!(tree.lca(c, c).unwrap(), c);
    }

    #[test]
    fn path_to_root_ends_at_root() {
        let (tree, a, b1, _b2, c) = sample();
        let path = tree.path_to_root(c).unwrap();
        assert_eq!(path, vec![c, b1, a, tree.root()]);
    }

    #[test]
    fn subtree_is_preorder() {
        let (tree, a, b1, b2, c) = sample();
        assert_eq!(tree.subtree(a).unwrap(), vec![a, b1, c, b2]);
    }

    #[test]
    fn leaves_have_no_children() {
        let (tree, _a, _b1, b2, c) = sample();
        let leaves = tree.leaves();
        assert_eq!(leaves, vec![b2, c]);
    }

    #[test]
    fn name_lookup_round_trips() {
        let (tree, a, ..) = sample();
        assert_eq!(tree.id_of("a").unwrap(), a);
        assert_eq!(tree.name(a).unwrap(), "a");
        assert!(matches!(tree.id_of("nope"), Err(TreeError::UnknownName(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = TreeBuilder::new("root");
        b.child_of_root("x").unwrap();
        assert!(matches!(
            b.child_of_root("x"),
            Err(TreeError::DuplicateName(_))
        ));
        // The root name is also reserved.
        assert!(matches!(
            b.child_of_root("root"),
            Err(TreeError::DuplicateName(_))
        ));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = TreeBuilder::new("root");
        assert!(matches!(
            b.child("x", ExceptionId::new(9)),
            Err(TreeError::UnknownId(_))
        ));
    }

    #[test]
    fn unknown_id_queries_error() {
        let (tree, ..) = sample();
        let bogus = ExceptionId::new(99);
        assert!(tree.name(bogus).is_err());
        assert!(tree.parent(bogus).is_err());
        assert!(tree.depth(bogus).is_err());
        assert!(tree.is_ancestor(bogus, tree.root()).is_err());
        assert!(tree.lca(bogus, tree.root()).is_err());
        assert!(tree.path_to_root(bogus).is_err());
        assert!(tree.subtree(bogus).is_err());
        assert!(!tree.contains(bogus));
    }

    #[test]
    fn display_renders_every_node() {
        let (tree, ..) = sample();
        let shown = tree.to_string();
        for id in tree.iter() {
            assert!(shown.contains(tree.name(id).unwrap()));
        }
    }

    #[test]
    fn leaf_and_sibling_queries() {
        let (tree, a, b1, b2, c) = sample();
        assert!(!tree.is_leaf(a).unwrap());
        assert!(tree.is_leaf(c).unwrap());
        assert!(tree.is_leaf(b2).unwrap());
        assert_eq!(tree.siblings(b1).unwrap(), vec![b2]);
        assert_eq!(tree.siblings(b2).unwrap(), vec![b1]);
        assert!(tree.siblings(tree.root()).unwrap().is_empty());
        assert!(tree.siblings(a).unwrap().is_empty());
        assert!(tree.is_leaf(ExceptionId::new(99)).is_err());
    }

    #[test]
    fn stats_of_chain_and_root() {
        let (tree, ..) = sample();
        let stats = tree.stats();
        assert_eq!(stats.classes, 5);
        assert_eq!(stats.height, 3);
        assert_eq!(stats.leaves, 2);
        let root_only = TreeBuilder::new("r").build().unwrap();
        let stats = root_only.stats();
        assert_eq!(stats.classes, 1);
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.mean_branching, 0.0);
    }

    #[test]
    fn dot_export_names_every_node_and_edge() {
        let (tree, ..) = sample();
        let dot = tree.to_dot();
        for id in tree.iter() {
            assert!(dot.contains(tree.name(id).unwrap()));
        }
        // Edges = nodes − 1 in a tree.
        assert_eq!(dot.matches("->").count(), tree.len() - 1);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn children_iterator_matches_structure() {
        let (tree, a, b1, b2, _c) = sample();
        let kids: Vec<_> = tree.children(a).unwrap().collect();
        assert_eq!(kids, vec![b1, b2]);
        let root_kids: Vec<_> = tree.children(tree.root()).unwrap().collect();
        assert_eq!(root_kids, vec![a]);
    }
}
