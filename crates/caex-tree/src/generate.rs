//! Generators for the tree shapes the paper analyses.

use crate::{ExceptionId, ExceptionTree, ReducedTree, TreeBuilder};

/// Builds the paper's §3.3 chain tree `root → e1 → e2 → … → e<len>`.
///
/// A chain is the worst case for the CR domino effect: with interleaved
/// reduced trees every informed participant must re-raise, climbing the
/// chain one link at a time.
///
/// # Examples
///
/// ```
/// use caex_tree::{chain_tree, ExceptionId};
///
/// let tree = chain_tree(8);
/// assert_eq!(tree.len(), 9); // root + e1..e8
/// assert_eq!(tree.height(), 8);
/// assert_eq!(tree.leaves(), vec![ExceptionId::new(8)]);
/// ```
#[must_use]
pub fn chain_tree(len: u32) -> ExceptionTree {
    let mut b = TreeBuilder::new("universal_exception");
    let mut parent = ExceptionId::ROOT;
    for i in 1..=len {
        parent = b
            .child(format!("e{i}"), parent)
            .expect("generated names are unique");
    }
    b.build().expect("builder is valid by construction")
}

/// Builds a balanced tree with the given branching `factor` and `depth`
/// (depth 0 is just the root). Node names are `n<index>`.
///
/// # Panics
///
/// Panics if `factor` is 0 and `depth` > 0.
///
/// # Examples
///
/// ```
/// use caex_tree::balanced_tree;
///
/// let tree = balanced_tree(2, 3);
/// assert_eq!(tree.len(), 1 + 2 + 4 + 8);
/// assert_eq!(tree.height(), 3);
/// ```
#[must_use]
pub fn balanced_tree(factor: u32, depth: u32) -> ExceptionTree {
    assert!(
        factor > 0 || depth == 0,
        "branching factor must be positive"
    );
    let mut b = TreeBuilder::new("universal_exception");
    let mut frontier = vec![ExceptionId::ROOT];
    let mut counter = 0u64;
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * factor as usize);
        for parent in frontier {
            for _ in 0..factor {
                counter += 1;
                let id = b
                    .child(format!("n{counter}"), parent)
                    .expect("generated names are unique");
                next.push(id);
            }
        }
        frontier = next;
    }
    b.build().expect("builder is valid by construction")
}

/// Builds the paper's §3.2 aircraft-engine exception hierarchy:
///
/// ```text
/// universal_exception
/// └── emergency_engine_loss_exception
///     ├── left_engine_exception
///     └── right_engine_exception
/// ```
///
/// # Examples
///
/// ```
/// use caex_tree::aircraft_tree;
///
/// let tree = aircraft_tree();
/// let left = tree.id_of("left_engine_exception").unwrap();
/// let right = tree.id_of("right_engine_exception").unwrap();
/// let emergency = tree.id_of("emergency_engine_loss_exception").unwrap();
/// assert_eq!(tree.resolve([left, right]).unwrap(), emergency);
/// ```
#[must_use]
pub fn aircraft_tree() -> ExceptionTree {
    let mut b = TreeBuilder::new("universal_exception");
    let emergency = b
        .child_of_root("emergency_engine_loss_exception")
        .expect("unique");
    b.child("left_engine_exception", emergency).expect("unique");
    b.child("right_engine_exception", emergency)
        .expect("unique");
    b.build().expect("builder is valid by construction")
}

/// Builds the §3.3 interleaved reduced trees over a chain of length
/// `len`: participant 0 handles odd-numbered exceptions, participant 1
/// handles even-numbered ones. Returns `(odd, even)`.
///
/// With the paper's `len = 8` this is exactly `T_{O1} = e1 e3 e5 e7`,
/// `T_{O2} = e2 e4 e6 e8` — the configuration whose mutual re-raising
/// walks any raised exception all the way up the chain.
///
/// # Examples
///
/// ```
/// use caex_tree::{chain_tree, interleaved_reduced_trees, ExceptionId};
///
/// let tree = chain_tree(8);
/// let (odd, even) = interleaved_reduced_trees(&tree, 8);
/// assert!(odd.handles(ExceptionId::new(7)));
/// assert!(!odd.handles(ExceptionId::new(8)));
/// assert!(even.handles(ExceptionId::new(8)));
/// ```
#[must_use]
pub fn interleaved_reduced_trees(tree: &ExceptionTree, len: u32) -> (ReducedTree, ReducedTree) {
    let odd = ReducedTree::new(tree, (1..=len).step_by(2).map(ExceptionId::new))
        .expect("chain ids are valid");
    let even = ReducedTree::new(tree, (2..=len).step_by(2).map(ExceptionId::new))
        .expect("chain ids are valid");
    (odd, even)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_tree_structure() {
        let tree = chain_tree(5);
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.height(), 5);
        for i in 1..=5u32 {
            assert_eq!(tree.depth(ExceptionId::new(i)).unwrap(), i);
            assert_eq!(tree.name(ExceptionId::new(i)).unwrap(), format!("e{i}"));
        }
    }

    #[test]
    fn chain_tree_zero_is_root_only() {
        let tree = chain_tree(0);
        assert_eq!(tree.len(), 1);
        assert!(tree.is_empty());
    }

    #[test]
    fn balanced_tree_counts() {
        let tree = balanced_tree(3, 2);
        assert_eq!(tree.len(), 1 + 3 + 9);
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.leaves().len(), 9);
    }

    #[test]
    fn balanced_depth_zero_is_root_only() {
        let tree = balanced_tree(5, 0);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn aircraft_matches_paper_hierarchy() {
        let tree = aircraft_tree();
        assert_eq!(tree.len(), 4);
        let emergency = tree.id_of("emergency_engine_loss_exception").unwrap();
        let left = tree.id_of("left_engine_exception").unwrap();
        let right = tree.id_of("right_engine_exception").unwrap();
        assert_eq!(tree.parent(left).unwrap(), Some(emergency));
        assert_eq!(tree.parent(right).unwrap(), Some(emergency));
        assert_eq!(tree.parent(emergency).unwrap(), Some(tree.root()));
    }

    #[test]
    fn interleaved_trees_partition_the_chain() {
        let tree = chain_tree(8);
        let (odd, even) = interleaved_reduced_trees(&tree, 8);
        for i in 1..=8u32 {
            let id = ExceptionId::new(i);
            if i % 2 == 1 {
                assert!(odd.handles(id) && !even.handles(id));
            } else {
                assert!(even.handles(id) && !odd.handles(id));
            }
        }
    }
}
