//! Reduced exception trees: the per-participant handler subsets of the
//! Campbell–Randell (CR, 1986) model.
//!
//! The CR algorithm assumes each participant handles only a *subset* of
//! the action's declared exceptions (§3.3). When a participant is told of
//! an exception it cannot handle, it climbs the full tree to the closest
//! ancestor it *does* handle and re-raises that — the "third source" of
//! exceptions, whose iteration over interleaved subsets produces the
//! paper's domino effect. The proposed algorithm eliminates reduced trees
//! by requiring handlers for every declared exception; this module exists
//! to reproduce the CR baseline and the §3.3 analysis.

use crate::{ExceptionId, ExceptionTree, TreeError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A participant's subset of the action's exceptions for which it has
/// specific handlers (a "reduced tree" in the CR model).
///
/// Always contains the root: the CR model lets every participant fall
/// back to a default handler, which we model as the universal exception.
///
/// # Examples
///
/// ```
/// use caex_tree::{chain_tree, ReducedTree, ExceptionId};
///
/// # fn main() -> Result<(), caex_tree::TreeError> {
/// let tree = chain_tree(8);
/// // Participant handles only odd exceptions e1, e3, e5, e7.
/// let odd = ReducedTree::new(
///     &tree,
///     (1..=7).step_by(2).map(ExceptionId::new),
/// )?;
/// // Told of e8 (unhandled), it climbs to e7.
/// assert_eq!(
///     odd.closest_handled_ancestor(&tree, ExceptionId::new(8))?,
///     ExceptionId::new(7),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducedTree {
    handled: BTreeSet<ExceptionId>,
}

impl ReducedTree {
    /// Builds a reduced tree over the exceptions `handled`, validated
    /// against `tree`. The root is always included.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if any handled id is not in
    /// `tree`.
    pub fn new<I>(tree: &ExceptionTree, handled: I) -> Result<Self, TreeError>
    where
        I: IntoIterator<Item = ExceptionId>,
    {
        let mut set = BTreeSet::new();
        set.insert(ExceptionId::ROOT);
        for id in handled {
            if !tree.contains(id) {
                return Err(TreeError::UnknownId(id));
            }
            set.insert(id);
        }
        Ok(ReducedTree { handled: set })
    }

    /// A reduced tree that handles *every* exception of `tree` — the
    /// degenerate case corresponding to the proposed algorithm's
    /// assumption (§3.3: "each participating object has handlers for all
    /// exceptions declared in a given action").
    #[must_use]
    pub fn full(tree: &ExceptionTree) -> Self {
        ReducedTree {
            handled: tree.iter().collect(),
        }
    }

    /// Returns `true` if this participant has a specific handler for `id`.
    #[must_use]
    pub fn handles(&self, id: ExceptionId) -> bool {
        self.handled.contains(&id)
    }

    /// Number of handled exceptions (including the root fallback).
    #[must_use]
    pub fn len(&self) -> usize {
        self.handled.len()
    }

    /// `true` if only the root fallback handler exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handled.len() <= 1
    }

    /// Iterates over the handled exception ids in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ExceptionId> + '_ {
        self.handled.iter().copied()
    }

    /// Finds the closest ancestor of `raised` (possibly `raised` itself)
    /// that this participant handles. This is the re-raising step of the
    /// CR algorithm: if the returned id differs from `raised`, the CR
    /// participant raises it as a *new* exception.
    ///
    /// Because the root is always handled, this never fails to find one.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownId`] if `raised` is not in `tree`.
    pub fn closest_handled_ancestor(
        &self,
        tree: &ExceptionTree,
        raised: ExceptionId,
    ) -> Result<ExceptionId, TreeError> {
        let mut current = raised;
        loop {
            if self.handles(current) {
                return Ok(current);
            }
            match tree.parent(current)? {
                Some(p) => current = p,
                // Unreachable: the root is always in `handled`.
                None => return Ok(ExceptionId::ROOT),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chain_tree, TreeBuilder};

    #[test]
    fn always_contains_root() {
        let tree = chain_tree(3);
        let rt = ReducedTree::new(&tree, std::iter::empty()).unwrap();
        assert!(rt.handles(ExceptionId::ROOT));
        assert!(rt.is_empty());
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn full_reduced_tree_handles_everything() {
        let tree = chain_tree(5);
        let rt = ReducedTree::full(&tree);
        for id in tree.iter() {
            assert!(rt.handles(id));
        }
        assert_eq!(rt.len(), tree.len());
    }

    #[test]
    fn rejects_foreign_ids() {
        let tree = chain_tree(2);
        assert!(matches!(
            ReducedTree::new(&tree, [ExceptionId::new(40)]),
            Err(TreeError::UnknownId(_))
        ));
    }

    #[test]
    fn handled_exception_is_its_own_ancestor() {
        let tree = chain_tree(4);
        let rt = ReducedTree::new(&tree, [ExceptionId::new(2)]).unwrap();
        assert_eq!(
            rt.closest_handled_ancestor(&tree, ExceptionId::new(2))
                .unwrap(),
            ExceptionId::new(2)
        );
    }

    #[test]
    fn climbs_to_nearest_handled() {
        // chain: root(e0) -> e1 -> e2 -> e3 -> e4
        let tree = chain_tree(4);
        let rt = ReducedTree::new(&tree, [ExceptionId::new(1), ExceptionId::new(3)]).unwrap();
        assert_eq!(
            rt.closest_handled_ancestor(&tree, ExceptionId::new(4))
                .unwrap(),
            ExceptionId::new(3)
        );
        assert_eq!(
            rt.closest_handled_ancestor(&tree, ExceptionId::new(2))
                .unwrap(),
            ExceptionId::new(1)
        );
    }

    #[test]
    fn falls_back_to_root_when_nothing_on_path() {
        let mut b = TreeBuilder::new("root");
        let a = b.child_of_root("a").unwrap();
        let z = b.child_of_root("z").unwrap();
        let tree = b.build().unwrap();
        let rt = ReducedTree::new(&tree, [z]).unwrap();
        assert_eq!(
            rt.closest_handled_ancestor(&tree, a).unwrap(),
            ExceptionId::ROOT
        );
    }

    #[test]
    fn iter_is_sorted_and_distinct() {
        let tree = chain_tree(5);
        let rt = ReducedTree::new(
            &tree,
            [
                ExceptionId::new(4),
                ExceptionId::new(2),
                ExceptionId::new(4),
            ],
        )
        .unwrap();
        let ids: Vec<_> = rt.iter().collect();
        assert_eq!(
            ids,
            vec![ExceptionId::ROOT, ExceptionId::new(2), ExceptionId::new(4)]
        );
    }

    #[test]
    fn paper_interleaved_chain_climbs_one_step() {
        // §3.3: T_A = e1 -> ... -> e8 (chain), O1 handles odds, O2 evens.
        // If e8 is raised (O2's), O1 climbs to e7; told of e7, O2 climbs
        // to e6, and so on: each step moves exactly one link up.
        let tree = chain_tree(8);
        let odd = ReducedTree::new(&tree, (1..=7).step_by(2).map(ExceptionId::new)).unwrap();
        let even = ReducedTree::new(&tree, (2..=8).step_by(2).map(ExceptionId::new)).unwrap();
        let mut current = ExceptionId::new(8);
        let mut steps = 0;
        loop {
            let next_o1 = odd.closest_handled_ancestor(&tree, current).unwrap();
            if next_o1 == current {
                break;
            }
            current = next_o1;
            steps += 1;
            let next_o2 = even.closest_handled_ancestor(&tree, current).unwrap();
            if next_o2 == current {
                break;
            }
            current = next_o2;
            steps += 1;
        }
        // §3.3: "any exception will always lead to further exceptions
        // until the root of the exception tree is reached" — 8 re-raises
        // walk e8 → e7 → … → e1 → root.
        assert_eq!(steps, 8);
        assert_eq!(current, ExceptionId::ROOT);
    }
}
