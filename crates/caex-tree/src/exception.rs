//! The exception value carried by resolution messages.

use crate::ExceptionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse severity attached to an exception occurrence.
///
/// Severity does not participate in resolution (the paper resolves purely
/// through the exception tree's partial order); it is diagnostic metadata
/// used by traces and examples.
///
/// # Examples
///
/// ```
/// use caex_tree::Severity;
///
/// assert!(Severity::Fatal > Severity::Recoverable);
/// assert_eq!(Severity::default(), Severity::Recoverable);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Severity {
    /// The raising object expects cooperative recovery to succeed.
    #[default]
    Recoverable,
    /// Recovery may require aborting nested actions.
    Serious,
    /// The raising object expects the enclosing action to fail.
    Fatal,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Recoverable => "recoverable",
            Severity::Serious => "serious",
            Severity::Fatal => "fatal",
        };
        f.write_str(s)
    }
}

/// An exception *occurrence*: one raising of an exception class.
///
/// The class identity ([`ExceptionId`]) is what resolution operates on;
/// the remaining fields describe this particular occurrence (where it was
/// detected, how serious the raiser believes it is, and an optional
/// diagnostic payload). This mirrors the paper's model where exceptions
/// are classes but what travels between objects is a concrete raised
/// instance.
///
/// # Examples
///
/// ```
/// use caex_tree::{Exception, ExceptionId, Severity};
///
/// let exc = Exception::new(ExceptionId::new(2))
///     .with_origin("sensor-3")
///     .with_severity(Severity::Serious)
///     .with_detail("pressure out of range");
/// assert_eq!(exc.id(), ExceptionId::new(2));
/// assert_eq!(exc.origin(), Some("sensor-3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Exception {
    id: ExceptionId,
    severity: Severity,
    origin: Option<String>,
    detail: Option<String>,
}

impl Exception {
    /// Creates an occurrence of the exception class `id` with default
    /// severity and no diagnostics.
    #[must_use]
    pub fn new(id: ExceptionId) -> Self {
        Exception {
            id,
            severity: Severity::default(),
            origin: None,
            detail: None,
        }
    }

    /// Returns the exception class this occurrence belongs to.
    #[must_use]
    pub fn id(&self) -> ExceptionId {
        self.id
    }

    /// Returns the severity the raiser attached.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Returns the name of the component that detected the error, if any.
    #[must_use]
    pub fn origin(&self) -> Option<&str> {
        self.origin.as_deref()
    }

    /// Returns the free-form diagnostic payload, if any.
    #[must_use]
    pub fn detail(&self) -> Option<&str> {
        self.detail.as_deref()
    }

    /// Sets the origin label, consuming and returning `self` for chaining.
    #[must_use]
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.origin = Some(origin.into());
        self
    }

    /// Sets the severity, consuming and returning `self` for chaining.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Sets the diagnostic payload, consuming and returning `self`.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.severity)?;
        if let Some(origin) = &self.origin {
            write!(f, " from {origin}")?;
        }
        if let Some(detail) = &self.detail {
            write!(f, ": {detail}")?;
        }
        Ok(())
    }
}

impl From<ExceptionId> for Exception {
    fn from(id: ExceptionId) -> Self {
        Exception::new(id)
    }
}

/// Incremental builder for [`Exception`] occurrences sharing common
/// metadata, useful when one component raises many exceptions.
///
/// # Examples
///
/// ```
/// use caex_tree::{ExceptionBuilder, ExceptionId, Severity};
///
/// let raiser = ExceptionBuilder::for_origin("controller-7")
///     .severity(Severity::Serious);
/// let a = raiser.raise(ExceptionId::new(1));
/// let b = raiser.raise(ExceptionId::new(2));
/// assert_eq!(a.origin(), Some("controller-7"));
/// assert_eq!(b.severity(), Severity::Serious);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExceptionBuilder {
    origin: Option<String>,
    severity: Severity,
}

impl ExceptionBuilder {
    /// Creates a builder whose occurrences carry the given origin label.
    #[must_use]
    pub fn for_origin(origin: impl Into<String>) -> Self {
        ExceptionBuilder {
            origin: Some(origin.into()),
            severity: Severity::default(),
        }
    }

    /// Sets the severity used by subsequently raised occurrences.
    #[must_use]
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Produces an occurrence of class `id` with this builder's metadata.
    #[must_use]
    pub fn raise(&self, id: ExceptionId) -> Exception {
        let mut exc = Exception::new(id).with_severity(self.severity);
        if let Some(origin) = &self.origin {
            exc = exc.with_origin(origin.clone());
        }
        exc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_defaults() {
        let exc = Exception::new(ExceptionId::new(1));
        assert_eq!(exc.severity(), Severity::Recoverable);
        assert_eq!(exc.origin(), None);
        assert_eq!(exc.detail(), None);
    }

    #[test]
    fn chaining_sets_all_fields() {
        let exc = Exception::new(ExceptionId::new(5))
            .with_origin("o1")
            .with_severity(Severity::Fatal)
            .with_detail("disk on fire");
        assert_eq!(exc.id(), ExceptionId::new(5));
        assert_eq!(exc.origin(), Some("o1"));
        assert_eq!(exc.severity(), Severity::Fatal);
        assert_eq!(exc.detail(), Some("disk on fire"));
    }

    #[test]
    fn display_includes_metadata() {
        let exc = Exception::new(ExceptionId::new(2))
            .with_origin("o9")
            .with_detail("bad");
        let s = exc.to_string();
        assert!(s.contains("e2"), "{s}");
        assert!(s.contains("o9"), "{s}");
        assert!(s.contains("bad"), "{s}");
    }

    #[test]
    fn from_id_is_plain_occurrence() {
        let exc: Exception = ExceptionId::new(3).into();
        assert_eq!(exc.id(), ExceptionId::new(3));
        assert_eq!(exc.origin(), None);
    }

    #[test]
    fn builder_shares_metadata_across_raises() {
        let b = ExceptionBuilder::for_origin("x").severity(Severity::Serious);
        let e1 = b.raise(ExceptionId::new(1));
        let e2 = b.raise(ExceptionId::new(2));
        assert_eq!(e1.origin(), e2.origin());
        assert_eq!(e1.severity(), Severity::Serious);
        assert_ne!(e1.id(), e2.id());
    }

    #[test]
    fn severity_orders_by_seriousness() {
        assert!(Severity::Recoverable < Severity::Serious);
        assert!(Severity::Serious < Severity::Fatal);
    }

    #[test]
    fn serde_round_trip() {
        let exc = Exception::new(ExceptionId::new(4)).with_origin("o2");
        let json = serde_json_compatible(&exc);
        assert!(json.contains('4'));
    }

    // serde_json is not an allowed dependency; exercise Serialize via the
    // fmt-based proxy of serde's derive by serializing to a debug string.
    fn serde_json_compatible(exc: &Exception) -> String {
        format!("{exc:?}")
    }
}
