//! Property-based tests for the exception-tree invariants the resolution
//! algorithm relies on.

use caex_tree::{balanced_tree, chain_tree, ExceptionId, ExceptionTree, ReducedTree, TreeBuilder};
use proptest::prelude::*;

/// Strategy: a random tree built by attaching each new node to a random
/// existing node, plus the node count.
fn arb_tree() -> impl Strategy<Value = ExceptionTree> {
    // Parent choices: node i+1 attaches to some index in [0, i].
    prop::collection::vec(0usize..=usize::MAX, 0..40).prop_map(|choices| {
        let mut b = TreeBuilder::new("root");
        let mut ids = vec![ExceptionId::ROOT];
        for (i, c) in choices.into_iter().enumerate() {
            let parent = ids[c % ids.len()];
            let id = b.child(format!("n{i}"), parent).unwrap();
            ids.push(id);
        }
        b.build().unwrap()
    })
}

fn arb_tree_and_ids() -> impl Strategy<Value = (ExceptionTree, Vec<ExceptionId>)> {
    arb_tree().prop_flat_map(|tree| {
        let n = tree.len() as u32;
        let ids = prop::collection::vec(0..n, 1..12)
            .prop_map(|v| v.into_iter().map(ExceptionId::new).collect::<Vec<_>>());
        (Just(tree), ids)
    })
}

proptest! {
    /// The resolved exception is an ancestor of every raised exception —
    /// invariant 3 of DESIGN.md ("coverage").
    #[test]
    fn resolved_covers_all_raised((tree, raised) in arb_tree_and_ids()) {
        let resolved = tree.resolve(raised.iter().copied()).unwrap();
        for &r in &raised {
            prop_assert!(tree.is_ancestor(resolved, r).unwrap());
        }
    }

    /// The resolved exception is the *least* covering one: no strict
    /// descendant of it covers the whole raised set — invariant 4
    /// ("minimality").
    #[test]
    fn resolved_is_minimal((tree, raised) in arb_tree_and_ids()) {
        let resolved = tree.resolve(raised.iter().copied()).unwrap();
        for candidate in tree.subtree(resolved).unwrap() {
            if candidate == resolved {
                continue;
            }
            let covers_all = raised
                .iter()
                .all(|&r| tree.is_ancestor(candidate, r).unwrap());
            prop_assert!(
                !covers_all,
                "strict descendant {candidate} also covers the raised set"
            );
        }
    }

    /// Resolution is independent of the order exceptions arrive in.
    #[test]
    fn resolution_is_commutative((tree, raised) in arb_tree_and_ids()) {
        let forward = tree.resolve(raised.iter().copied()).unwrap();
        let mut reversed = raised.clone();
        reversed.reverse();
        let backward = tree.resolve(reversed).unwrap();
        prop_assert_eq!(forward, backward);
    }

    /// Resolution is idempotent: feeding the result back in changes
    /// nothing.
    #[test]
    fn resolution_is_idempotent((tree, raised) in arb_tree_and_ids()) {
        let resolved = tree.resolve(raised.iter().copied()).unwrap();
        let mut extended = raised.clone();
        extended.push(resolved);
        prop_assert_eq!(tree.resolve(extended).unwrap(), resolved);
    }

    /// A singleton set resolves to itself.
    #[test]
    fn singleton_resolves_to_itself(tree in arb_tree(), seed in 0u32..1000) {
        let id = ExceptionId::new(seed % tree.len() as u32);
        prop_assert_eq!(tree.resolve([id]).unwrap(), id);
    }

    /// `lca` is symmetric and dominated by the root.
    #[test]
    fn lca_symmetric((tree, raised) in arb_tree_and_ids()) {
        let a = raised[0];
        let b = *raised.last().unwrap();
        let ab = tree.lca(a, b).unwrap();
        let ba = tree.lca(b, a).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert!(tree.is_ancestor(tree.root(), ab).unwrap());
    }

    /// `path_to_root` has strictly decreasing depth and correct endpoints.
    #[test]
    fn path_to_root_is_monotone(tree in arb_tree(), seed in 0u32..1000) {
        let id = ExceptionId::new(seed % tree.len() as u32);
        let path = tree.path_to_root(id).unwrap();
        prop_assert_eq!(path[0], id);
        prop_assert_eq!(*path.last().unwrap(), tree.root());
        for w in path.windows(2) {
            prop_assert_eq!(
                tree.depth(w[0]).unwrap(),
                tree.depth(w[1]).unwrap() + 1
            );
            prop_assert_eq!(tree.parent(w[0]).unwrap(), Some(w[1]));
        }
    }

    /// A reduced tree's climb always lands on a handled ancestor of the
    /// raised exception.
    #[test]
    fn reduced_climb_lands_on_handled_ancestor(
        (tree, raised) in arb_tree_and_ids(),
        subset_mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let handled = tree
            .iter()
            .filter(|id| subset_mask.get(id.index() as usize).copied().unwrap_or(false))
            .collect::<Vec<_>>();
        let rt = ReducedTree::new(&tree, handled).unwrap();
        for &r in &raised {
            let landed = rt.closest_handled_ancestor(&tree, r).unwrap();
            prop_assert!(rt.handles(landed));
            prop_assert!(tree.is_ancestor(landed, r).unwrap());
        }
    }

    /// Subtree membership is equivalent to the ancestor relation.
    #[test]
    fn subtree_matches_ancestor_relation(tree in arb_tree(), seed in 0u32..1000) {
        let id = ExceptionId::new(seed % tree.len() as u32);
        let sub: std::collections::HashSet<_> =
            tree.subtree(id).unwrap().into_iter().collect();
        for other in tree.iter() {
            prop_assert_eq!(
                sub.contains(&other),
                tree.is_ancestor(id, other).unwrap()
            );
        }
    }
}

proptest! {
    /// Spec round trip: any tree serialises to a spec that parses back
    /// to a structurally identical tree (ids are renumbered in DFS
    /// order by the parser, so compare by names and parent names).
    #[test]
    fn spec_round_trip(tree in arb_tree()) {
        let spec = tree.to_spec();
        let parsed = ExceptionTree::parse(&spec).unwrap();
        prop_assert_eq!(parsed.len(), tree.len());
        for id in tree.iter() {
            let name = tree.name(id).unwrap();
            let parsed_id = parsed.id_of(name).unwrap();
            let parent_name = tree
                .parent(id)
                .unwrap()
                .map(|p| tree.name(p).unwrap().to_owned());
            let parsed_parent_name = parsed
                .parent(parsed_id)
                .unwrap()
                .map(|p| parsed.name(p).unwrap().to_owned());
            prop_assert_eq!(parent_name, parsed_parent_name, "parent of {}", name);
            prop_assert_eq!(
                tree.depth(id).unwrap(),
                parsed.depth(parsed_id).unwrap()
            );
        }
        // And serialisation is a fixpoint.
        prop_assert_eq!(parsed.to_spec(), spec);
    }
}

#[test]
fn chain_resolution_picks_shallowest() {
    let tree = chain_tree(10);
    let raised = [
        ExceptionId::new(3),
        ExceptionId::new(7),
        ExceptionId::new(9),
    ];
    assert_eq!(tree.resolve(raised).unwrap(), ExceptionId::new(3));
}

#[test]
fn balanced_resolution_of_all_leaves_is_root() {
    let tree = balanced_tree(2, 3);
    let resolved = tree.resolve(tree.leaves()).unwrap();
    assert_eq!(resolved, tree.root());
}
