//! Lint-guided exploration: run the static analysis first, then the
//! dynamic seed sweep, and cross-check the two.

use crate::{LintConfig, LintReport, Linter};
use caex::explore::{explore_with_audit, Expect, Exploration};
use caex::Scenario;
use std::ops::Range;

/// The combined outcome of a static pass plus a dynamic sweep.
#[derive(Debug)]
pub struct LintedExploration {
    /// The static findings on the seed-0 scenario of the family.
    pub lint: LintReport,
    /// The dynamic sweep outcome, including the cross-check violation
    /// when a lint-clean family still breaks an invariant.
    pub exploration: Exploration,
}

impl LintedExploration {
    /// `true` when the static pass found no errors *and* every
    /// interleaving satisfied the invariants.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !self.lint.has_denials() && self.exploration.is_ok()
    }
}

/// Lints the scenario family statically, then explores it dynamically,
/// cross-checking each dynamic `Violation` against the static verdict:
/// a family the linter passes at deny level but that still violates
/// invariants gains an extra `"lint-clean but dynamically unsafe"`
/// violation — a gap in the static analysis worth a bug report.
///
/// The static pass runs on `build(seeds.start)`; scenario *structure*
/// (declarations, scripted events, handler bindings) is seed-invariant
/// in every workload family, only latency draws differ.
///
/// # Examples
///
/// ```
/// use caex::explore::Expect;
/// use caex::workloads;
/// use caex_lint::explore::lint_then_explore;
/// use caex_lint::LintConfig;
/// use caex_net::NetConfig;
///
/// let outcome = lint_then_explore(0..16, Expect::Clean, LintConfig::new(), |seed| {
///     workloads::case1(4, NetConfig::default().with_seed(seed)).scenario
/// });
/// assert!(outcome.is_ok(), "{:?}", outcome);
/// ```
pub fn lint_then_explore<F>(
    seeds: Range<u64>,
    expect: Expect,
    config: LintConfig,
    build: F,
) -> LintedExploration
where
    F: Fn(u64) -> Scenario,
{
    let linter = Linter::with_config(config);
    let lint = linter.lint_scenario(&build(seeds.start));
    let denials: Vec<String> = lint
        .denials()
        .iter()
        .map(|d| d.to_string())
        .collect();
    let exploration = explore_with_audit(seeds, expect, build, move |_| denials.clone());
    LintedExploration { lint, exploration }
}
