//! `caex-lint` — static protocol analysis over exception trees, action
//! declarations and programs.
//!
//! The dynamic engine (`caex`) verifies the exception-resolution
//! protocol of Romanovsky, Xu & Randell's *Exception Handling and
//! Resolution in Distributed Object-Oriented Systems* by executing
//! scenarios. This crate checks the *static* obligations the paper
//! states about the declarations themselves, before anything runs:
//!
//! - **tree lints** (`CAEX001`–`CAEX005`): a pair of raisables whose
//!   LCA is the universal exception predicts the §4.2 resolution
//!   fallback; unreachable classes, duplicate raisables and degenerate
//!   shapes predict dead weight;
//! - **declaration lints** (`CAEX006`–`CAEX009`): §3.3 handler
//!   totality, §3.1 nested-scope containment, abortion-handler presence
//!   for nested actions, declared-raisables ⊆ tree;
//! - **program/scenario lints** (`CAEX010`–`CAEX014`): raises of
//!   undeclared classes, participants that enter but can never
//!   complete, unbalanced enter/complete structure, steps by strangers.
//!
//! Every lint has a stable code, a default severity (warn or deny) and
//! a per-lint override in [`LintConfig`]. Reports come back as a
//! machine-readable [`LintReport`] and render to text with
//! [`LintReport::render`].
//!
//! [`explore::lint_then_explore`] combines this with `caex`'s dynamic
//! seed sweep and reports any scenario family that is lint-clean yet
//! dynamically unsafe — each such case is a gap in this analysis.
//!
//! # Examples
//!
//! ```
//! use caex_lint::{LintCode, Linter};
//! use caex_tree::{chain_tree, ExceptionId};
//!
//! // A chain tree is flagged as adding no discrimination:
//! let report = Linter::new().lint_tree(&chain_tree(6), None);
//! assert!(report.fired(LintCode::DegenerateChain));
//!
//! // A duplicate raisable is an error:
//! let e1 = ExceptionId::new(1);
//! let report = Linter::new().lint_tree(&chain_tree(6), Some(&[e1, e1]));
//! assert!(report.has_denials());
//! ```

mod decl;
mod diag;
pub mod explore;
pub mod model;
mod program;
mod scenario;
mod tree;

pub use diag::{Diagnostic, LintCode, LintConfig, LintLevel, LintReport, Severity};
pub use model::{ModelLimits, ModelOptions, ModelReport, ModelStats, ModelViolation};
pub use tree::{CHAIN_THRESHOLD, MAX_DEPTH};

use caex::program::ActionProgram;
use caex::Scenario;
use caex_action::{ActionId, ActionRegistry, ActionScope, HandlerTable};
use caex_net::NodeId;
use caex_tree::{ExceptionId, ExceptionTree, ReducedTree};

/// The linter: a [`LintConfig`] plus one entry point per analysis
/// family.
#[derive(Debug, Clone, Default)]
pub struct Linter {
    config: LintConfig,
}

impl Linter {
    /// A linter with every lint at its default severity.
    #[must_use]
    pub fn new() -> Self {
        Linter::default()
    }

    /// A linter with the given configuration.
    #[must_use]
    pub fn with_config(config: LintConfig) -> Self {
        Linter { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Tree lints (`CAEX001`–`CAEX005`) over one tree and an optional
    /// raisable set. Without a raisable set only the structural lints
    /// (`CAEX004`, `CAEX005`) can fire.
    #[must_use]
    pub fn lint_tree(&self, tree: &ExceptionTree, raisables: Option<&[ExceptionId]>) -> LintReport {
        let mut sink = diag::Sink::new(&self.config);
        tree::lint_tree_into(&mut sink, "tree", tree, raisables);
        sink.finish()
    }

    /// Declaration lints (`CAEX007`, `CAEX009` + tree family) over a
    /// validated registry.
    #[must_use]
    pub fn lint_registry(&self, registry: &ActionRegistry) -> LintReport {
        let scopes: Vec<_> = registry.iter().map(|(id, s)| (id, s.clone())).collect();
        self.lint_scopes(&scopes)
    }

    /// Declaration lints over raw `(id, scope)` pairs — accepts
    /// declarations the registry's own `declare`-time validation would
    /// reject, reporting them as `CAEX007` instead.
    #[must_use]
    pub fn lint_scopes(&self, scopes: &[(ActionId, ActionScope)]) -> LintReport {
        let mut sink = diag::Sink::new(&self.config);
        decl::lint_scopes_into(&mut sink, scopes);
        let mut report = sink.finish();
        report.dedup();
        report
    }

    /// Handler lints (`CAEX006`, `CAEX008`, `CAEX013`) over explicit
    /// handler-table bindings.
    #[must_use]
    pub fn lint_handlers<'a, I>(&self, registry: &ActionRegistry, bindings: I) -> LintReport
    where
        I: IntoIterator<Item = (NodeId, ActionId, &'a HandlerTable)>,
    {
        let mut sink = diag::Sink::new(&self.config);
        decl::lint_handlers_into(&mut sink, registry, bindings);
        sink.finish()
    }

    /// The full battery over an [`ActionProgram`]: static replay of
    /// each object's steps plus the declaration and handler families.
    #[must_use]
    pub fn lint_program(&self, program: &ActionProgram) -> LintReport {
        let mut sink = diag::Sink::new(&self.config);
        program::lint_program_into(&mut sink, program);
        let mut report = sink.finish();
        report.dedup();
        report
    }

    /// The full battery over a [`Scenario`]: static replay of the
    /// scripted timeline plus the declaration and handler families.
    #[must_use]
    pub fn lint_scenario(&self, scenario: &Scenario) -> LintReport {
        let mut sink = diag::Sink::new(&self.config);
        scenario::lint_script_into(&mut sink, scenario);
        let mut report = sink.finish();
        report.dedup();
        report
    }

    /// Bounded explicit-state model checking (`CAEX015`–`CAEX018`)
    /// over a [`Scenario`]: every message interleaving within the
    /// budgets is enumerated, safety is checked on each commit against
    /// the [`ExceptionTree::resolve`] oracle, quiescent states must
    /// leave every object normal, and (with
    /// [`ModelOptions::crash_sweep`]) the elected resolver is crashed
    /// after every step of the canonical run. Violations come back
    /// both as diagnostics (with the counterexample trace rendered as
    /// `help:` spans) and structurally in the [`ModelReport`].
    #[must_use]
    pub fn model_check(
        &self,
        scenario: &Scenario,
        options: &ModelOptions,
    ) -> (LintReport, ModelReport) {
        let mut sink = diag::Sink::new(&self.config);
        let model = model::check_scenario_into(&mut sink, scenario, options);
        (sink.finish(), model)
    }

    /// Static worst-case analysis of a Campbell–Randell configuration
    /// (`CAEX019`): predicts the §3.3 domino over interleaved reduced
    /// trees by a fixpoint over `closest_handled_ancestor`, escalating
    /// to deny severity when the domino destroys all diagnosis.
    #[must_use]
    pub fn lint_cr(
        &self,
        tree: &ExceptionTree,
        reduced: &[ReducedTree],
        initial: &[(NodeId, ExceptionId)],
    ) -> LintReport {
        let mut sink = diag::Sink::new(&self.config);
        model::lint_cr_domino_into(&mut sink, tree, reduced, initial);
        sink.finish()
    }

    /// The full battery over a threaded
    /// [`ThreadRunner`](caex::thread_engine::ThreadRunner)'s script:
    /// the same static replay the simulator's scenarios get, so a
    /// timeline destined for real threads (or, via `caex-wire`, real
    /// processes) is vetted before anything spawns.
    #[must_use]
    pub fn lint_thread_runner(&self, runner: &caex::thread_engine::ThreadRunner) -> LintReport {
        let mut sink = diag::Sink::new(&self.config);
        scenario::lint_script_into(&mut sink, runner);
        let mut report = sink.finish();
        report.dedup();
        report
    }
}
