//! Declaration lints: checks over action scopes, their declared
//! exception sets and their handler tables (`CAEX006`–`CAEX009`, plus
//! the tree family re-run over each declaration).

use crate::diag::{LintCode, Sink};
use crate::tree::lint_tree_into;
use caex_action::{ActionId, ActionRegistry, ActionScope, HandlerTable};
use caex_net::NodeId;

/// Lints a set of `(id, scope)` declarations into `sink`.
///
/// Takes raw scope pairs rather than an [`ActionRegistry`] so fixtures
/// (and future front ends) can lint declarations the registry's own
/// `declare`-time validation would reject — the lint reproduces those
/// rules statically as `CAEX007`.
pub(crate) fn lint_scopes_into(sink: &mut Sink<'_>, scopes: &[(ActionId, ActionScope)]) {
    for (id, scope) in scopes {
        let subject = format!("{id} ({})", scope.name());
        let tree = scope.tree();

        // CAEX009: declared raisables must be classes of the tree.
        if let Some(declared) = scope.declared_exceptions() {
            for &exc in declared {
                if !tree.contains(exc) {
                    sink.emit(
                        LintCode::UndeclaredException,
                        &subject,
                        format!(
                            "declared raisable {exc} is not a class of the action's \
                             exception tree"
                        ),
                    );
                }
            }
        }

        // CAEX007: nested participants ⊆ parent participants.
        if let Some(parent) = scope.parent() {
            match scopes.iter().find(|(pid, _)| *pid == parent) {
                None => sink.emit(
                    LintCode::ScopeContainment,
                    &subject,
                    format!("parent {parent} is not among the declared actions"),
                ),
                Some((_, parent_scope)) => {
                    for &p in scope.participants() {
                        if !parent_scope.is_participant(p) {
                            sink.emit(
                                LintCode::ScopeContainment,
                                &subject,
                                format!(
                                    "participant {p} is not a participant of the \
                                     containing action {parent} (§3.1 requires nested \
                                     participants to be a subset)"
                                ),
                            );
                        }
                    }
                }
            }
        }

        // Tree family over the declaration, using the declared set as
        // the raisable set when one exists. Only declared classes that
        // are actually in the tree feed the coverage lints.
        let known: Option<Vec<_>> = scope.declared_exceptions().map(|d| {
            d.iter()
                .copied()
                .filter(|&e| tree.contains(e))
                .collect()
        });
        lint_tree_into(sink, &subject, tree, known.as_deref());
    }
}

/// Lints handler-table bindings against the declarations into `sink`
/// (`CAEX006`, `CAEX008`, and `CAEX013` for bindings to strangers).
///
/// Objects *without* an explicit table are silent here: the engine
/// gives them `recover_all` semantics, which is total by construction.
pub(crate) fn lint_handlers_into<'a, I>(sink: &mut Sink<'_>, registry: &ActionRegistry, bindings: I)
where
    I: IntoIterator<Item = (NodeId, ActionId, &'a HandlerTable)>,
{
    for (object, action, table) in bindings {
        let Ok(scope) = registry.scope(action) else {
            sink.emit(
                LintCode::NonParticipantStep,
                format!("{action}/{object}"),
                format!("handler table bound to undeclared action {action}"),
            );
            continue;
        };
        let subject = format!("{action} ({})/{object}", scope.name());

        // CAEX013: table bound to a non-participant.
        if !scope.is_participant(object) {
            sink.emit(
                LintCode::NonParticipantStep,
                &subject,
                format!("handler table bound to {object}, which does not participate in {action}"),
            );
        }

        // CAEX006: §3.3 totality — a handler for every raisable class.
        // The raisable set is the declared set when present, else the
        // whole tree (everything in the tree may be raised or resolved
        // to, and the engine panics on an uncovered invoke).
        let tree = scope.tree();
        let declared: Vec<_> = match scope.declared_exceptions() {
            // The root can always be resolved to, declared or not.
            Some(d) => {
                let mut d: Vec<_> = d.iter().copied().filter(|&e| tree.contains(e)).collect();
                if !d.contains(&tree.root()) {
                    d.push(tree.root());
                }
                d
            }
            None => tree.iter().collect(),
        };
        // Fix-it: the concrete handler rows that close every gap in
        // this table, attached to each totality finding.
        let missing: Vec<_> = declared.iter().filter(|&&e| !table.handles(e)).collect();
        let rows: Vec<String> = missing
            .iter()
            .map(|&&exc| {
                format!(
                    "table.on_outcome(ExceptionId::new({}), SimTime::ZERO, \
                     HandlerOutcome::Recovered); // {}",
                    exc.index(),
                    tree.name(exc).unwrap_or("?")
                )
            })
            .collect();
        for exc in declared {
            if !table.handles(exc) {
                let mut help = vec![format!(
                    "add the missing row(s) to {object}'s table for {action}:"
                )];
                help.extend(rows.iter().cloned());
                sink.emit_with_help(
                    LintCode::HandlerTotality,
                    &subject,
                    format!(
                        "no handler for declared exception {exc} ({}): §3.3 requires \
                         every participant to handle every declared exception",
                        tree.name(exc).unwrap_or("?")
                    ),
                    help,
                );
            }
        }

        // CAEX008: nested actions abort during resolution; an explicit
        // table for a nested participant should say how.
        if scope.parent().is_some() && !table.has_abortion_handler() {
            sink.emit(
                LintCode::MissingAbortionHandler,
                &subject,
                format!(
                    "explicit handler table for nested action {action} has no abortion \
                     handler; resolution in an enclosing action will abort it (§4.1)"
                ),
            );
        }
    }
}
