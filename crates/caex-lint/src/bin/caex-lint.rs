//! The `caex-lint` CLI: lints every built-in workload family and exits
//! nonzero when any deny-level diagnostic fires.
//!
//! ```text
//! cargo run -p caex-lint --bin caex-lint            # lint the built-ins
//! cargo run -p caex-lint --bin caex-lint -- --list  # list all lint codes
//! cargo run -p caex-lint --bin caex-lint -- --broken  # demo on a broken registry
//! ```
//!
//! Flags:
//!
//! - `--list` — print every lint code with its default severity;
//! - `--deny-warnings` — escalate warnings to errors;
//! - `--allow CODE` / `--warn CODE` / `--deny CODE` — per-lint level
//!   overrides (stable `CAEXnnn` codes or kebab-case names);
//! - `--broken` — lint a deliberately broken declaration set instead of
//!   the built-ins (demonstrates the deny lints; exits nonzero).

use caex::workloads;
use caex_action::{ActionId, ActionScope, HandlerTable};
use caex_lint::{LintCode, LintConfig, LintReport, Linter};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::ExceptionId;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut config = LintConfig::new();
    let mut list = false;
    let mut broken = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--broken" => broken = true,
            "--deny-warnings" => config = config.deny_warnings(),
            "--allow" | "--warn" | "--deny" => {
                let Some(value) = args.next() else {
                    eprintln!("error: {arg} requires a lint code");
                    return ExitCode::from(2);
                };
                let Some(code) = LintCode::parse(&value) else {
                    eprintln!("error: unknown lint code `{value}` (try --list)");
                    return ExitCode::from(2);
                };
                config = match arg.as_str() {
                    "--allow" => config.allow(code),
                    "--warn" => config.warn(code),
                    _ => config.deny(code),
                };
            }
            "--help" | "-h" => {
                println!(
                    "caex-lint: static protocol analysis over the built-in workloads\n\
                     \n\
                     usage: caex-lint [--list] [--broken] [--deny-warnings]\n\
                     \x20                [--allow CODE] [--warn CODE] [--deny CODE]..."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for code in LintCode::ALL {
            println!(
                "{}  {:<26} {}",
                code.code(),
                code.name(),
                code.default_severity()
            );
        }
        return ExitCode::SUCCESS;
    }

    let linter = Linter::with_config(config);
    if broken {
        let report = lint_broken(&linter);
        print!("{}", report.render());
        return exit_for(&report);
    }

    let mut failed = false;
    for (name, report) in lint_builtins(&linter) {
        println!("== {name}");
        print!("{}", report.render());
        failed |= report.has_denials();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Lints every built-in workload family's scenario.
fn lint_builtins(linter: &Linter) -> Vec<(&'static str, LintReport)> {
    let cfg = NetConfig::default;
    vec![
        (
            "general(6,3,2)",
            linter.lint_scenario(&workloads::general(6, 3, 2, cfg()).scenario),
        ),
        (
            "case1(4)",
            linter.lint_scenario(&workloads::case1(4, cfg()).scenario),
        ),
        (
            "case2(4)",
            linter.lint_scenario(&workloads::case2(4, cfg()).scenario),
        ),
        (
            "case3(8)",
            linter.lint_scenario(&workloads::case3(8, cfg()).scenario),
        ),
        (
            "fig3",
            linter.lint_scenario(&workloads::fig3(cfg()).scenario),
        ),
        (
            "example1",
            linter.lint_scenario(&workloads::example1(cfg()).0.scenario),
        ),
        (
            "example2",
            linter.lint_scenario(&workloads::example2(cfg()).0.scenario),
        ),
    ]
}

/// A deliberately broken declaration set: a flat raisable pair
/// (CAEX001), a nested scope leaking a stranger (CAEX007), a declared
/// raisable outside the tree (CAEX009) and a partial handler table
/// (CAEX006, CAEX008).
fn lint_broken(linter: &Linter) -> LintReport {
    use caex_tree::TreeBuilder;

    // Two sibling subtrees directly under the root: raisables from
    // different subtrees only meet at the universal exception.
    let mut b = TreeBuilder::new("universal_exception");
    let io = b.child_of_root("io_exception").expect("fresh name");
    let mem = b.child_of_root("memory_exception").expect("fresh name");
    let tree = Arc::new(b.build().expect("valid tree"));

    let top = ActionScope::top_level("broken_top", (0..3).map(NodeId::new), Arc::clone(&tree))
        .with_declared_exceptions([io, mem, ExceptionId::new(42)]);
    // O7 does not participate in the parent.
    let nested = ActionScope::nested(
        "broken_nested",
        [NodeId::new(1), NodeId::new(7)],
        Arc::clone(&tree),
        ActionId::new(0),
    );
    let scopes = vec![(ActionId::new(0), top), (ActionId::new(1), nested)];
    let mut report = linter.lint_scopes(&scopes);

    // A handler table that only covers `io`, bound to a nested-action
    // participant, with no abortion handler.
    let mut reg = caex_action::ActionRegistry::new();
    let a0 = reg
        .declare(ActionScope::top_level(
            "broken_top",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    let a1 = reg
        .declare(ActionScope::nested(
            "broken_nested",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a0,
        ))
        .expect("valid");
    let mut table = HandlerTable::new(Arc::clone(&tree));
    table.on(io, SimTime::ZERO, |_| {
        caex_action::HandlerOutcome::Recovered
    });
    report.merge(linter.lint_handlers(&reg, [(NodeId::new(1), a1, &table)]));

    // A scenario raising outside the tree entirely.
    let scenario = caex::Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a0)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            caex_tree::Exception::new(ExceptionId::new(42)),
        );
    report.merge(linter.lint_scenario(&scenario));
    report.dedup();
    report
}

fn exit_for(report: &LintReport) -> ExitCode {
    if report.has_denials() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
