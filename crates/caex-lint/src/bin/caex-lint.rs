//! The `caex-lint` CLI: lints every built-in workload family and exits
//! nonzero when any deny-level diagnostic fires.
//!
//! ```text
//! cargo run -p caex-lint --bin caex-lint            # lint the built-ins
//! cargo run -p caex-lint --bin caex-lint -- --list  # list all lint codes
//! cargo run -p caex-lint --bin caex-lint -- --broken  # demo on a broken registry
//! cargo run --release -p caex-lint -- check --model  # model-check the built-ins
//! ```
//!
//! Flags:
//!
//! - `--list` — print every lint code with its default severity;
//! - `--deny-warnings` — escalate warnings to errors;
//! - `--allow CODE` / `--warn CODE` / `--deny CODE` — per-lint level
//!   overrides (stable `CAEXnnn` codes or kebab-case names);
//! - `--broken` — lint a deliberately broken declaration set instead of
//!   the built-ins (demonstrates the deny lints; exits nonzero);
//! - `check --model` — after the static pass, model-check the built-in
//!   scenarios exhaustively (`CAEX015`–`CAEX018`), sweep resolver
//!   crashes through Examples 1 and 2, cross-check every verdict
//!   against the dynamic seed sweep, and run the `CAEX019`
//!   Campbell–Randell domino analysis. Exits nonzero on any violation,
//!   unconfirmed counterexample, or checker/simulator disagreement.
//!   Run it in release: the exhaustive sweeps are compute-bound.

use caex::explore::{explore, Expect};
use caex::workloads;
use caex_action::{ActionId, ActionScope, HandlerTable};
use caex_lint::{LintCode, LintConfig, LintReport, Linter, ModelLimits, ModelOptions};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, ExceptionId, ReducedTree};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut config = LintConfig::new();
    let mut list = false;
    let mut broken = false;
    let mut model = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `check` is the (optional) subcommand word: `check --model`.
            "check" => {}
            "--list" => list = true,
            "--broken" => broken = true,
            "--model" => model = true,
            "--deny-warnings" => config = config.deny_warnings(),
            "--allow" | "--warn" | "--deny" => {
                let Some(value) = args.next() else {
                    eprintln!("error: {arg} requires a lint code");
                    return ExitCode::from(2);
                };
                let Some(code) = LintCode::parse(&value) else {
                    eprintln!("error: unknown lint code `{value}` (try --list)");
                    return ExitCode::from(2);
                };
                config = match arg.as_str() {
                    "--allow" => config.allow(code),
                    "--warn" => config.warn(code),
                    _ => config.deny(code),
                };
            }
            "--help" | "-h" => {
                println!(
                    "caex-lint: static protocol analysis over the built-in workloads\n\
                     \n\
                     usage: caex-lint [check] [--model] [--list] [--broken] [--deny-warnings]\n\
                     \x20                [--allow CODE] [--warn CODE] [--deny CODE]..."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for code in LintCode::ALL {
            println!(
                "{}  {:<26} {}",
                code.code(),
                code.name(),
                code.default_severity()
            );
        }
        return ExitCode::SUCCESS;
    }

    let linter = Linter::with_config(config);
    if broken {
        let report = lint_broken(&linter);
        print!("{}", report.render());
        return exit_for(&report);
    }

    let mut failed = false;
    for (name, report) in lint_builtins(&linter) {
        println!("== {name}");
        print!("{}", report.render());
        failed |= report.has_denials();
    }
    if model {
        failed |= !model_check_builtins(&linter);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `check --model` battery: exhaustive model checking of the
/// small built-in scenarios, resolver-crash sweeps through the paper's
/// Examples 1 and 2, a dynamic cross-check of every verdict, and the
/// Campbell–Randell domino analysis. Returns `true` when everything
/// agrees and nothing fired.
fn model_check_builtins(linter: &Linter) -> bool {
    let cfg = NetConfig::default;
    // (name, crash_sweep, scenario builder). The builder is seedable so
    // the same family feeds both the checker and the dynamic sweep.
    type Build = Box<dyn Fn(u64) -> caex::Scenario>;
    let families: Vec<(&str, bool, Build)> = vec![
        (
            "case1(3)",
            false,
            Box::new(|seed| workloads::case1(3, NetConfig::default().with_seed(seed)).scenario),
        ),
        (
            "case2(3)",
            false,
            Box::new(|seed| workloads::case2(3, NetConfig::default().with_seed(seed)).scenario),
        ),
        (
            "fig3",
            false,
            Box::new(|seed| workloads::fig3(NetConfig::default().with_seed(seed)).scenario),
        ),
        (
            "example1",
            true,
            Box::new(|seed| workloads::example1(NetConfig::default().with_seed(seed)).0.scenario),
        ),
        (
            "example2",
            true,
            Box::new(|seed| workloads::example2(NetConfig::default().with_seed(seed)).0.scenario),
        ),
    ];

    let mut ok = true;
    for (name, sweep, build) in families {
        let options = ModelOptions {
            crash_sweep: sweep,
            // Example 2's reduced state space is ~1.1M states; give the
            // battery comfortable headroom so every family is exhaustive.
            limits: ModelLimits {
                max_states: 2_000_000,
                max_trace: 4_096,
            },
        };
        let started = std::time::Instant::now();
        let (report, model) = linter.model_check(&build(0), &options);
        let elapsed = started.elapsed();
        println!(
            "== model:{name}: {} states, {} transitions, {} crash points, {:?}{}",
            model.stats.states,
            model.stats.transitions,
            model.crash_points,
            elapsed,
            if model.complete { "" } else { " (BOUNDED)" },
        );
        if let Some(reason) = &model.skipped {
            println!("   SKIPPED: {reason}");
            ok = false;
            continue;
        }
        print!("{}", report.render());
        if !model.violations.is_empty() {
            ok = false;
        }
        if model.violations.iter().any(|v| !v.replay_confirmed) {
            println!("   UNCONFIRMED counterexample: checker nondeterminism");
            ok = false;
        }
        if !model.complete {
            println!("   state budget exhausted before exhaustion: raise ModelLimits");
            ok = false;
        }
        // Cross-check against the dynamic engine: a checker-clean
        // family must be clean under the seed sweep too (the checker
        // explores a superset of the simulator's schedules).
        let sweep_outcome = explore(0..16, Expect::Clean, &build);
        if model.is_clean() && !sweep_outcome.is_ok() {
            println!(
                "   DISAGREEMENT: checker-clean but the dynamic sweep violated \
                 invariants: {:?}",
                sweep_outcome.violations
            );
            ok = false;
        }
        println!(
            "   dynamic cross-check: {} seeds, {}",
            sweep_outcome.runs,
            if sweep_outcome.is_ok() { "agree" } else { "violations (see above)" }
        );
    }

    // The legacy configuration: Example 1 with resolver failover
    // switched off is the paper's literal §4.2 machine. The crash
    // sweep must *find* CAEX018 here — the vulnerability is the reason
    // failover exists, so a quiet sweep would mean the checker lost
    // its teeth, not that the legacy machine became safe.
    {
        let options = ModelOptions {
            crash_sweep: true,
            limits: ModelLimits {
                max_states: 2_000_000,
                max_trace: 4_096,
            },
        };
        let scenario = workloads::example1(NetConfig::default())
            .0
            .scenario
            .with_failover(false);
        let started = std::time::Instant::now();
        let (_report, model) = linter.model_check(&scenario, &options);
        println!(
            "== model:example1(failover off): {} states, {} transitions, {} crash points, {:?}",
            model.stats.states,
            model.stats.transitions,
            model.crash_points,
            started.elapsed(),
        );
        let fired = model
            .violations
            .iter()
            .any(|v| v.code == LintCode::ModelCrashVulnerable);
        if fired {
            println!("   CAEX018 fired as expected: the legacy machine is crash-vulnerable");
        } else {
            println!("   MISSING CAEX018: the failover-off sweep came back quiet");
            ok = false;
        }
    }

    // CAEX019: the §3.3 domino must fire (and escalate) on interleaved
    // reduced trees over a chain, and stay quiet with full handlers.
    let tree = chain_tree(8);
    let interleaved = caex::cr::interleaved_parties(&tree, 8, 2);
    // Raised by party 0 (which handles it): party 1 cannot, climbs,
    // and the climb ping-pongs all the way down to the root.
    let raise = [(NodeId::new(0), ExceptionId::new(8))];
    let domino = linter.lint_cr(&tree, &interleaved, &raise);
    println!("== model:cr-domino (interleaved chain of 8, 2 parties)");
    print!("{}", domino.render());
    if !domino.fired(LintCode::CrDominoDepth) {
        println!("   MISSING: the interleaved worst case must fire CAEX019");
        ok = false;
    }
    let full = vec![ReducedTree::full(&tree); 2];
    let quiet = linter.lint_cr(&tree, &full, &raise);
    if !quiet.is_clean() {
        println!("   FALSE POSITIVE: full handler sets must not domino");
        print!("{}", quiet.render());
        ok = false;
    }
    // Cross-check the static prediction against the executed CR
    // baseline: the domino the lint predicts is the one cr::run counts.
    let report = caex::cr::run(
        2,
        Arc::new(chain_tree(8)),
        caex::cr::interleaved_parties(&chain_tree(8), 8, 2),
        &raise,
        cfg(),
    );
    if report.committed != ExceptionId::ROOT || report.raised_total < 8 {
        println!(
            "   DISAGREEMENT: CAEX019 predicts a full domino but cr::run raised {} \
             and committed {}",
            report.raised_total, report.committed
        );
        ok = false;
    }
    println!(
        "   dynamic cross-check: cr::run raised {} classes, committed {} — agree",
        report.raised_total, report.committed
    );
    ok
}

/// Lints every built-in workload family's scenario.
fn lint_builtins(linter: &Linter) -> Vec<(&'static str, LintReport)> {
    let cfg = NetConfig::default;
    vec![
        (
            "general(6,3,2)",
            linter.lint_scenario(&workloads::general(6, 3, 2, cfg()).scenario),
        ),
        (
            "case1(4)",
            linter.lint_scenario(&workloads::case1(4, cfg()).scenario),
        ),
        (
            "case2(4)",
            linter.lint_scenario(&workloads::case2(4, cfg()).scenario),
        ),
        (
            "case3(8)",
            linter.lint_scenario(&workloads::case3(8, cfg()).scenario),
        ),
        (
            "fig3",
            linter.lint_scenario(&workloads::fig3(cfg()).scenario),
        ),
        (
            "example1",
            linter.lint_scenario(&workloads::example1(cfg()).0.scenario),
        ),
        (
            "example2",
            linter.lint_scenario(&workloads::example2(cfg()).0.scenario),
        ),
    ]
}

/// A deliberately broken declaration set: a flat raisable pair
/// (CAEX001), a nested scope leaking a stranger (CAEX007), a declared
/// raisable outside the tree (CAEX009) and a partial handler table
/// (CAEX006, CAEX008).
fn lint_broken(linter: &Linter) -> LintReport {
    use caex_tree::TreeBuilder;

    // Two sibling subtrees directly under the root: raisables from
    // different subtrees only meet at the universal exception.
    let mut b = TreeBuilder::new("universal_exception");
    let io = b.child_of_root("io_exception").expect("fresh name");
    let mem = b.child_of_root("memory_exception").expect("fresh name");
    let tree = Arc::new(b.build().expect("valid tree"));

    let top = ActionScope::top_level("broken_top", (0..3).map(NodeId::new), Arc::clone(&tree))
        .with_declared_exceptions([io, mem, ExceptionId::new(42)]);
    // O7 does not participate in the parent.
    let nested = ActionScope::nested(
        "broken_nested",
        [NodeId::new(1), NodeId::new(7)],
        Arc::clone(&tree),
        ActionId::new(0),
    );
    let scopes = vec![(ActionId::new(0), top), (ActionId::new(1), nested)];
    let mut report = linter.lint_scopes(&scopes);

    // A handler table that only covers `io`, bound to a nested-action
    // participant, with no abortion handler.
    let mut reg = caex_action::ActionRegistry::new();
    let a0 = reg
        .declare(ActionScope::top_level(
            "broken_top",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    let a1 = reg
        .declare(ActionScope::nested(
            "broken_nested",
            [NodeId::new(1)],
            Arc::clone(&tree),
            a0,
        ))
        .expect("valid");
    let mut table = HandlerTable::new(Arc::clone(&tree));
    table.on(io, SimTime::ZERO, |_| {
        caex_action::HandlerOutcome::Recovered
    });
    report.merge(linter.lint_handlers(&reg, [(NodeId::new(1), a1, &table)]));

    // A scenario raising outside the tree entirely.
    let scenario = caex::Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a0)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            caex_tree::Exception::new(ExceptionId::new(42)),
        );
    report.merge(linter.lint_scenario(&scenario));
    report.dedup();
    report
}

fn exit_for(report: &LintReport) -> ExitCode {
    if report.has_denials() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
