//! The diagnostics engine: stable lint codes, severities, per-lint
//! configuration and the rendered / machine-readable report.

use std::fmt;

/// Every lint the analyser knows, with a stable `CAEXnnn` code.
///
/// Codes are append-only: a code, once published, never changes meaning
/// (tooling and allow-lists depend on that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `CAEX001` — two raisable classes whose LCA is the universal
    /// (root) exception: concurrent resolution degenerates to "anything
    /// went wrong" (§4.2 fallback).
    NonCoveringPair,
    /// `CAEX002` — a class on no root path of any raisable: it can
    /// never be raised nor resolved to.
    UnreachableClass,
    /// `CAEX003` — the same class listed twice in a raisable set.
    DuplicateRaisable,
    /// `CAEX004` — the tree is one long chain; concurrent resolution
    /// always picks the shallower class, so the hierarchy adds nothing.
    DegenerateChain,
    /// `CAEX005` — the tree is deeper than any handler hierarchy
    /// plausibly discriminates.
    ExcessiveDepth,
    /// `CAEX006` — an explicit handler table misses a handler for a
    /// declared exception (§3.3 totality: the engine panics at invoke
    /// time on exactly this gap).
    HandlerTotality,
    /// `CAEX007` — a nested action's participants are not a subset of
    /// its parent's (§3.1).
    ScopeContainment,
    /// `CAEX008` — an explicit table for a nested action's participant
    /// has no abortion handler, though nested actions abort during
    /// resolution (§4.1).
    MissingAbortionHandler,
    /// `CAEX009` — a declared raisable class that is not in the
    /// action's exception tree.
    UndeclaredException,
    /// `CAEX010` — a raise of a class outside the active action's tree
    /// or declared set, or outside any action at all.
    UndeclaredRaise,
    /// `CAEX011` — a participant enters the action but can never
    /// complete it (and no fallible step exists whose handlers could
    /// take over): a guaranteed deadlock.
    NeverCompletes,
    /// `CAEX012` — unbalanced enter/leave/complete structure (leaving
    /// an action that is not the innermost, completing with a nested
    /// action still open, steps after completion).
    EnterImbalance,
    /// `CAEX013` — a program step or handler table for an object that
    /// does not participate in the action.
    NonParticipantStep,
    /// `CAEX014` — a declared participant with no program at all; it
    /// is entered with the action but contributes nothing.
    UnenteredParticipant,
    /// `CAEX015` — the model checker found a reachable interleaving
    /// ending in a state where some participant is stuck mid-resolution
    /// (deadlock-freedom violated).
    ModelDeadlock,
    /// `CAEX016` — the model checker found a reachable interleaving in
    /// which an exception was raised but no resolution ever commits
    /// (resolution termination violated).
    ModelUnresolved,
    /// `CAEX017` — a reachable resolution commits an exception that is
    /// not the least common ancestor of the raised set, or participants
    /// disagree on the committed class (cross-checked against the
    /// `ExceptionTree::resolve` oracle).
    ModelWrongResolution,
    /// `CAEX018` — crashing the resolver at some step of resolution
    /// leaves a reachable interleaving in which the survivors never
    /// finish (resolver-crash survivability violated).
    ModelCrashVulnerable,
    /// `CAEX019` — under the Campbell–Randell baseline's interleaved
    /// reduced trees, a single raise can domino through re-raises at
    /// third-party objects; reports the worst-case domino depth.
    CrDominoDepth,
}

impl LintCode {
    /// All codes, in code order.
    pub const ALL: [LintCode; 19] = [
        LintCode::NonCoveringPair,
        LintCode::UnreachableClass,
        LintCode::DuplicateRaisable,
        LintCode::DegenerateChain,
        LintCode::ExcessiveDepth,
        LintCode::HandlerTotality,
        LintCode::ScopeContainment,
        LintCode::MissingAbortionHandler,
        LintCode::UndeclaredException,
        LintCode::UndeclaredRaise,
        LintCode::NeverCompletes,
        LintCode::EnterImbalance,
        LintCode::NonParticipantStep,
        LintCode::UnenteredParticipant,
        LintCode::ModelDeadlock,
        LintCode::ModelUnresolved,
        LintCode::ModelWrongResolution,
        LintCode::ModelCrashVulnerable,
        LintCode::CrDominoDepth,
    ];

    /// The stable `CAEXnnn` code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintCode::NonCoveringPair => "CAEX001",
            LintCode::UnreachableClass => "CAEX002",
            LintCode::DuplicateRaisable => "CAEX003",
            LintCode::DegenerateChain => "CAEX004",
            LintCode::ExcessiveDepth => "CAEX005",
            LintCode::HandlerTotality => "CAEX006",
            LintCode::ScopeContainment => "CAEX007",
            LintCode::MissingAbortionHandler => "CAEX008",
            LintCode::UndeclaredException => "CAEX009",
            LintCode::UndeclaredRaise => "CAEX010",
            LintCode::NeverCompletes => "CAEX011",
            LintCode::EnterImbalance => "CAEX012",
            LintCode::NonParticipantStep => "CAEX013",
            LintCode::UnenteredParticipant => "CAEX014",
            LintCode::ModelDeadlock => "CAEX015",
            LintCode::ModelUnresolved => "CAEX016",
            LintCode::ModelWrongResolution => "CAEX017",
            LintCode::ModelCrashVulnerable => "CAEX018",
            LintCode::CrDominoDepth => "CAEX019",
        }
    }

    /// Short kebab-case name, as shown in `--list` and used in prose.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintCode::NonCoveringPair => "non-covering-pair",
            LintCode::UnreachableClass => "unreachable-class",
            LintCode::DuplicateRaisable => "duplicate-raisable",
            LintCode::DegenerateChain => "degenerate-chain",
            LintCode::ExcessiveDepth => "excessive-depth",
            LintCode::HandlerTotality => "handler-totality",
            LintCode::ScopeContainment => "scope-containment",
            LintCode::MissingAbortionHandler => "missing-abortion-handler",
            LintCode::UndeclaredException => "undeclared-exception",
            LintCode::UndeclaredRaise => "undeclared-raise",
            LintCode::NeverCompletes => "never-completes",
            LintCode::EnterImbalance => "enter-imbalance",
            LintCode::NonParticipantStep => "non-participant-step",
            LintCode::UnenteredParticipant => "unentered-participant",
            LintCode::ModelDeadlock => "model-deadlock",
            LintCode::ModelUnresolved => "model-unresolved",
            LintCode::ModelWrongResolution => "model-wrong-resolution",
            LintCode::ModelCrashVulnerable => "model-crash-vulnerable",
            LintCode::CrDominoDepth => "cr-domino-depth",
        }
    }

    /// The severity this lint fires at unless overridden.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::NonCoveringPair
            | LintCode::DuplicateRaisable
            | LintCode::HandlerTotality
            | LintCode::ScopeContainment
            | LintCode::UndeclaredException
            | LintCode::UndeclaredRaise
            | LintCode::NeverCompletes
            | LintCode::EnterImbalance
            | LintCode::NonParticipantStep
            | LintCode::ModelDeadlock
            | LintCode::ModelUnresolved
            | LintCode::ModelWrongResolution
            | LintCode::ModelCrashVulnerable => Severity::Deny,
            LintCode::UnreachableClass
            | LintCode::DegenerateChain
            | LintCode::ExcessiveDepth
            | LintCode::MissingAbortionHandler
            | LintCode::UnenteredParticipant
            // Advisory by default: the baseline is provided for
            // comparison, so a bad reduced-tree split should not fail
            // builds of programs that run the main engine. Escalated to
            // deny by the analysis itself when the domino reaches the
            // whole interleaving (see `model::lint_cr_domino`).
            | LintCode::CrDominoDepth => Severity::Warn,
        }
    }

    /// Parses a `CAEXnnn` code or kebab-case name.
    #[must_use]
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.name() == s)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// How serious a fired lint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: reported, does not fail the run.
    Warn,
    /// Error: fails the run (the CLI exits nonzero).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Deny => "error",
        })
    }
}

/// Per-lint level override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Suppress the lint entirely.
    Allow,
    /// Fire at warning severity.
    Warn,
    /// Fire at error severity.
    Deny,
}

/// Lint configuration: per-code level overrides plus a global
/// warnings-as-errors switch.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: Vec<(LintCode, LintLevel)>,
    deny_warnings: bool,
}

impl LintConfig {
    /// The default configuration (every lint at its default severity).
    #[must_use]
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Suppresses `code` entirely.
    #[must_use]
    pub fn allow(mut self, code: LintCode) -> Self {
        self.overrides.push((code, LintLevel::Allow));
        self
    }

    /// Forces `code` to warning severity.
    #[must_use]
    pub fn warn(mut self, code: LintCode) -> Self {
        self.overrides.push((code, LintLevel::Warn));
        self
    }

    /// Forces `code` to error severity.
    #[must_use]
    pub fn deny(mut self, code: LintCode) -> Self {
        self.overrides.push((code, LintLevel::Deny));
        self
    }

    /// Escalates every warning to an error (per-code `allow` still
    /// suppresses).
    #[must_use]
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }

    /// The severity `code` currently fires at, or `None` if allowed
    /// away. Later overrides win over earlier ones.
    #[must_use]
    pub fn severity_of(&self, code: LintCode) -> Option<Severity> {
        self.severity_from(code, code.default_severity())
    }

    /// Like [`severity_of`](Self::severity_of) but with the lint's
    /// baseline severity raised to `floor` — used by analyses that
    /// escalate a normally-advisory finding when it crosses a
    /// worst-case threshold. Explicit per-code overrides still win.
    pub(crate) fn severity_at_least(&self, code: LintCode, floor: Severity) -> Option<Severity> {
        self.severity_from(code, code.default_severity().max(floor))
    }

    fn severity_from(&self, code: LintCode, default: Severity) -> Option<Severity> {
        let level = self
            .overrides
            .iter()
            .rev()
            .find(|(c, _)| *c == code)
            .map(|(_, l)| *l);
        let severity = match level {
            Some(LintLevel::Allow) => return None,
            Some(LintLevel::Warn) => Severity::Warn,
            Some(LintLevel::Deny) => Severity::Deny,
            None => default,
        };
        if self.deny_warnings && severity == Severity::Warn {
            Some(Severity::Deny)
        } else {
            Some(severity)
        }
    }
}

/// One fired lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity after configuration.
    pub severity: Severity,
    /// What the lint is about (an action, object or tree), for grouping.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// Fix-it guidance: concrete repair steps or the counterexample
    /// trace behind the finding, rendered as indented `help:` spans
    /// below the diagnostic line. Empty for most lints.
    pub help: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.severity,
            self.code.code(),
            self.subject,
            self.message
        )?;
        for line in &self.help {
            write!(f, "\n  help: {line}")?;
        }
        Ok(())
    }
}

/// The machine-readable result of a lint pass.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every fired diagnostic, in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// `true` when nothing fired at any severity.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one error-severity diagnostic fired.
    #[must_use]
    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// The error-severity diagnostics.
    #[must_use]
    pub fn denials(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .collect()
    }

    /// `true` when some diagnostic fired with the given code.
    #[must_use]
    pub fn fired(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Appends another report's diagnostics.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Drops exact duplicate diagnostics (same code, subject and
    /// message), preserving first-occurrence order. Scopes sharing one
    /// tree would otherwise repeat every tree lint.
    pub fn dedup(&mut self) {
        let mut seen: Vec<Diagnostic> = Vec::new();
        self.diagnostics.retain(|d| {
            if seen.contains(d) {
                false
            } else {
                seen.push(d.clone());
                true
            }
        });
    }

    /// Renders the report as the CLI prints it: one line per
    /// diagnostic plus a summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.denials().len();
        let warnings = self.diagnostics.len() - errors;
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            errors, warnings
        ));
        out
    }
}

/// Collects diagnostics subject to a [`LintConfig`] — the single entry
/// point every analysis family reports through.
#[derive(Debug)]
pub(crate) struct Sink<'a> {
    config: &'a LintConfig,
    report: LintReport,
}

impl<'a> Sink<'a> {
    pub(crate) fn new(config: &'a LintConfig) -> Self {
        Sink {
            config,
            report: LintReport::new(),
        }
    }

    /// Fires `code` unless the configuration allows it away.
    pub(crate) fn emit(&mut self, code: LintCode, subject: impl Into<String>, message: impl Into<String>) {
        self.emit_with_help(code, subject, message, Vec::new());
    }

    /// Fires `code` with attached `help:` spans (fix-it suggestions or
    /// a counterexample trace).
    pub(crate) fn emit_with_help(
        &mut self,
        code: LintCode,
        subject: impl Into<String>,
        message: impl Into<String>,
        help: Vec<String>,
    ) {
        if let Some(severity) = self.config.severity_of(code) {
            self.report.diagnostics.push(Diagnostic {
                code,
                severity,
                subject: subject.into(),
                message: message.into(),
                help,
            });
        }
    }

    /// Fires `code` with its baseline severity raised to `floor`
    /// (explicit configuration overrides still win) — the severity
    /// tuning used when an advisory lint crosses a worst-case
    /// threshold.
    pub(crate) fn emit_escalated(
        &mut self,
        code: LintCode,
        floor: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
        help: Vec<String>,
    ) {
        if let Some(severity) = self.config.severity_at_least(code, floor) {
            self.report.diagnostics.push(Diagnostic {
                code,
                severity,
                subject: subject.into(),
                message: message.into(),
                help,
            });
        }
    }

    pub(crate) fn finish(self) -> LintReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parseable() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.code()), Some(code));
            assert_eq!(LintCode::parse(code.name()), Some(code));
        }
        assert_eq!(LintCode::parse("CAEX999"), None);
        assert_eq!(LintCode::NonCoveringPair.code(), "CAEX001");
        assert_eq!(LintCode::UnenteredParticipant.code(), "CAEX014");
        assert_eq!(LintCode::CrDominoDepth.code(), "CAEX019");
        assert_eq!(LintCode::ALL.len(), 19);
    }

    #[test]
    fn help_spans_render_indented() {
        let config = LintConfig::new();
        let mut sink = Sink::new(&config);
        sink.emit_with_help(
            LintCode::NonCoveringPair,
            "tree",
            "e1 and e2 resolve to the root",
            vec!["insert a grouping class".into(), "then re-lint".into()],
        );
        let text = sink.finish().render();
        assert!(text.contains("error[CAEX001]"));
        assert!(text.contains("\n  help: insert a grouping class\n"));
        assert!(text.contains("\n  help: then re-lint\n"));
    }

    #[test]
    fn escalation_raises_the_floor_but_respects_overrides() {
        let config = LintConfig::new();
        let mut sink = Sink::new(&config);
        sink.emit_escalated(
            LintCode::CrDominoDepth,
            Severity::Deny,
            "cr",
            "domino spans every class",
            Vec::new(),
        );
        let report = sink.finish();
        assert!(report.has_denials());
        // An explicit warn override wins over the escalation...
        let config = LintConfig::new().warn(LintCode::CrDominoDepth);
        let mut sink = Sink::new(&config);
        sink.emit_escalated(
            LintCode::CrDominoDepth,
            Severity::Deny,
            "cr",
            "x",
            Vec::new(),
        );
        assert!(!sink.finish().has_denials());
        // ...and allow suppresses it entirely.
        let config = LintConfig::new().allow(LintCode::CrDominoDepth);
        let mut sink = Sink::new(&config);
        sink.emit_escalated(
            LintCode::CrDominoDepth,
            Severity::Deny,
            "cr",
            "x",
            Vec::new(),
        );
        assert!(sink.finish().is_clean());
    }

    #[test]
    fn config_overrides_apply_last_wins() {
        let config = LintConfig::new()
            .allow(LintCode::DegenerateChain)
            .deny(LintCode::DegenerateChain);
        assert_eq!(
            config.severity_of(LintCode::DegenerateChain),
            Some(Severity::Deny)
        );
        let config = LintConfig::new().allow(LintCode::HandlerTotality);
        assert_eq!(config.severity_of(LintCode::HandlerTotality), None);
    }

    #[test]
    fn deny_warnings_escalates() {
        let config = LintConfig::new().deny_warnings();
        assert_eq!(
            config.severity_of(LintCode::ExcessiveDepth),
            Some(Severity::Deny)
        );
        // allow still wins
        let config = LintConfig::new()
            .deny_warnings()
            .allow(LintCode::ExcessiveDepth);
        assert_eq!(config.severity_of(LintCode::ExcessiveDepth), None);
    }

    #[test]
    fn report_renders_and_counts() {
        let config = LintConfig::new();
        let mut sink = Sink::new(&config);
        sink.emit(LintCode::DegenerateChain, "tree", "chain of 6");
        sink.emit(LintCode::HandlerTotality, "A1/O1", "missing handler");
        let report = sink.finish();
        assert!(!report.is_clean());
        assert!(report.has_denials());
        assert_eq!(report.denials().len(), 1);
        let text = report.render();
        assert!(text.contains("warning[CAEX004]"));
        assert!(text.contains("error[CAEX006]"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }
}
