//! Scenario lints: static replay of a [`Scenario`]'s scripted timeline
//! (`CAEX010`–`CAEX013`), the handler family over its bindings, the
//! declaration family over its registry, and the tree family using the
//! *scripted raises* as the per-action raisable set.
//!
//! Scripted raises under-approximate the raisable set (handlers can
//! signal further exceptions at run time), so only lints that are
//! sound under an under-approximation run against them: a non-covering
//! *scripted* pair (`CAEX001`) really can collide, but an
//! unreachable-class report (`CAEX002`) would be speculation and is
//! left to the declaration family.

use crate::diag::{LintCode, Sink};
use caex::thread_engine::ThreadRunner;
use caex::{Event, NestedStrategy, Scenario};
use caex_action::{ActionId, ActionRegistry, HandlerTable};
use caex_net::{NodeId, SimTime};
use caex_tree::ExceptionId;
use std::collections::HashMap;

/// The script surface the replay battery needs — implemented by both
/// the simulator's [`Scenario`] and the threaded [`ThreadRunner`], so
/// one static analysis covers both engines' scripts.
pub(crate) trait ScriptSource {
    fn registry(&self) -> &ActionRegistry;
    fn scripted(&self) -> Box<dyn Iterator<Item = (SimTime, NodeId, &Event)> + '_>;
    fn handler_tables(&self) -> Box<dyn Iterator<Item = (NodeId, ActionId, &HandlerTable)> + '_>;
    /// Declared `nested_remaining` run times; engines without the
    /// declaration surface none.
    fn nested_remaining(&self) -> Vec<(NodeId, ActionId, Option<SimTime>)> {
        Vec::new()
    }
    /// The nested-action strategy the script runs under.
    fn strategy(&self) -> NestedStrategy {
        NestedStrategy::default()
    }
}

impl ScriptSource for Scenario {
    fn registry(&self) -> &ActionRegistry {
        Scenario::registry(self).as_ref()
    }
    fn scripted(&self) -> Box<dyn Iterator<Item = (SimTime, NodeId, &Event)> + '_> {
        Box::new(Scenario::scripted(self))
    }
    fn handler_tables(&self) -> Box<dyn Iterator<Item = (NodeId, ActionId, &HandlerTable)> + '_> {
        Box::new(Scenario::handler_tables(self))
    }
    fn nested_remaining(&self) -> Vec<(NodeId, ActionId, Option<SimTime>)> {
        Scenario::nested_remaining_declared(self).collect()
    }
    fn strategy(&self) -> NestedStrategy {
        Scenario::strategy(self)
    }
}

impl ScriptSource for ThreadRunner {
    fn registry(&self) -> &ActionRegistry {
        ThreadRunner::registry(self).as_ref()
    }
    fn scripted(&self) -> Box<dyn Iterator<Item = (SimTime, NodeId, &Event)> + '_> {
        Box::new(ThreadRunner::scripted(self))
    }
    fn handler_tables(&self) -> Box<dyn Iterator<Item = (NodeId, ActionId, &HandlerTable)> + '_> {
        Box::new(ThreadRunner::handler_tables(self))
    }
}

pub(crate) fn lint_script_into(sink: &mut Sink<'_>, scenario: &dyn ScriptSource) {
    let registry = scenario.registry();

    // Sort the whole scripted timeline once (stable, so equal-time
    // events keep script order, matching the engine) and distribute it
    // to objects in a single linear sweep; the per-object lists come
    // out time-ordered for free.
    let mut timeline: Vec<(SimTime, NodeId, &Event)> = scenario.scripted().collect();
    timeline.sort_by_key(|(t, _, _)| *t);
    let mut per_object: HashMap<NodeId, Vec<&Event>> = HashMap::new();
    for (_, object, event) in timeline {
        per_object.entry(object).or_default().push(event);
    }
    let mut objects: Vec<NodeId> = per_object.keys().copied().collect();
    objects.sort_unstable();

    // Raises actually scripted, attributed to the innermost action the
    // raiser has entered at that time; also: does any action's family
    // see a raise (if so, handlers take over and CAEX011 stays quiet).
    let mut raised_in: HashMap<ActionId, Vec<ExceptionId>> = HashMap::new();
    let any_raise = scenario
        .scripted()
        .any(|(_, _, e)| matches!(e, Event::Raise(_)));

    for &object in &objects {
        let mut stack: Vec<ActionId> = Vec::new();
        for &event in &per_object[&object] {
            match event {
                Event::Enter(a) => {
                    let subject = format!("{a}/{object}");
                    let Ok(scope) = registry.scope(*a) else {
                        sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!("enter of undeclared action {a}"),
                        );
                        continue;
                    };
                    if !scope.is_participant(object) {
                        sink.emit(
                            LintCode::NonParticipantStep,
                            &subject,
                            format!("{object} enters {a} without participating in it"),
                        );
                    }
                    match (scope.parent(), stack.last()) {
                        (None, Some(active)) => sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!(
                                "{object} enters top-level action {a} while already \
                                 inside {active}"
                            ),
                        ),
                        (Some(parent), active) if active != Some(&parent) => sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!(
                                "enter of {a} requires its parent {parent} to be the \
                                 innermost active action (innermost: {:?})",
                                active
                            ),
                        ),
                        _ => {}
                    }
                    stack.push(*a);
                }
                Event::Complete(a) => {
                    let subject = format!("{a}/{object}");
                    match stack.last() {
                        Some(&innermost) if innermost == *a => {
                            stack.pop();
                        }
                        Some(&innermost) => sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!(
                                "complete of {a} while {innermost} is the innermost \
                                 active action"
                            ),
                        ),
                        None => sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!("complete of {a}, which {object} never entered"),
                        ),
                    }
                }
                Event::Raise(exc) => match stack.last() {
                    None => sink.emit(
                        LintCode::UndeclaredRaise,
                        format!("{object}"),
                        format!("raise of {} outside any action", exc.id()),
                    ),
                    Some(&innermost) => {
                        let scope = registry
                            .scope(innermost)
                            .expect("entered actions are declared");
                        let subject = format!("{innermost}/{object}");
                        if !scope.tree().contains(exc.id()) {
                            sink.emit(
                                LintCode::UndeclaredRaise,
                                &subject,
                                format!(
                                    "raise of {}, which is not in the exception tree of \
                                     the active action {innermost}",
                                    exc.id()
                                ),
                            );
                        } else {
                            if let Some(declared) = scope.declared_exceptions() {
                                if !declared.contains(&exc.id()) {
                                    sink.emit(
                                        LintCode::UndeclaredRaise,
                                        &subject,
                                        format!(
                                            "raise of {}, which {innermost} does not \
                                             declare as raisable",
                                            exc.id()
                                        ),
                                    );
                                }
                            }
                            raised_in.entry(innermost).or_default().push(exc.id());
                        }
                    }
                },
                // Only Enter/Complete/Raise are scriptable through the
                // builders; anything else is engine-internal.
                _ => {}
            }
        }

        // CAEX011: entered, never completed, and nothing anywhere can
        // raise — the scenario can only deadlock.
        if !any_raise {
            for &open in &stack {
                sink.emit(
                    LintCode::NeverCompletes,
                    format!("{open}/{object}"),
                    format!(
                        "{object} enters {open} but never completes it, and the script \
                         raises nothing: the action can never commit"
                    ),
                );
            }
        }
    }

    // Tree family per action over the *scripted* raise sets (CAEX002
    // is unsound here, see the module docs — allow it away locally).
    for (action, raisables) in {
        let mut entries: Vec<_> = raised_in.into_iter().collect();
        entries.sort_by_key(|(a, _)| *a);
        entries
    } {
        let scope = registry.scope(action).expect("attributed above");
        let subject = format!("{action} ({}) scripted raises", scope.name());
        // Concurrency matters for CAEX001, duplicates do not: the same
        // class raised twice resolves to itself.
        let mut distinct = raisables;
        distinct.sort_unstable();
        distinct.dedup();
        for (a, b) in scope.tree().non_covering_pairs(&distinct) {
            sink.emit(
                LintCode::NonCoveringPair,
                &subject,
                format!(
                    "scripted raises {a} and {b} only meet at the universal exception: \
                     if they collide, resolution loses all diagnosis"
                ),
            );
        }
    }

    // nested_remaining declarations: the Wait-strategy inputs get the
    // same static scrutiny as handler bindings. A declaration for an
    // undeclared action or a stranger is CAEX013 (it can never be
    // consulted); for a top-level action it is CAEX007 (only nested
    // actions are caught by an outer resolution); and a `None`
    // (never-completes) declaration under the Wait strategy is CAEX011
    // — the Fig. 1(a) configuration where the enclosing resolution
    // waits forever.
    let strategy = scenario.strategy();
    for (object, action, remaining) in scenario.nested_remaining() {
        let Ok(scope) = registry.scope(action) else {
            sink.emit(
                LintCode::NonParticipantStep,
                format!("{action}/{object}"),
                format!("nested_remaining declared for undeclared action {action}"),
            );
            continue;
        };
        let subject = format!("{action} ({})/{object}", scope.name());
        if !scope.is_participant(object) {
            sink.emit(
                LintCode::NonParticipantStep,
                &subject,
                format!(
                    "nested_remaining declared for {object}, which does not participate \
                     in {action}"
                ),
            );
        }
        if scope.parent().is_none() {
            sink.emit(
                LintCode::ScopeContainment,
                &subject,
                format!(
                    "nested_remaining declared for top-level action {action}: only \
                     nested actions are caught by an enclosing resolution, so the \
                     declaration can never be consulted"
                ),
            );
        }
        if remaining.is_none() && strategy == NestedStrategy::Wait {
            sink.emit(
                LintCode::NeverCompletes,
                &subject,
                format!(
                    "{action} is declared to never complete at {object} while the \
                     scenario waits for nested actions instead of aborting them: an \
                     enclosing resolution that catches it waits forever (Fig. 1a)"
                ),
            );
        }
    }

    // Declaration family over the registry (includes the per-tree
    // structural lints), then the handler family over the bindings.
    let scopes: Vec<_> = registry.iter().map(|(id, s)| (id, s.clone())).collect();
    crate::decl::lint_scopes_into(sink, &scopes);
    crate::decl::lint_handlers_into(sink, registry, scenario.handler_tables());
}
