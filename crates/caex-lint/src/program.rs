//! Program lints: static replay of an [`ActionProgram`]'s step lists
//! (`CAEX010`–`CAEX014`), plus the declaration and handler families
//! over its registry.

use crate::diag::{LintCode, Sink};
use caex::program::{ActionProgram, ProgramStep};
use caex_action::ActionId;

/// Lints an [`ActionProgram`] into `sink` by replaying each object's
/// step list against the declarations, without executing anything.
pub(crate) fn lint_program_into(sink: &mut Sink<'_>, program: &ActionProgram) {
    let registry = program.registry();
    let top = program.action();
    let Ok(top_scope) = registry.scope(top) else {
        sink.emit(
            LintCode::NonParticipantStep,
            top.to_string(),
            format!("program targets undeclared action {top}"),
        );
        return;
    };

    // Does any step anywhere introduce an exception? If so, handlers
    // can legitimately take over for objects that never complete, and
    // CAEX011 stays quiet.
    let any_fallible = program.objects().iter().any(|&o| {
        program
            .steps_of(o)
            .iter()
            .any(|s| matches!(s, ProgramStep::Check | ProgramStep::Raise(_)))
    });

    for object in program.objects() {
        let subject = format!("{top} ({})/{object}", top_scope.name());

        // CAEX013: a program for a stranger to the top action.
        if !top_scope.is_participant(object) {
            sink.emit(
                LintCode::NonParticipantStep,
                &subject,
                format!("program steps for {object}, which does not participate in {top}"),
            );
            continue;
        }

        // Replay: every participant starts inside the top action
        // (`run` enters all of them at time zero).
        let mut stack: Vec<ActionId> = vec![top];
        let mut completed = false;
        for step in program.steps_of(object) {
            if completed {
                sink.emit(
                    LintCode::EnterImbalance,
                    &subject,
                    "program continues after `complete()`; those steps can never run",
                );
                break;
            }
            match step {
                ProgramStep::Work(_) | ProgramStep::Check => {}
                ProgramStep::Raise(exc) => {
                    let innermost = *stack.last().expect("stack holds at least the top action");
                    let scope = registry
                        .scope(innermost)
                        .expect("entered actions are declared");
                    if !scope.tree().contains(exc) {
                        sink.emit(
                            LintCode::UndeclaredRaise,
                            &subject,
                            format!(
                                "raise of {exc}, which is not in the exception tree of \
                                 the active action {innermost}"
                            ),
                        );
                    } else if let Some(declared) = scope.declared_exceptions() {
                        if !declared.contains(&exc) {
                            sink.emit(
                                LintCode::UndeclaredRaise,
                                &subject,
                                format!(
                                    "raise of {exc}, which {innermost} does not declare \
                                     as raisable"
                                ),
                            );
                        }
                    }
                }
                ProgramStep::Enter(a) => {
                    let Ok(scope) = registry.scope(a) else {
                        sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!("enter of undeclared action {a}"),
                        );
                        continue;
                    };
                    if !scope.is_participant(object) {
                        sink.emit(
                            LintCode::NonParticipantStep,
                            &subject,
                            format!("{object} enters {a} without participating in it"),
                        );
                    }
                    let innermost = *stack.last().expect("non-empty");
                    if scope.parent() != Some(innermost) {
                        sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!(
                                "enter of {a}, which is not declared as directly nested \
                                 in the active action {innermost}"
                            ),
                        );
                    }
                    stack.push(a);
                }
                ProgramStep::Leave(a) => {
                    if stack.len() == 1 {
                        sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!("leave of {a} with no nested action active (use `complete()` for the top-level action)"),
                        );
                    } else if *stack.last().expect("non-empty") != a {
                        sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!(
                                "leave of {a} while {} is the innermost active action",
                                stack.last().expect("non-empty")
                            ),
                        );
                    } else {
                        stack.pop();
                    }
                }
                ProgramStep::Complete => {
                    if stack.len() > 1 {
                        sink.emit(
                            LintCode::EnterImbalance,
                            &subject,
                            format!(
                                "`complete()` while nested action {} is still active",
                                stack.last().expect("non-empty")
                            ),
                        );
                    }
                    completed = true;
                }
            }
        }

        // CAEX011: certain deadlock — no completion and nothing that
        // could hand control to the handlers.
        if !completed && !any_fallible {
            sink.emit(
                LintCode::NeverCompletes,
                &subject,
                format!(
                    "{object} enters {top} but its program never completes, and no step \
                     anywhere raises: the action can never commit"
                ),
            );
        }
    }

    // CAEX014 / CAEX011 for declared participants with no program.
    let programmed = program.objects();
    for &p in top_scope.participants() {
        if !programmed.contains(&p) {
            let subject = format!("{top} ({})/{p}", top_scope.name());
            sink.emit(
                LintCode::UnenteredParticipant,
                &subject,
                format!("declared participant {p} has no program; it is entered with {top} but contributes nothing"),
            );
            if !any_fallible {
                sink.emit(
                    LintCode::NeverCompletes,
                    &subject,
                    format!(
                        "{p} is entered into {top} with no program and never completes, \
                         and no step anywhere raises: the action can never commit"
                    ),
                );
            }
        }
    }

    // Declaration + handler families over the program's context.
    let scopes: Vec<_> = registry.iter().map(|(id, s)| (id, s.clone())).collect();
    crate::decl::lint_scopes_into(sink, &scopes);
    crate::decl::lint_handlers_into(sink, registry, program.handler_tables());
}
