//! Bounded explicit-state model checking of the §4.2 resolution
//! protocol (`CAEX015`–`CAEX019`).
//!
//! The seed-sweep explorer (`caex::explore`) samples message
//! interleavings through latency draws; this module *enumerates* them.
//! A [`Scenario`] is lifted into an abstract transition system whose
//! states are the joint protocol state of every participant plus the
//! FIFO channel contents ([`caex_net::ChannelState`]), and whose
//! transitions are:
//!
//! - **deliver** — pop the head of one nonempty FIFO channel and hand
//!   it to the destination participant (message latencies are
//!   abstracted away: any nonempty channel may deliver next, which is
//!   the union of all latency assignments);
//! - **local** — deliver the next `Effect::After` continuation queued
//!   at a node (handler and abortion costs are likewise abstracted);
//! - **script** — fire the next scripted event, gated by global
//!   time order: an event at time *t* becomes eligible only once every
//!   scripted event with a smaller time has fired, equal-time events of
//!   one object keep script order, and equal-time events of different
//!   objects interleave freely — exactly the engine's guarantee;
//! - **grant** — the Managed-leave manager's `LeaveGranted`, emulated
//!   atomically when the last live participant reaches the exit line
//!   (grants are a per-node *set*, so manager fan-out commutes and the
//!   partial-order reduction below stays sound);
//! - **crash** — only during the `CAEX018` sweep: a node deserts, its
//!   channels drop and every survivor folds the desertion in via
//!   [`Participant::on_deserter`].
//!
//! One deliberate abstraction keeps the system faithful: a scripted
//! `Raise` that the protocol *outran* — the raiser already left every
//! action, or the innermost action's single resolution already
//! committed — is discharged as a void step: in the simulator the
//! raise fires at its exact virtual time, long before multi-hop
//! resolution can complete under the configured latencies, so those
//! schedules correspond to no run of the scripted scenario.
//!
//! The DFS carries concrete worlds: checkable scenarios only install
//! declarative handlers, so a world forks in `O(state)` via
//! [`Participant::clone_declarative`] (single-successor chains move
//! the parent world instead of forking at all). States are
//! canonicalized by hashing ([`Participant::protocol_digest`] plus the
//! channel, continuation, script and manager state) and the
//! enumeration is pruned two ways:
//!
//! - **sleep sets** — transitions targeting different objects commute
//!   (each appends to channel backs and pops only its own inputs), so
//!   one representative order per commuting class suffices. A cached
//!   state is skipped only when a recorded sleep set is a subset of
//!   the current one, which keeps the cache interaction sound;
//! - **τ-confluence** — a delivery the destination classifies as
//!   invisible ([`Participant::delivery_silence`]: provably stale, a
//!   dead ACK, or parked/aborting-phase bookkeeping) is chained as the
//!   *sole* successor of its state instead of branching, provided the
//!   world-level co-enablement guards for the weaker
//!   [`Silence::WhenNodeIdle`](caex::Silence) class hold (no pending
//!   leave grant, only `AbortionDone` continuations queued locally,
//!   and no competing same-node channel head that could clear or
//!   replace the resolution in between).
//!
//! Every counterexample is validated before it is reported: the trace
//! is replayed step by step through fresh instances of the engine's
//! own [`Participant`] state machine and the violation must recur
//! ([`ModelViolation::replay_confirmed`]). The CLI's `check --model`
//! mode additionally cross-checks the verdict against the dynamic
//! seed sweep.

use crate::diag::{LintCode, Severity, Sink};
use caex::{Effect, Event, LeaveMode, Msg, Note, Participant, Scenario};
use caex_action::{ActionId, ActionRegistry, HandlerTable};
use caex_net::{ChannelState, NodeId, SimTime};
use caex_tree::{ExceptionId, ExceptionTree, ReducedTree};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Exploration budgets. The defaults verify the paper's Examples 1
/// and 2 exhaustively; raise them for bigger scopes, lower them for
/// debug-profile tests.
#[derive(Debug, Clone, Copy)]
pub struct ModelLimits {
    /// Maximum distinct states to visit before giving up
    /// ([`ModelReport::complete`] turns `false`).
    pub max_states: usize,
    /// Maximum transition-trace length (a runaway-loop backstop; the
    /// protocol itself is loop-free per action).
    pub max_trace: usize,
}

impl Default for ModelLimits {
    fn default() -> Self {
        ModelLimits {
            max_states: 200_000,
            max_trace: 4_096,
        }
    }
}

/// What to check, beyond the always-on safety and quiescence
/// properties.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelOptions {
    /// Exploration budgets.
    pub limits: ModelLimits,
    /// Run the `CAEX018` resolver-crash sweep: take the first
    /// violation-free terminal trace, crash the elected resolver after
    /// every prefix and exhaustively verify that the survivors still
    /// quiesce normally.
    pub crash_sweep: bool,
}

impl ModelOptions {
    /// Options with the default budgets and the crash sweep enabled.
    #[must_use]
    pub fn with_crash_sweep() -> Self {
        ModelOptions {
            crash_sweep: true,
            ..ModelOptions::default()
        }
    }
}

/// Counters describing one exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelStats {
    /// Distinct canonical states visited.
    pub states: usize,
    /// Transitions applied (including replays' final steps).
    pub transitions: u64,
    /// Revisits pruned by the state cache.
    pub deduped: u64,
    /// Enabled transitions skipped by sleep sets.
    pub sleep_skips: u64,
    /// States where a τ-confluent silent delivery was chained as the
    /// sole successor instead of branching.
    pub silent_chains: u64,
}

impl ModelStats {
    fn absorb(&mut self, other: ModelStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.deduped += other.deduped;
        self.sleep_skips += other.sleep_skips;
        self.silent_chains += other.silent_chains;
    }
}

/// One property violation with its replayable counterexample.
#[derive(Debug, Clone)]
pub struct ModelViolation {
    /// The diagnostic the violation maps to (`CAEX015`–`CAEX018`).
    pub code: LintCode,
    /// What broke.
    pub detail: String,
    /// The counterexample, one rendered transition per line.
    pub trace: Vec<String>,
    /// `true` when replaying the trace through fresh participants
    /// reproduced the violation — every reported counterexample should
    /// be confirmed; an unconfirmed one indicates checker
    /// nondeterminism and is itself reported by the CLI.
    pub replay_confirmed: bool,
}

/// The result of model-checking one scenario.
#[derive(Debug, Default)]
pub struct ModelReport {
    /// Exploration counters (all modes summed, crash sweep included).
    pub stats: ModelStats,
    /// `true` when every reachable state within the budgets was
    /// visited — the verdict is exhaustive, not sampled.
    pub complete: bool,
    /// `Some(reason)` when the scenario cannot be checked (opaque
    /// handler closures or exit-line acceptance tests); no violations
    /// are reported in that case.
    pub skipped: Option<String>,
    /// Every distinct violation found.
    pub violations: Vec<ModelViolation>,
    /// Every `(action, resolved class)` committed on some explored
    /// path — the oracle surface for cross-checks against the dynamic
    /// engine.
    pub commits: BTreeSet<(ActionId, ExceptionId)>,
    /// Number of crash points the `CAEX018` sweep covered.
    pub crash_points: usize,
}

impl ModelReport {
    /// `true` when the scenario was checked and nothing fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.skipped.is_none() && self.violations.is_empty()
    }

    /// `true` when the scenario was *exhaustively* verified clean.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.is_clean() && self.complete
    }
}

// ---------------------------------------------------------------------
// The abstract transition system.
// ---------------------------------------------------------------------

/// One transition. `Ord` gives the deterministic exploration order and
/// lets sleep sets live in `BTreeSet`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Step {
    /// Pop the head of channel `from → to` and deliver it.
    Deliver { from: NodeId, to: NodeId },
    /// Deliver the next queued `Effect::After` continuation at `node`.
    Local { node: NodeId },
    /// Deliver a pending manager `LeaveGranted` to `node`.
    Grant { node: NodeId, action: ActionId },
    /// Fire scripted event `index`.
    Script { index: u32 },
    /// Crash `node` (crash-sweep prefixes only; never enumerated).
    Crash { node: NodeId },
}

/// The checkable essence of a [`Scenario`]: registry, declarative
/// handler templates and the sorted script. Extraction fails (the
/// scenario is *skipped*, not failed) when the scenario holds state
/// the checker cannot replicate.
struct Spec {
    registry: Arc<ActionRegistry>,
    strategy: caex::NestedStrategy,
    leave_mode: LeaveMode,
    resolver_group: u32,
    failover: bool,
    num_nodes: u32,
    handlers: Vec<(NodeId, ActionId, HandlerTable)>,
    nested_remaining: Vec<(NodeId, ActionId, Option<SimTime>)>,
    script: Vec<(SimTime, NodeId, Event)>,
}

impl Spec {
    fn from_scenario(scenario: &Scenario) -> Result<Spec, String> {
        let accepted = scenario.acceptance_actions();
        if !accepted.is_empty() {
            return Err(format!(
                "exit-line acceptance tests on {accepted:?} are opaque closures the \
                 checker cannot enumerate"
            ));
        }
        let mut handlers = Vec::new();
        for (object, action, table) in scenario.handler_tables() {
            match table.clone_declarative() {
                Some(copy) => handlers.push((object, action, copy)),
                None => {
                    return Err(format!(
                        "handler table of {object} for {action} contains opaque closures; \
                         declare outcomes with on_outcome/on_abort_outcome to make the \
                         scenario checkable"
                    ))
                }
            }
        }
        let mut script: Vec<(SimTime, NodeId, Event)> = scenario
            .scripted()
            .map(|(t, o, e)| (t, o, e.clone()))
            .collect();
        // Stable: equal-time events keep script order, as the engine's
        // scheduler does.
        script.sort_by_key(|(t, _, _)| *t);
        let registry = Arc::clone(Scenario::registry(scenario));
        let num_nodes = registry
            .iter()
            .flat_map(|(_, s)| s.participants().iter().copied())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        Ok(Spec {
            strategy: scenario.strategy(),
            leave_mode: scenario.leave_mode(),
            resolver_group: scenario.resolver_group_size(),
            failover: scenario.failover(),
            num_nodes,
            handlers,
            nested_remaining: scenario.nested_remaining_declared().collect(),
            script,
            registry,
        })
    }

    fn step_target(&self, step: Step) -> NodeId {
        match step {
            Step::Deliver { to, .. } => to,
            Step::Local { node } | Step::Grant { node, .. } | Step::Crash { node } => node,
            Step::Script { index } => self.script[index as usize].1,
        }
    }
}

/// One concrete global state. The DFS carries worlds directly:
/// checkable scenarios only install declarative handlers, so a world
/// forks cheaply via [`World::fork`] / [`Participant::clone_declarative`]
/// (counterexample traces are still replayed from the initial state
/// for confirmation).
struct World<'s> {
    spec: &'s Spec,
    parts: BTreeMap<NodeId, Participant>,
    channels: ChannelState<Msg>,
    /// Pending `Effect::After` continuations, FIFO per node. Only the
    /// node's own transitions push here, so cross-target commutation
    /// is preserved.
    local: BTreeMap<NodeId, VecDeque<Event>>,
    /// Pending manager leave-grants (set semantics: fan-out commutes).
    grants: BTreeMap<NodeId, BTreeSet<ActionId>>,
    leave_waiting: BTreeMap<ActionId, BTreeSet<NodeId>>,
    granted: BTreeSet<ActionId>,
    fired: Vec<bool>,
    crashed: BTreeSet<NodeId>,
    raises: u32,
    commits: Vec<(ActionId, NodeId, ExceptionId)>,
    committed_class: BTreeMap<ActionId, ExceptionId>,
    /// Safety violations detected while applying transitions.
    faults: Vec<(LintCode, String)>,
    /// Paper-notation rendering of each applied step, when enabled.
    log: Option<Vec<String>>,
}

impl<'s> World<'s> {
    fn new(spec: &'s Spec) -> World<'s> {
        let parts = (0..spec.num_nodes)
            .map(NodeId::new)
            .map(|id| {
                let mut p = Participant::new(id, Arc::clone(&spec.registry), spec.strategy);
                p.set_resolver_group(spec.resolver_group);
                p.set_leave_mode(spec.leave_mode);
                p.set_failover(spec.failover);
                (id, p)
            })
            .collect::<BTreeMap<_, _>>();
        let mut world = World {
            spec,
            parts,
            channels: ChannelState::new(),
            local: BTreeMap::new(),
            grants: BTreeMap::new(),
            leave_waiting: BTreeMap::new(),
            granted: BTreeSet::new(),
            fired: vec![false; spec.script.len()],
            crashed: BTreeSet::new(),
            raises: 0,
            commits: Vec::new(),
            committed_class: BTreeMap::new(),
            faults: Vec::new(),
            log: None,
        };
        for (object, action, table) in &spec.handlers {
            let copy = table
                .clone_declarative()
                .expect("templates are declarative by construction");
            world
                .parts
                .get_mut(object)
                .expect("handler for unknown object")
                .set_handlers(*action, copy);
        }
        for &(object, action, remaining) in &spec.nested_remaining {
            world
                .parts
                .get_mut(&object)
                .expect("nested_remaining for unknown object")
                .set_nested_remaining(action, remaining);
        }
        world
    }

    /// A deep copy of this state for DFS branching. Checkable
    /// scenarios hold only declarative handler tables
    /// ([`Spec::from_scenario`] rejects the rest), so participants
    /// always clone. The log is never forked: counterexamples are
    /// re-rendered by replaying their trace.
    fn fork(&self) -> World<'s> {
        World {
            spec: self.spec,
            parts: self
                .parts
                .iter()
                .map(|(&id, p)| {
                    (id, p.clone_declarative().expect("checkable participants clone"))
                })
                .collect(),
            channels: self.channels.clone(),
            local: self.local.clone(),
            grants: self.grants.clone(),
            leave_waiting: self.leave_waiting.clone(),
            granted: self.granted.clone(),
            fired: self.fired.clone(),
            crashed: self.crashed.clone(),
            raises: self.raises,
            commits: self.commits.clone(),
            committed_class: self.committed_class.clone(),
            faults: self.faults.clone(),
            log: None,
        }
    }

    fn note_log(&mut self, line: impl FnOnce() -> String) {
        if let Some(log) = &mut self.log {
            log.push(line());
        }
    }

    /// Every transition enabled in this state, in deterministic order.
    fn enabled(&self) -> Vec<Step> {
        let mut out = Vec::new();
        for (from, to) in self.channels.nonempty_channels() {
            out.push(Step::Deliver { from, to });
        }
        for (&node, queue) in &self.local {
            if !queue.is_empty() {
                out.push(Step::Local { node });
            }
        }
        for (&node, actions) in &self.grants {
            for &action in actions {
                out.push(Step::Grant { node, action });
            }
        }
        // Script events: global time order; per object, only the
        // earliest unfired event of the frontier time is eligible.
        let frontier = self
            .spec
            .script
            .iter()
            .zip(&self.fired)
            .filter(|(_, fired)| !**fired)
            .map(|((t, _, _), _)| *t)
            .min();
        if let Some(t0) = frontier {
            let mut seen: BTreeSet<NodeId> = BTreeSet::new();
            for (i, ((t, object, _), fired)) in
                self.spec.script.iter().zip(&self.fired).enumerate()
            {
                if !*fired && *t == t0 && seen.insert(*object) {
                    out.push(Step::Script { index: i as u32 });
                }
            }
        }
        out
    }

    /// A delivery whose processing is provably invisible — see
    /// [`Participant::delivery_silence`]. Such a step commutes with
    /// every co-enabled transition, so the explorer applies it
    /// deterministically instead of branching (a τ-confluence
    /// reduction): the ACK storms, post-commit cleanup and parked-node
    /// bookkeeping that dominate broadcast interleavings collapse to
    /// one chain.
    ///
    /// [`Silence::WhenNodeIdle`] candidates additionally require that
    /// nothing else co-enabled can act on the same node first with a
    /// different outcome:
    ///
    /// - no pending leave grant (granted leave mutates the nesting
    ///   stack the premise reads);
    /// - queued local continuations only if they are all
    ///   `AbortionDone` (the one continuation the silence proof
    ///   commutes with — a handler completion could pop the active
    ///   action);
    /// - no other channel head carrying a `Commit` or another action's
    ///   message (either could clear or replace the resolution the
    ///   premise reads, or pre-empt the delivery's ACK reply into
    ///   staleness).
    ///
    /// Scripted events need no guard: every `WhenNodeIdle` class
    /// requires `res` to be in place, and at such a node a scripted
    /// `Enter` is skipped, a `Raise` is suppressed and a `Complete` is
    /// overtaken — all note-only no-ops that commute.
    fn silent_step(&self) -> Option<Step> {
        let heads = self.channels.nonempty_channels();
        'candidates: for &(from, to) in &heads {
            let msg = self.channels.front(from, to).expect("nonempty channel");
            match self.parts[&to].delivery_silence(msg) {
                None => continue,
                Some(caex::Silence::Always) => {}
                Some(caex::Silence::WhenNodeIdle) => {
                    if self.grants.contains_key(&to) {
                        continue;
                    }
                    if let Some(queue) = self.local.get(&to) {
                        if !queue
                            .iter()
                            .all(|e| matches!(e, Event::AbortionDone { .. }))
                        {
                            continue;
                        }
                    }
                    for &(f2, t2) in &heads {
                        if t2 != to || f2 == from {
                            continue;
                        }
                        let other = self.channels.front(f2, t2).expect("nonempty channel");
                        if matches!(other, Msg::Commit { .. }) || other.action() != msg.action() {
                            continue 'candidates;
                        }
                    }
                }
            }
            return Some(Step::Deliver { from, to });
        }
        None
    }

    fn apply(&mut self, step: Step) {
        match step {
            Step::Deliver { from, to } => {
                let msg = self.channels.pop(from, to).expect("enabled delivery");
                self.note_log(|| format!("deliver {from}→{to}: {msg}"));
                self.dispatch(to, Event::Msg(msg));
            }
            Step::Local { node } => {
                let queue = self.local.get_mut(&node).expect("enabled continuation");
                let event = queue.pop_front().expect("enabled continuation");
                if queue.is_empty() {
                    // Canonical digests: no empty queues linger.
                    self.local.remove(&node);
                }
                self.note_log(|| format!("continue at {node}: {}", render_event(&event)));
                self.dispatch(node, event);
            }
            Step::Grant { node, action } => {
                let actions = self.grants.get_mut(&node).expect("enabled grant");
                actions.remove(&action);
                if actions.is_empty() {
                    self.grants.remove(&node);
                }
                self.note_log(|| format!("manager grants leave of {action} to {node}"));
                self.dispatch(node, Event::LeaveGranted(action));
            }
            Step::Script { index } => {
                self.fired[index as usize] = true;
                let (time, object, event) = self.spec.script[index as usize].clone();
                if matches!(event, Event::Raise(_)) {
                    // Scripted raises belong to the action's computation
                    // phase. In schedules where the protocol outran the
                    // script — the raiser already left every action, or
                    // the innermost action's one resolution already
                    // committed — the raise is void (see module docs):
                    // under the simulator's positive latencies the raise
                    // always fires long before either can happen.
                    let active = self.parts.get(&object).and_then(Participant::active_action);
                    let outrun = match active {
                        None => true,
                        Some(action) => self.committed_class.contains_key(&action),
                    };
                    if outrun {
                        self.note_log(|| {
                            format!(
                                "script t={time} at {object}: raise voided (the protocol \
                                 outran the script here)"
                            )
                        });
                        return;
                    }
                }
                self.note_log(|| format!("script t={time} at {object}: {}", render_event(&event)));
                self.dispatch(object, event);
            }
            Step::Crash { node } => self.crash(node),
        }
    }

    fn dispatch(&mut self, node: NodeId, event: Event) {
        let effects = self
            .parts
            .get_mut(&node)
            .expect("dispatch to unknown node")
            .handle(event);
        self.absorb(node, effects);
    }

    fn absorb(&mut self, from: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    if !self.crashed.contains(&to) {
                        self.channels.send(from, to, msg);
                    }
                }
                Effect::After { event, .. } => {
                    self.local.entry(from).or_default().push_back(event);
                }
                Effect::Note(note) => self.observe(note),
            }
        }
    }

    /// Folds a report note into the observation state, checking the
    /// per-commit safety properties as they happen.
    fn observe(&mut self, note: Note) {
        match note {
            Note::Raised { object, action, exc } => {
                self.note_log(|| format!("  note: {object} raised {} in {action}", exc.id()));
                self.raises += 1;
            }
            Note::ResolutionCommitted {
                action,
                resolver,
                resolved,
                raised,
            } => {
                self.check_commit(action, resolver, &resolved, &raised);
                self.commits.push((action, resolver, resolved.id()));
            }
            Note::HandlerStarted {
                object,
                action,
                exc,
                ..
            } => match self.committed_class.get(&action) {
                Some(&agreed) if agreed == exc.id() => {}
                Some(&agreed) => self.faults.push((
                    LintCode::ModelWrongResolution,
                    format!(
                        "{object} started a handler for {} in {action} but the committed \
                         resolution is {agreed}: agreement violated",
                        exc.id()
                    ),
                )),
                None => self.faults.push((
                    LintCode::ModelWrongResolution,
                    format!(
                        "{object} started a handler for {} in {action} before any \
                         resolution committed there",
                        exc.id()
                    ),
                )),
            },
            Note::LeaveRequested { object, action }
                if self.spec.leave_mode == LeaveMode::Managed =>
            {
                self.leave_waiting.entry(action).or_default().insert(object);
                self.try_grant(action);
            }
            _ => {}
        }
    }

    fn check_commit(
        &mut self,
        action: ActionId,
        resolver: NodeId,
        resolved: &caex_tree::Exception,
        raised: &[(NodeId, caex_tree::Exception)],
    ) {
        self.note_log(|| {
            format!(
                "  note: {resolver} committed {} for {action} over {:?}",
                resolved.id(),
                raised.iter().map(|(o, e)| (o.index(), e.id())).collect::<Vec<_>>()
            )
        });
        let scope = self
            .spec
            .registry
            .scope(action)
            .expect("committed actions are declared");
        match scope.tree().resolve(raised.iter().map(|(_, e)| e.id())) {
            Ok(oracle) if oracle == resolved.id() => {}
            Ok(oracle) => self.faults.push((
                LintCode::ModelWrongResolution,
                format!(
                    "resolution in {action} committed {} but the LCA of the raised set \
                     is {oracle} (ExceptionTree::resolve oracle)",
                    resolved.id()
                ),
            )),
            Err(_) => self.faults.push((
                LintCode::ModelWrongResolution,
                format!(
                    "resolution in {action} committed over a raised set outside the \
                     action's exception tree"
                ),
            )),
        }
        // §4.2 election, failover-adjusted: a deserted raiser's
        // exceptions stay in the resolved set (ghost entries) but its
        // id no longer votes, so the committing resolver must be the
        // max *live* raiser of the set.
        if let Some(max) = raised
            .iter()
            .map(|(o, _)| *o)
            .filter(|o| !self.crashed.contains(o))
            .max()
        {
            if max != resolver {
                self.faults.push((
                    LintCode::ModelWrongResolution,
                    format!(
                        "resolver {resolver} committed in {action} but the max live \
                         raiser of the resolved set is {max} (§4.2 election)"
                    ),
                ));
            }
        }
        if let Some(previous) = self.committed_class.insert(action, resolved.id()) {
            if previous != resolved.id() {
                self.faults.push((
                    LintCode::ModelWrongResolution,
                    format!(
                        "{action} committed twice with different classes: {previous} \
                         then {}",
                        resolved.id()
                    ),
                ));
            }
        }
    }

    /// Managed-leave manager: grant once the full live participant set
    /// of `action` is at the exit line.
    fn try_grant(&mut self, action: ActionId) {
        if self.granted.contains(&action) {
            return;
        }
        let everyone: BTreeSet<NodeId> = self
            .spec
            .registry
            .scope(action)
            .expect("leave of a declared action")
            .participants()
            .iter()
            .copied()
            .filter(|p| !self.crashed.contains(p))
            .collect();
        let waiting = self.leave_waiting.entry(action).or_default();
        if !everyone.is_empty() && everyone.iter().all(|m| waiting.contains(m)) {
            self.granted.insert(action);
            for &member in &everyone {
                self.grants.entry(member).or_default().insert(action);
            }
        }
    }

    /// A node deserts: drop its channels, queues and remaining script,
    /// fold the desertion into every survivor, and re-evaluate the
    /// manager's exit lines without it.
    fn crash(&mut self, node: NodeId) {
        self.note_log(|| format!("crash {node} (deserter)"));
        self.crashed.insert(node);
        self.channels.drop_node(node);
        self.local.remove(&node);
        self.grants.remove(&node);
        for (i, (_, object, _)) in self.spec.script.iter().enumerate() {
            if *object == node {
                self.fired[i] = true;
            }
        }
        let survivors: Vec<NodeId> = self
            .parts
            .keys()
            .copied()
            .filter(|n| !self.crashed.contains(n))
            .collect();
        for survivor in survivors {
            let effects = self
                .parts
                .get_mut(&survivor)
                .expect("survivor exists")
                .on_deserter(node);
            self.absorb(survivor, effects);
        }
        if self.spec.leave_mode == LeaveMode::Managed {
            let actions: Vec<ActionId> = self.leave_waiting.keys().copied().collect();
            for action in actions {
                self.leave_waiting
                    .get_mut(&action)
                    .expect("listed key")
                    .remove(&node);
                self.try_grant(action);
            }
        }
    }

    /// Live participants that are not back to quiescent normal
    /// computation. Without crashes, an object still *inside* an
    /// action at global quiescence is stuck too (nothing scripted can
    /// ever complete it); after a desertion, an orphan-discarded
    /// survivor legitimately resumes normal computation inside the
    /// action — its own remaining computation (invisible to the
    /// script) would complete it — so only mid-resolution objects
    /// count.
    fn stuck_live(&self, crash_mode: bool) -> Vec<String> {
        self.parts
            .values()
            .filter(|p| !self.crashed.contains(&p.id()))
            .filter_map(|p| {
                if !p.is_normal() {
                    Some(format!("{} (mid-resolution)", p.id()))
                } else if let (false, Some(action)) = (crash_mode, p.active_action()) {
                    Some(format!("{} (inside {action})", p.id()))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Canonical state digest. Run-constant configuration is excluded;
    /// everything order-sensitive is hashed through sorted views.
    fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for p in self.parts.values() {
            p.protocol_digest(&mut h);
        }
        self.channels.hash(&mut h);
        self.local.hash(&mut h);
        self.grants.hash(&mut h);
        self.leave_waiting.hash(&mut h);
        self.granted.hash(&mut h);
        self.fired.hash(&mut h);
        self.crashed.hash(&mut h);
        h.finish()
    }
}

fn render_event(event: &Event) -> String {
    match event {
        Event::Msg(msg) => msg.to_string(),
        Event::Enter(a) => format!("Enter({a})"),
        Event::Complete(a) => format!("Complete({a})"),
        Event::Raise(exc) => format!("Raise({})", exc.id()),
        Event::LeaveGranted(a) => format!("LeaveGranted({a})"),
        Event::AbortionDone { action, .. } => format!("AbortionDone({action})"),
        Event::HandlerDone { action, .. } => format!("HandlerDone({action})"),
        Event::DeserterSuspected { peer } => format!("DeserterSuspected({peer})"),
        Event::PeerSuspected { peer } => format!("PeerSuspected({peer})"),
        Event::PeerRejoined { peer } => format!("PeerRejoined({peer})"),
    }
}

// ---------------------------------------------------------------------
// The explorer: DFS with state caching and sleep sets.
// ---------------------------------------------------------------------

struct Explorer<'s> {
    spec: &'s Spec,
    limits: ModelLimits,
    /// Steps applied before every explored trace (crash-sweep prefix).
    prefix: Vec<Step>,
    /// Crash mode: quiescence requires only the *survivors* to be
    /// normal, and a raise without a commit is acceptable (the only
    /// raiser may have deserted).
    crash_mode: bool,
    visited: HashMap<u64, Vec<BTreeSet<Step>>>,
    stats: ModelStats,
    complete: bool,
    violations: Vec<ModelViolation>,
    seen: BTreeSet<(&'static str, String)>,
    /// First violation-free terminal trace that committed a
    /// resolution — the canonical run the crash sweep perturbs.
    canonical: Option<Vec<Step>>,
    commits: BTreeSet<(ActionId, ExceptionId)>,
}

impl<'s> Explorer<'s> {
    fn new(spec: &'s Spec, limits: ModelLimits, prefix: Vec<Step>, crash_mode: bool) -> Self {
        Explorer {
            spec,
            limits,
            prefix,
            crash_mode,
            visited: HashMap::new(),
            stats: ModelStats::default(),
            complete: true,
            violations: Vec::new(),
            seen: BTreeSet::new(),
            canonical: None,
            commits: BTreeSet::new(),
        }
    }

    fn independent(&self, a: Step, b: Step) -> bool {
        self.spec.step_target(a) != self.spec.step_target(b)
    }

    fn run(&mut self) {
        // Clone-based DFS: each stack entry carries its concrete
        // [`World`], forked from its parent at push time, so visiting a
        // state costs one transition instead of an O(depth) replay from
        // the root. The chain-heavy shape of the reduced space makes
        // most expansions single-child, and those *move* the parent
        // world instead of forking it.
        let mut root = World::new(self.spec);
        for &step in &self.prefix {
            root.apply(step);
        }
        let base_faults = root.faults.len();
        let mut stack: Vec<(World<'s>, Vec<Step>, BTreeSet<Step>)> =
            vec![(root, Vec::new(), BTreeSet::new())];
        while let Some((world, trace, sleep)) = stack.pop() {
            if self.stats.states >= self.limits.max_states {
                self.complete = false;
                return;
            }
            if self.prefix.len() + trace.len() >= self.limits.max_trace {
                self.complete = false;
                continue;
            }
            if world.faults.len() > base_faults {
                let fresh: Vec<(LintCode, String)> = world.faults[base_faults..].to_vec();
                for (code, detail) in fresh {
                    self.report(code, detail, &trace);
                }
                // Prune below safety violations: every extension would
                // re-report the same broken commit.
                continue;
            }
            let digest = world.digest();
            let entry = self.visited.entry(digest).or_default();
            if entry.iter().any(|s| s.is_subset(&sleep)) {
                self.stats.deduped += 1;
                continue;
            }
            entry.push(sleep.clone());
            self.stats.states += 1;
            let enabled = world.enabled();
            if enabled.is_empty() {
                self.on_terminal(&world, &trace);
                continue;
            }
            let explorable: Vec<Step> = match world.silent_step() {
                // τ-confluence: chain the silent delivery as the sole
                // successor (taking it even when slept is sound — the
                // state cache absorbs any re-visit).
                Some(step) => {
                    self.stats.silent_chains += 1;
                    vec![step]
                }
                None => {
                    let explorable: Vec<Step> = enabled
                        .iter()
                        .copied()
                        .filter(|s| !sleep.contains(s))
                        .collect();
                    self.stats.sleep_skips += (enabled.len() - explorable.len()) as u64;
                    explorable
                }
            };
            let Some((&first, rest)) = explorable.split_first() else {
                continue;
            };
            // Siblings after the first fork the parent world; pushed in
            // reverse so the first explorable step is explored first.
            for (i, &step) in rest.iter().enumerate().rev() {
                let idx = i + 1;
                let mut child_sleep: BTreeSet<Step> = sleep
                    .iter()
                    .copied()
                    .filter(|&s| self.independent(s, step))
                    .collect();
                child_sleep.extend(
                    explorable[..idx]
                        .iter()
                        .copied()
                        .filter(|&s| self.independent(s, step)),
                );
                let mut child_world = world.fork();
                child_world.apply(step);
                self.stats.transitions += 1;
                let mut child = trace.clone();
                child.push(step);
                stack.push((child_world, child, child_sleep));
            }
            // The first child takes over the parent world by move — on
            // the dominant single-successor chains this makes each state
            // cost exactly one transition and zero forks.
            let child_sleep: BTreeSet<Step> = sleep
                .iter()
                .copied()
                .filter(|&s| self.independent(s, first))
                .collect();
            let mut child_world = world;
            child_world.apply(first);
            self.stats.transitions += 1;
            let mut child = trace;
            child.push(first);
            stack.push((child_world, child, child_sleep));
        }
    }

    fn on_terminal(&mut self, world: &World<'_>, trace: &[Step]) {
        let stuck = world.stuck_live(self.crash_mode);
        if !stuck.is_empty() {
            let code = if self.crash_mode {
                LintCode::ModelCrashVulnerable
            } else {
                LintCode::ModelDeadlock
            };
            let detail = if self.crash_mode {
                format!(
                    "after the resolver crash, the survivors quiesce stuck: {}",
                    stuck.join(", ")
                )
            } else {
                format!("quiescent state with stuck objects: {}", stuck.join(", "))
            };
            self.report(code, detail, trace);
        } else if !self.crash_mode && world.raises > 0 && world.commits.is_empty() {
            self.report(
                LintCode::ModelUnresolved,
                format!(
                    "{} exception(s) were raised but the run quiesced without any \
                     resolution commit",
                    world.raises
                ),
                trace,
            );
        } else if !self.crash_mode && self.canonical.is_none() && !world.commits.is_empty() {
            self.canonical = Some(trace.to_vec());
        }
        self.commits
            .extend(world.commits.iter().map(|&(a, _, e)| (a, e)));
    }

    fn report(&mut self, code: LintCode, detail: String, trace: &[Step]) {
        if !self.seen.insert((code.code(), detail.clone())) {
            return;
        }
        let mut full = self.prefix.clone();
        full.extend_from_slice(trace);
        let (log, confirmed) = self.render_and_confirm(&full, code, &detail);
        self.violations.push(ModelViolation {
            code,
            detail,
            trace: log,
            replay_confirmed: confirmed,
        });
    }

    /// Replays the counterexample through fresh participants with
    /// logging on and confirms the violation recurs — the bridge back
    /// to the dynamic engine: the very same [`Participant::handle`]
    /// machine the simulator drives is re-driven in trace order.
    fn render_and_confirm(
        &self,
        full_trace: &[Step],
        code: LintCode,
        detail: &str,
    ) -> (Vec<String>, bool) {
        let mut world = World::new(self.spec);
        world.log = Some(Vec::new());
        for &step in full_trace {
            world.apply(step);
        }
        let confirmed = match code {
            LintCode::ModelDeadlock | LintCode::ModelCrashVulnerable => {
                world.enabled().is_empty()
                    && !world.stuck_live(self.crash_mode).is_empty()
            }
            LintCode::ModelUnresolved => {
                world.enabled().is_empty() && world.raises > 0 && world.commits.is_empty()
            }
            _ => world
                .faults
                .iter()
                .any(|(c, d)| *c == code && d == detail),
        };
        (world.log.unwrap_or_default(), confirmed)
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

/// Model-checks `scenario` and reports violations into `sink` as
/// `CAEX015`–`CAEX018` diagnostics with the counterexample trace as
/// `help:` spans. Returns the full [`ModelReport`].
pub(crate) fn check_scenario_into(
    sink: &mut Sink<'_>,
    scenario: &Scenario,
    options: &ModelOptions,
) -> ModelReport {
    let spec = match Spec::from_scenario(scenario) {
        Ok(spec) => spec,
        Err(reason) => {
            return ModelReport {
                complete: false,
                skipped: Some(reason),
                ..ModelReport::default()
            }
        }
    };
    let subject = format!(
        "model({} objects, {} script events)",
        spec.num_nodes,
        spec.script.len()
    );

    let mut explorer = Explorer::new(&spec, options.limits, Vec::new(), false);
    explorer.run();
    let mut report = ModelReport {
        stats: explorer.stats,
        complete: explorer.complete,
        skipped: None,
        violations: explorer.violations,
        commits: explorer.commits,
        crash_points: 0,
    };

    if options.crash_sweep && report.violations.is_empty() {
        if let Some(canonical) = explorer.canonical.clone() {
            sweep_crashes(&spec, options.limits, &canonical, &mut report);
        }
    }

    for violation in &report.violations {
        let mut help = vec![format!(
            "counterexample ({} steps, replay {}):",
            violation.trace.len(),
            if violation.replay_confirmed {
                "confirmed"
            } else {
                "NOT confirmed"
            }
        )];
        help.extend(violation.trace.iter().cloned());
        sink.emit_with_help(violation.code, &subject, violation.detail.clone(), help);
    }
    report
}

/// The `CAEX018` sweep: replay the canonical violation-free run, crash
/// the elected resolver after every prefix, and exhaustively verify
/// that the survivors still quiesce normally.
fn sweep_crashes(
    spec: &Spec,
    limits: ModelLimits,
    canonical: &[Step],
    report: &mut ModelReport,
) {
    // The victim is the elected resolver of the canonical run's first
    // commit — the node whose desertion §4.5 must survive.
    let mut probe = World::new(spec);
    for &step in canonical {
        probe.apply(step);
    }
    let Some(&(_, victim, _)) = probe.commits.first() else {
        return;
    };
    // One explorer for the whole sweep: the post-crash state spaces of
    // neighbouring cuts overlap almost entirely (a canonical step that
    // only advances the victim leaves the survivors' world identical),
    // so a shared visited cache collapses the sweep to the *union* of
    // the cut spaces instead of their sum. The state budget is likewise
    // shared across all cuts.
    let mut explorer = Explorer::new(spec, limits, Vec::new(), true);
    let mut seen: BTreeSet<(&'static str, String)> = BTreeSet::new();
    for cut in 0..=canonical.len() {
        let mut prefix: Vec<Step> = canonical[..cut].to_vec();
        prefix.push(Step::Crash { node: victim });
        explorer.prefix = prefix;
        let before = explorer.violations.len();
        explorer.run();
        report.crash_points += 1;
        for violation in &mut explorer.violations[before..] {
            violation.detail = format!(
                "resolver {victim} crashed after step {cut}/{}: {}",
                canonical.len(),
                violation.detail
            );
        }
    }
    report.stats.absorb(explorer.stats);
    report.complete &= explorer.complete;
    for violation in explorer.violations {
        if seen.insert((violation.code.code(), violation.detail.clone())) {
            report.violations.push(violation);
        }
    }
    report.commits.extend(explorer.commits.iter().copied());
}

/// Satellite of the `--model` battery: static worst-case analysis of
/// the Campbell–Randell *interleaved reduced trees* configuration
/// (`CAEX019`). A fixpoint over `closest_handled_ancestor` predicts
/// the §3.3 domino: every known class a party cannot handle is climbed
/// and re-raised, and the re-raise is new knowledge for everyone. When
/// the domino destroys all diagnosis (the final resolution falls to
/// the universal exception although the initial raises did not), the
/// finding escalates to deny severity.
pub(crate) fn lint_cr_domino_into(
    sink: &mut Sink<'_>,
    tree: &ExceptionTree,
    reduced: &[ReducedTree],
    initial: &[(NodeId, ExceptionId)],
) {
    if initial.is_empty() || reduced.is_empty() {
        return;
    }
    let subject = format!("cr({} parties)", reduced.len());
    // Known classes, each with the set of parties that raised it — a
    // party only climbs a class it *learnt from someone else* (its own
    // raise never triggers its own re-raise, matching `cr::run`).
    let mut known: BTreeMap<ExceptionId, BTreeSet<usize>> = BTreeMap::new();
    for &(raiser, exc) in initial {
        known
            .entry(exc)
            .or_default()
            .insert(raiser.index() as usize);
    }
    let initial_count = known.len();
    let mut chain: Vec<String> = Vec::new();
    let mut rounds = 0u32;
    loop {
        let mut fresh: BTreeMap<ExceptionId, BTreeSet<usize>> = BTreeMap::new();
        for (party, r) in reduced.iter().enumerate() {
            for (&exc, raisers) in &known {
                if raisers.contains(&party) {
                    continue;
                }
                let Ok(climbed) = r.closest_handled_ancestor(tree, exc) else {
                    continue;
                };
                if climbed != exc && !known.contains_key(&climbed) {
                    let newly = !fresh.contains_key(&climbed);
                    fresh.entry(climbed).or_default().insert(party);
                    if newly {
                        chain.push(format!(
                            "round {}: party {party} cannot handle {exc}, climbs to \
                             {climbed} and re-raises it",
                            rounds + 1
                        ));
                    }
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        rounds += 1;
        for (exc, raisers) in fresh {
            known.entry(exc).or_default().extend(raisers);
        }
    }
    let domino = known.len() - initial_count;
    if domino == 0 {
        return;
    }
    let resolved = tree
        .resolve(known.keys().copied())
        .unwrap_or_else(|_| tree.root());
    let initially_resolved = tree
        .resolve(initial.iter().map(|&(_, e)| e))
        .unwrap_or_else(|_| tree.root());
    let message = format!(
        "interleaved reduced trees re-raise {domino} extra class(es) over {rounds} \
         round(s): the §3.3 domino climbs from {initial_count} initial raise(s) to a \
         {}-class storm resolving to {resolved}",
        known.len()
    );
    let mut help = chain;
    help.push(format!(
        "worst case: {} distinct classes end up raised; the paper's algorithm raises \
         exactly the initial set",
        known.len()
    ));
    if resolved == tree.root() && initially_resolved != tree.root() {
        help.push(
            "the domino spans the whole interleaving: resolution falls to the universal \
             exception although the initial raises did not — all diagnosis is lost"
                .to_owned(),
        );
        sink.emit_escalated(LintCode::CrDominoDepth, Severity::Deny, &subject, message, help);
    } else {
        sink.emit_with_help(LintCode::CrDominoDepth, &subject, message, help);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintConfig;
    use caex::workloads;
    use caex_action::ActionScope;
    use caex_net::NetConfig;
    use caex_tree::{chain_tree, Exception};

    fn check(scenario: &Scenario, options: &ModelOptions) -> (crate::LintReport, ModelReport) {
        let config = LintConfig::new();
        let mut sink = Sink::new(&config);
        let model = check_scenario_into(&mut sink, scenario, options);
        (sink.finish(), model)
    }

    #[test]
    fn example1_verifies_clean_without_crashes() {
        let (workload, _) = workloads::example1(NetConfig::default());
        let (lint, model) = check(&workload.scenario, &ModelOptions::default());
        assert!(lint.is_clean(), "{}", lint.render());
        assert!(model.verified(), "{model:?}");
        assert!(model.stats.states > 10, "trivial exploration: {:?}", model.stats);
        // The oracle surface: A1 resolves to the LCA of {e1, e2} on
        // every path where both raises collide, and to a single class
        // where one resolution wins alone.
        assert!(!model.commits.is_empty());
    }

    #[test]
    fn two_node_scenario_with_crash_sweep_survives() {
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level("A", (0..2).map(NodeId::new), tree))
            .expect("valid");
        let scenario = Scenario::new(Arc::new(reg))
            .enter_all_at(SimTime::ZERO, a)
            .raise_at(
                SimTime::from_micros(5),
                NodeId::new(0),
                Exception::new(ExceptionId::new(1)),
            );
        let (lint, model) = check(&scenario, &ModelOptions::with_crash_sweep());
        assert!(lint.is_clean(), "{}", lint.render());
        assert!(model.verified(), "{model:?}");
        assert!(model.crash_points > 0, "sweep ran: {model:?}");
    }

    #[test]
    fn opaque_handler_tables_are_skipped_not_failed() {
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level(
                "A",
                (0..2).map(NodeId::new),
                Arc::clone(&tree),
            ))
            .expect("valid");
        let mut table = HandlerTable::recover_all(Arc::clone(&tree));
        table.on(ExceptionId::new(1), SimTime::ZERO, |_| {
            caex_action::HandlerOutcome::Recovered
        });
        let scenario = Scenario::new(Arc::new(reg))
            .enter_all_at(SimTime::ZERO, a)
            .handlers(NodeId::new(0), a, table)
            .raise_at(
                SimTime::ZERO,
                NodeId::new(0),
                Exception::new(ExceptionId::new(1)),
            );
        let (lint, model) = check(&scenario, &ModelOptions::default());
        assert!(model.skipped.is_some(), "{model:?}");
        assert!(model.violations.is_empty());
        assert!(lint.is_clean(), "{}", lint.render());
    }

    #[test]
    fn never_completing_scenario_deadlocks_with_confirmed_trace() {
        // One object enters and never completes or raises: the model
        // quiesces with the object still inside the action.
        let tree = Arc::new(chain_tree(2));
        let mut reg = ActionRegistry::new();
        let a = reg
            .declare(ActionScope::top_level("A", (0..2).map(NodeId::new), tree))
            .expect("valid");
        let scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, a);
        let (lint, model) = check(&scenario, &ModelOptions::default());
        assert!(lint.fired(LintCode::ModelDeadlock), "{}", lint.render());
        assert!(model
            .violations
            .iter()
            .all(|v| v.replay_confirmed && !v.trace.is_empty()));
    }

    #[test]
    fn cr_domino_fires_and_escalates_on_interleaved_chains() {
        let tree = chain_tree(8);
        let reduced = caex::cr::interleaved_parties(&tree, 8, 2);
        let config = LintConfig::new();
        let mut sink = Sink::new(&config);
        lint_cr_domino_into(
            &mut sink,
            &tree,
            &reduced,
            &[(NodeId::new(0), ExceptionId::new(8))],
        );
        let report = sink.finish();
        assert!(report.fired(LintCode::CrDominoDepth));
        assert!(report.has_denials(), "domino to the root escalates: {}", report.render());
    }

    #[test]
    fn cr_full_handlers_stay_quiet() {
        let tree = chain_tree(8);
        let reduced = vec![ReducedTree::full(&tree); 2];
        let config = LintConfig::new();
        let mut sink = Sink::new(&config);
        lint_cr_domino_into(
            &mut sink,
            &tree,
            &reduced,
            &[(NodeId::new(1), ExceptionId::new(8))],
        );
        assert!(sink.finish().is_clean());
    }
}
