//! Tree lints: structural checks over an [`ExceptionTree`] and an
//! optional raisable set (`CAEX001`–`CAEX005`).

use crate::diag::{LintCode, Sink};
use caex_tree::{ExceptionId, ExceptionTree, TreeEdit};

/// A chain tree at least this long fires `CAEX004`.
pub const CHAIN_THRESHOLD: usize = 4;

/// A tree higher than this fires `CAEX005`.
pub const MAX_DEPTH: u32 = 8;

/// Runs the tree lint family into `sink`.
///
/// `raisables` is the set of classes the caller believes can be raised:
/// an explicit declaration (`ActionScope::declared_exceptions`) or the
/// raises actually scripted in a scenario. When it is `None`, the
/// raisable-set lints (`CAEX001`–`CAEX003`) are skipped — without a
/// raisable set, every pair report would be speculation.
pub(crate) fn lint_tree_into(
    sink: &mut Sink<'_>,
    subject: &str,
    tree: &ExceptionTree,
    raisables: Option<&[ExceptionId]>,
) {
    if let Some(raisables) = raisables {
        // CAEX003: duplicates in the raisable set.
        let mut seen: Vec<ExceptionId> = Vec::new();
        for &id in raisables {
            if seen.contains(&id) {
                sink.emit(
                    LintCode::DuplicateRaisable,
                    subject,
                    format!("class {id} is listed more than once in the raisable set"),
                );
            } else {
                seen.push(id);
            }
        }

        // CAEX001: pairs resolving to the universal exception. Every
        // pair carries the same fix-it: one inserted grouping class
        // removes them all, so compute it once and attach it to each.
        let fix = TreeEdit::group_non_covering(tree, raisables).map(|edit| fixit_help(tree, &edit));
        for (a, b) in tree.non_covering_pairs(raisables) {
            let (na, nb) = (name_of(tree, a), name_of(tree, b));
            sink.emit_with_help(
                LintCode::NonCoveringPair,
                subject,
                format!(
                    "raisables {a} ({na}) and {b} ({nb}) only meet at the universal \
                     exception: a concurrent raise of both resolves to the root, \
                     losing all diagnosis"
                ),
                fix.clone().unwrap_or_default(),
            );
        }

        // CAEX002: classes on no raisable's root path.
        let closure = tree.ancestor_closure(raisables);
        for id in tree.iter() {
            if !closure.contains(&id) {
                sink.emit(
                    LintCode::UnreachableClass,
                    subject,
                    format!(
                        "class {id} ({}) is on no raisable's root path: it can \
                         neither be raised nor resolved to",
                        name_of(tree, id)
                    ),
                );
            }
        }
    }

    // CAEX004: degenerate chain.
    if tree.is_chain() && tree.len() >= CHAIN_THRESHOLD {
        sink.emit(
            LintCode::DegenerateChain,
            subject,
            format!(
                "the tree is a single chain of {} classes: concurrent resolution \
                 always picks the shallower class, so the hierarchy adds no \
                 discrimination",
                tree.len()
            ),
        );
    }

    // CAEX005: excessive depth.
    let height = tree.height();
    if height > MAX_DEPTH {
        sink.emit(
            LintCode::ExcessiveDepth,
            subject,
            format!("tree height {height} exceeds the plausible handler-hierarchy depth {MAX_DEPTH}"),
        );
    }
}

fn name_of(tree: &ExceptionTree, id: ExceptionId) -> String {
    tree.name(id).map_or_else(|_| "?".to_owned(), str::to_owned)
}

/// Renders the CAEX001 fix-it as `help:` spans: the edit in prose plus
/// the `TreeBuilder` calls that realize it. Applying the edit is
/// guaranteed to clear every non-covering pair it was computed from
/// (see `TreeEdit::group_non_covering`).
pub(crate) fn fixit_help(tree: &ExceptionTree, edit: &TreeEdit) -> Vec<String> {
    let grouped: Vec<String> = edit
        .grouped
        .iter()
        .map(|&id| format!("\"{}\"", name_of(tree, id)))
        .collect();
    vec![
        format!("{edit}"),
        format!(
            "equivalently: let g = b.child_of_root(\"{}\")?; declare {} as children of g \
             instead of the root",
            edit.name,
            grouped.join(", ")
        ),
        "after the edit the pair resolves to the new class, which keeps the diagnosis".into(),
    ]
}
