//! One positive fixture per lint code: every `CAEXnnn` is demonstrated
//! by a minimal input that fires it, with the acceptance-critical codes
//! (`CAEX001`, `CAEX006`, `CAEX010`) asserted at deny level.

use caex::program::ActionProgram;
use caex::Scenario;
use caex_action::{ActionId, ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_lint::{LintCode, LintConfig, Linter, Severity};
use caex_net::{NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId, ExceptionTree, TreeBuilder};
use std::sync::Arc;

/// Root with two sibling children: raisables from different subtrees
/// only meet at the universal exception.
fn forked_tree() -> (ExceptionTree, ExceptionId, ExceptionId) {
    let mut b = TreeBuilder::new("universal_exception");
    let left = b.child_of_root("left").expect("fresh");
    let right = b.child_of_root("right").expect("fresh");
    (b.build().expect("valid"), left, right)
}

fn severity_of(report: &caex_lint::LintReport, code: LintCode) -> Option<Severity> {
    report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .map(|d| d.severity)
}

#[test]
fn caex001_non_covering_pair_is_deny() {
    let (tree, left, right) = forked_tree();
    let report = Linter::new().lint_tree(&tree, Some(&[left, right]));
    assert_eq!(
        severity_of(&report, LintCode::NonCoveringPair),
        Some(Severity::Deny)
    );
}

#[test]
fn caex002_unreachable_class_fires() {
    let (tree, left, right) = forked_tree();
    let report = Linter::new().lint_tree(&tree, Some(&[left]));
    assert_eq!(
        severity_of(&report, LintCode::UnreachableClass),
        Some(Severity::Warn)
    );
    // With both subtrees raisable nothing is unreachable (the pair lint
    // fires instead).
    let report = Linter::new().lint_tree(&tree, Some(&[left, right]));
    assert!(!report.fired(LintCode::UnreachableClass));
}

#[test]
fn caex003_duplicate_raisable_fires() {
    let e1 = ExceptionId::new(1);
    let report = Linter::new().lint_tree(&chain_tree(3), Some(&[e1, e1]));
    assert_eq!(
        severity_of(&report, LintCode::DuplicateRaisable),
        Some(Severity::Deny)
    );
}

#[test]
fn caex004_degenerate_chain_fires() {
    let report = Linter::new().lint_tree(&chain_tree(6), None);
    assert_eq!(
        severity_of(&report, LintCode::DegenerateChain),
        Some(Severity::Warn)
    );
    // Short chains and branched trees stay quiet.
    assert!(!Linter::new()
        .lint_tree(&chain_tree(1), None)
        .fired(LintCode::DegenerateChain));
    assert!(!Linter::new()
        .lint_tree(&forked_tree().0, None)
        .fired(LintCode::DegenerateChain));
}

#[test]
fn caex005_excessive_depth_fires() {
    let report = Linter::new().lint_tree(&chain_tree(9), None);
    assert_eq!(
        severity_of(&report, LintCode::ExcessiveDepth),
        Some(Severity::Warn)
    );
    assert!(!Linter::new()
        .lint_tree(&chain_tree(8), None)
        .fired(LintCode::ExcessiveDepth));
}

#[test]
fn caex006_handler_totality_is_deny() {
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "a",
            [NodeId::new(0)],
            Arc::clone(&tree),
        ))
        .expect("valid");
    let mut table = HandlerTable::new(Arc::clone(&tree));
    table.on(ExceptionId::new(1), SimTime::ZERO, |_| {
        HandlerOutcome::Recovered
    });
    let report = Linter::new().lint_handlers(&reg, [(NodeId::new(0), a, &table)]);
    assert_eq!(
        severity_of(&report, LintCode::HandlerTotality),
        Some(Severity::Deny)
    );
    // recover_all is total: no finding.
    let total = HandlerTable::recover_all(Arc::clone(&tree));
    let report = Linter::new().lint_handlers(&reg, [(NodeId::new(0), a, &total)]);
    assert!(!report.fired(LintCode::HandlerTotality));
}

#[test]
fn caex006_respects_declared_subset() {
    // With a declared subset, only those classes (plus the root, which
    // any resolution can land on) need handlers.
    let tree = Arc::new(chain_tree(3));
    let e1 = ExceptionId::new(1);
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(
            ActionScope::top_level("a", [NodeId::new(0)], Arc::clone(&tree))
                .with_declared_exceptions([e1]),
        )
        .expect("valid");
    let mut table = HandlerTable::new(Arc::clone(&tree));
    table.on(e1, SimTime::ZERO, |_| HandlerOutcome::Recovered);
    table.on(ExceptionId::ROOT, SimTime::ZERO, |_| {
        HandlerOutcome::Recovered
    });
    let report = Linter::new().lint_handlers(&reg, [(NodeId::new(0), a, &table)]);
    assert!(!report.fired(LintCode::HandlerTotality), "{}", report.render());
}

#[test]
fn caex007_scope_containment_is_deny() {
    let tree = Arc::new(chain_tree(2));
    let scopes = vec![
        (
            ActionId::new(0),
            ActionScope::top_level("top", [NodeId::new(0)], Arc::clone(&tree)),
        ),
        (
            ActionId::new(1),
            ActionScope::nested(
                "nested",
                [NodeId::new(0), NodeId::new(7)],
                Arc::clone(&tree),
                ActionId::new(0),
            ),
        ),
    ];
    let report = Linter::new().lint_scopes(&scopes);
    assert_eq!(
        severity_of(&report, LintCode::ScopeContainment),
        Some(Severity::Deny)
    );
}

#[test]
fn caex008_missing_abortion_handler_fires() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let top = reg
        .declare(ActionScope::top_level(
            "top",
            [NodeId::new(0)],
            Arc::clone(&tree),
        ))
        .expect("valid");
    let nested = reg
        .declare(ActionScope::nested(
            "nested",
            [NodeId::new(0)],
            Arc::clone(&tree),
            top,
        ))
        .expect("valid");
    // Total resumption coverage, but no abortion handler.
    let mut table = HandlerTable::new(Arc::clone(&tree));
    for id in tree.iter() {
        table.on(id, SimTime::ZERO, |_| HandlerOutcome::Recovered);
    }
    let report = Linter::new().lint_handlers(&reg, [(NodeId::new(0), nested, &table)]);
    assert_eq!(
        severity_of(&report, LintCode::MissingAbortionHandler),
        Some(Severity::Warn)
    );
    // The same table on the top-level action is fine: nothing above it
    // can abort it.
    let report = Linter::new().lint_handlers(&reg, [(NodeId::new(0), top, &table)]);
    assert!(!report.fired(LintCode::MissingAbortionHandler));
}

#[test]
fn caex009_undeclared_exception_is_deny() {
    let tree = Arc::new(chain_tree(2));
    let scopes = vec![(
        ActionId::new(0),
        ActionScope::top_level("a", [NodeId::new(0)], Arc::clone(&tree))
            .with_declared_exceptions([ExceptionId::new(42)]),
    )];
    let report = Linter::new().lint_scopes(&scopes);
    assert_eq!(
        severity_of(&report, LintCode::UndeclaredException),
        Some(Severity::Deny)
    );
}

fn two_object_program() -> (ActionProgram, ActionId) {
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "job",
            (0..2).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid");
    (ActionProgram::new(Arc::new(reg), a), a)
}

#[test]
fn caex010_undeclared_raise_is_deny() {
    let (mut program, _) = two_object_program();
    program
        .object(NodeId::new(0))
        .raise(Exception::new(ExceptionId::new(42)))
        .complete();
    program.object(NodeId::new(1)).complete();
    let report = Linter::new().lint_program(&program);
    assert_eq!(
        severity_of(&report, LintCode::UndeclaredRaise),
        Some(Severity::Deny)
    );
}

#[test]
fn caex010_fires_for_raise_outside_declared_subset() {
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(
            ActionScope::top_level("job", [NodeId::new(0)], Arc::clone(&tree))
                .with_declared_exceptions([ExceptionId::new(1)]),
        )
        .expect("valid");
    let mut program = ActionProgram::new(Arc::new(reg), a);
    program
        .object(NodeId::new(0))
        // e2 is in the tree but not declared raisable by the action.
        .raise(Exception::new(ExceptionId::new(2)))
        .complete();
    let report = Linter::new().lint_program(&program);
    assert_eq!(
        severity_of(&report, LintCode::UndeclaredRaise),
        Some(Severity::Deny)
    );
}

#[test]
fn caex010_fires_on_scripted_scenario_raise() {
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "a",
            [NodeId::new(0)],
            Arc::clone(&tree),
        ))
        .expect("valid");
    let scenario = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(ExceptionId::new(42)),
        );
    let report = Linter::new().lint_scenario(&scenario);
    assert_eq!(
        severity_of(&report, LintCode::UndeclaredRaise),
        Some(Severity::Deny)
    );
}

#[test]
fn caex011_never_completes_is_deny() {
    let (mut program, _) = two_object_program();
    program.object(NodeId::new(0)).complete();
    // O1 works forever and never completes; nothing raises anywhere.
    program
        .object(NodeId::new(1))
        .work(SimTime::from_micros(100));
    let report = Linter::new().lint_program(&program);
    assert_eq!(
        severity_of(&report, LintCode::NeverCompletes),
        Some(Severity::Deny)
    );
}

#[test]
fn caex011_stays_quiet_when_handlers_can_take_over() {
    let (mut program, _) = two_object_program();
    program
        .object(NodeId::new(0))
        .raise(Exception::new(ExceptionId::new(1)));
    program
        .object(NodeId::new(1))
        .work(SimTime::from_micros(100));
    let report = Linter::new().lint_program(&program);
    assert!(!report.fired(LintCode::NeverCompletes), "{}", report.render());
}

#[test]
fn caex012_enter_imbalance_is_deny() {
    let (mut program, _) = two_object_program();
    program
        .object(NodeId::new(0))
        // Leaving an action that was never entered.
        .leave(ActionId::new(0))
        .complete();
    program.object(NodeId::new(1)).complete();
    let report = Linter::new().lint_program(&program);
    assert_eq!(
        severity_of(&report, LintCode::EnterImbalance),
        Some(Severity::Deny)
    );
}

#[test]
fn caex013_non_participant_step_is_deny() {
    let (mut program, _) = two_object_program();
    program.object(NodeId::new(0)).complete();
    program.object(NodeId::new(1)).complete();
    // O9 is not a participant of the action.
    program.object(NodeId::new(9)).complete();
    let report = Linter::new().lint_program(&program);
    assert_eq!(
        severity_of(&report, LintCode::NonParticipantStep),
        Some(Severity::Deny)
    );
}

#[test]
fn caex014_unentered_participant_fires() {
    let (mut program, _) = two_object_program();
    program.object(NodeId::new(0)).complete();
    // O1 is declared but never programmed (and CAEX011 also fires:
    // nothing can raise, so O1 never completing deadlocks the action).
    let report = Linter::new().lint_program(&program);
    assert_eq!(
        severity_of(&report, LintCode::UnenteredParticipant),
        Some(Severity::Warn)
    );
    assert!(report.fired(LintCode::NeverCompletes));
}

#[test]
fn clean_program_and_builtin_workloads_have_no_denials() {
    let (mut program, _) = two_object_program();
    program
        .object(NodeId::new(0))
        .work(SimTime::from_micros(10))
        .complete();
    program
        .object(NodeId::new(1))
        .work(SimTime::from_micros(20))
        .complete();
    assert!(!Linter::new().lint_program(&program).has_denials());

    let linter = Linter::new();
    for (name, scenario) in [
        (
            "general",
            caex::workloads::general(6, 3, 2, Default::default()).scenario,
        ),
        ("fig3", caex::workloads::fig3(Default::default()).scenario),
        (
            "example2",
            caex::workloads::example2(Default::default()).0.scenario,
        ),
    ] {
        let report = linter.lint_scenario(&scenario);
        assert!(!report.has_denials(), "{name}: {}", report.render());
    }
}

#[test]
fn config_allow_and_deny_warnings_reconfigure() {
    let allowed = Linter::with_config(LintConfig::new().allow(LintCode::DegenerateChain));
    assert!(allowed.lint_tree(&chain_tree(6), None).is_clean());

    let strict = Linter::with_config(LintConfig::new().deny_warnings());
    assert!(strict.lint_tree(&chain_tree(6), None).has_denials());
}

// --- threaded runner scripts get the same replay battery ------------

#[test]
fn caex010_fires_on_threaded_runner_raise() {
    use caex::thread_engine::ThreadRunner;
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "a",
            [NodeId::new(0)],
            Arc::clone(&tree),
        ))
        .expect("valid");
    let runner = ThreadRunner::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(ExceptionId::new(42)),
        );
    let report = Linter::new().lint_thread_runner(&runner);
    assert_eq!(
        severity_of(&report, LintCode::UndeclaredRaise),
        Some(Severity::Deny)
    );
}

#[test]
fn caex012_fires_on_threaded_runner_stray_complete() {
    use caex::thread_engine::ThreadRunner;
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "a",
            [NodeId::new(0), NodeId::new(1)],
            Arc::clone(&tree),
        ))
        .expect("valid");
    // O1 completes an action it never entered: an enter imbalance.
    let runner = ThreadRunner::new(Arc::new(reg))
        .enter_at(SimTime::ZERO, NodeId::new(0), a)
        .complete_at(SimTime::from_micros(5), NodeId::new(1), a)
        .complete_at(SimTime::from_micros(9), NodeId::new(0), a);
    let report = Linter::new().lint_thread_runner(&runner);
    assert!(report.fired(LintCode::EnterImbalance));
}

#[test]
fn clean_threaded_runner_script_has_no_denials() {
    use caex::thread_engine::ThreadRunner;
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "a",
            [NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            Arc::clone(&tree),
        ))
        .expect("valid");
    let runner = ThreadRunner::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a)
        .raise_at(
            SimTime::from_micros(10),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        );
    let report = Linter::new().lint_thread_runner(&runner);
    assert!(!report.has_denials(), "{}", report.render());
}
