//! Integration fixtures for the model checker (`CAEX015`–`CAEX019`)
//! and the fix-it engine, plus the checker-vs-explorer agreement
//! property: a lint-clean scenario family that the bounded checker
//! exhaustively verifies must also run clean through the dynamic
//! seed sweep — any divergence is a bug in one of the two.

use caex::explore::{explore, Expect};
use caex::{workloads, Scenario};
use caex_action::{ActionRegistry, ActionScope, HandlerOutcome, HandlerTable};
use caex_lint::{LintCode, Linter, ModelLimits, ModelOptions, Severity};
use caex_net::{NetConfig, NodeId, SimTime};
use caex_tree::{chain_tree, Exception, ExceptionId, ReducedTree, TreeBuilder, TreeEdit};
use proptest::prelude::*;
use std::sync::Arc;

fn two_node_scenario(raises: &[(u32, u32)]) -> Scenario {
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level("A", (0..2).map(NodeId::new), tree))
        .expect("valid scope");
    let mut scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, a);
    for &(object, exc) in raises {
        scenario = scenario.raise_at(
            SimTime::from_micros(5),
            NodeId::new(object),
            Exception::new(ExceptionId::new(exc)),
        );
    }
    scenario
}

// -------------------------------------------------------------------
// CAEX015–CAEX018 fixtures.
// -------------------------------------------------------------------

#[test]
fn caex015_deadlock_fires_with_confirmed_counterexample() {
    // Two objects enter and nothing ever completes or raises: every
    // schedule quiesces with both stuck inside the action.
    let tree = Arc::new(chain_tree(2));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level("A", (0..2).map(NodeId::new), tree))
        .expect("valid scope");
    let scenario = Scenario::new(Arc::new(reg)).enter_all_at(SimTime::ZERO, a);
    let (lint, model) = Linter::new().model_check(&scenario, &ModelOptions::default());
    assert!(lint.fired(LintCode::ModelDeadlock), "{}", lint.render());
    assert!(lint.has_denials(), "CAEX015 denies by default");
    assert!(!model.violations.is_empty());
    for v in &model.violations {
        assert_eq!(v.code, LintCode::ModelDeadlock);
        assert!(v.replay_confirmed, "counterexample must replay: {v:?}");
        assert!(!v.trace.is_empty());
    }
}

#[test]
fn caex016_nested_elimination_still_commits() {
    // The closest the protocol comes to an unresolved raise: a nested
    // resolution eliminated by an outer one (§4.1 "empty LE, LO, LP").
    // The raise in the nested action never commits there — but the
    // outer resolution must, so `CAEX016` stays quiet. The lint exists
    // as a tripwire: the engine keeps a raise pinned to a live
    // resolution until some commit or desertion accounts for it.
    let tree = Arc::new(chain_tree(4));
    let mut reg = ActionRegistry::new();
    let a0 = reg
        .declare(ActionScope::top_level(
            "A0",
            (0..3).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid scope");
    let a1 = reg
        .declare(ActionScope::nested(
            "A1",
            (1..3).map(NodeId::new),
            Arc::clone(&tree),
            a0,
        ))
        .expect("valid scope");
    let scenario = Scenario::new(Arc::new(reg))
        .enter_all_at(SimTime::ZERO, a0)
        .enter_at(SimTime::from_micros(1), NodeId::new(1), a1)
        .enter_at(SimTime::from_micros(1), NodeId::new(2), a1)
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(1),
            Exception::new(ExceptionId::new(3)),
        )
        .raise_at(
            SimTime::from_micros(5),
            NodeId::new(0),
            Exception::new(ExceptionId::new(1)),
        );
    let (lint, model) = Linter::new().model_check(&scenario, &ModelOptions::default());
    assert!(
        !lint.fired(LintCode::ModelUnresolved),
        "every raise is accounted for: {}",
        lint.render()
    );
    assert!(model.complete, "small scope must be exhaustive: {model:?}");
    assert!(
        model.commits.iter().any(|&(action, _)| action == a0),
        "the outer action commits on every path: {model:?}"
    );
}

#[test]
fn caex017_fires_when_a_resolver_group_outvotes_the_election() {
    // With a resolver group of 2 and two distinct raisers, the
    // runner-up in the §4.2 election also commits — the checker flags
    // the commit whose resolver is not the max raiser.
    let scenario = two_node_scenario(&[(0, 1), (1, 2)]).with_resolver_group(2);
    let (lint, model) = Linter::new().model_check(&scenario, &ModelOptions::default());
    assert!(lint.fired(LintCode::ModelWrongResolution), "{}", lint.render());
    let fired: Vec<_> = model
        .violations
        .iter()
        .filter(|v| v.code == LintCode::ModelWrongResolution)
        .collect();
    assert!(!fired.is_empty());
    for v in fired {
        assert!(v.replay_confirmed, "counterexample must replay: {v:?}");
        assert!(v.detail.contains("election"), "{}", v.detail);
    }
}

#[test]
fn caex018_crash_sweep_proves_survivability() {
    // §4.5 survivability, by exhaustion: crash the elected resolver
    // after every step of the canonical run and verify the survivors
    // still quiesce normally on every post-crash interleaving. Before
    // the crash-recovery extension (resolved-class memory plus the
    // deserter-gated Commit rebroadcast in `Participant::on_msg`),
    // crashing the resolver between two Commit deliveries orphaned the
    // peers that had not yet received it — a real CAEX018 with a
    // 59-step counterexample on the paper's Example 2. This fixture
    // pins the fix: the sweep must now come back clean.
    let scenario = two_node_scenario(&[(0, 1), (1, 2)]);
    let (lint, model) = Linter::new().model_check(&scenario, &ModelOptions::with_crash_sweep());
    assert!(
        !lint.fired(LintCode::ModelCrashVulnerable),
        "{}",
        lint.render()
    );
    assert!(model.verified(), "exhaustive and clean: {model:?}");
    assert!(model.crash_points > 0, "the sweep ran: {model:?}");
}

#[test]
fn caex018_fires_when_failover_is_disabled() {
    // The same scenario with the failover machinery switched off is
    // the paper's literal §4.2 machine: a crash of the elected
    // resolver mid-resolution leaves the survivor waiting on it
    // forever. The sweep must rediscover that orphaned-survivor
    // deadlock — it is the configuration that motivates resolver
    // failover, and the contrast with
    // `caex018_crash_sweep_proves_survivability` is the trust chain
    // from CAEX018 to the failover design.
    let scenario = two_node_scenario(&[(0, 1), (1, 2)]).with_failover(false);
    let (lint, model) = Linter::new().model_check(&scenario, &ModelOptions::with_crash_sweep());
    assert!(
        lint.fired(LintCode::ModelCrashVulnerable),
        "failover-off must be crash-vulnerable: {}",
        lint.render()
    );
    let fired: Vec<_> = model
        .violations
        .iter()
        .filter(|v| v.code == LintCode::ModelCrashVulnerable)
        .collect();
    assert!(!fired.is_empty());
    for v in fired {
        assert!(v.replay_confirmed, "counterexample must replay: {v:?}");
    }
}

#[test]
fn caex018_severity_metadata_is_deny() {
    assert_eq!(LintCode::ModelCrashVulnerable.code(), "CAEX018");
    assert_eq!(
        LintCode::ModelCrashVulnerable.default_severity(),
        Severity::Deny
    );
}

// -------------------------------------------------------------------
// CAEX019: the Campbell–Randell domino.
// -------------------------------------------------------------------

#[test]
fn caex019_interleaved_chain_dominoes_to_the_root() {
    let tree = chain_tree(8);
    let reduced = caex::cr::interleaved_parties(&tree, 8, 2);
    let report = Linter::new().lint_cr(&tree, &reduced, &[(NodeId::new(0), ExceptionId::new(8))]);
    assert!(report.fired(LintCode::CrDominoDepth), "{}", report.render());
    assert!(
        report.has_denials(),
        "a domino reaching the root destroys all diagnosis: {}",
        report.render()
    );
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::CrDominoDepth)
        .expect("fired");
    // The help spans spell out the climb, round by round.
    assert!(
        diag.help.iter().any(|h| h.contains("round 1:")),
        "{:?}",
        diag.help
    );
    assert!(
        diag.help.iter().any(|h| h.contains("round 8:")),
        "{:?}",
        diag.help
    );
}

#[test]
fn caex019_full_reduced_trees_stay_quiet() {
    let tree = chain_tree(8);
    let reduced = vec![ReducedTree::full(&tree); 2];
    let report = Linter::new().lint_cr(&tree, &reduced, &[(NodeId::new(1), ExceptionId::new(8))]);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn caex019_shallow_domino_warns_without_denying() {
    // Party 1 misses only the deepest class: the domino climbs exactly
    // one level (e3 → e2) and stops where both parties can handle —
    // reported, but at warn severity (diagnosis survives).
    let tree = chain_tree(3);
    let reduced = vec![
        ReducedTree::full(&tree),
        ReducedTree::new(&tree, (0..3).map(ExceptionId::new)).expect("prefix of the chain"),
    ];
    let report = Linter::new().lint_cr(&tree, &reduced, &[(NodeId::new(0), ExceptionId::new(3))]);
    assert!(report.fired(LintCode::CrDominoDepth), "{}", report.render());
    assert!(
        !report.has_denials(),
        "a contained domino is a warning: {}",
        report.render()
    );
}

// -------------------------------------------------------------------
// Fix-it goldens.
// -------------------------------------------------------------------

#[test]
fn caex001_fixit_applies_and_relints_clean() {
    // root → {a → a1, b → b1}: raising {a1, b1} resolves to the root.
    let mut b = TreeBuilder::new("root");
    let a = b.child_of_root("a").unwrap();
    let bb = b.child_of_root("b").unwrap();
    let a1 = b.child("a1", a).unwrap();
    let b1 = b.child("b1", bb).unwrap();
    let tree = b.build().unwrap();
    let raisables = [a1, b1];

    let linter = Linter::new();
    let report = linter.lint_tree(&tree, Some(&raisables));
    assert!(report.fired(LintCode::NonCoveringPair), "{}", report.render());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::NonCoveringPair)
        .expect("fired");
    // Golden: the help spans carry the edit, the builder calls and the
    // guarantee, in that order.
    assert_eq!(diag.help.len(), 3, "{:?}", diag.help);
    assert!(diag.help[0].contains("insert"), "{}", diag.help[0]);
    assert!(diag.help[1].contains("child_of_root"), "{}", diag.help[1]);
    assert!(diag.help[2].contains("keeps the diagnosis"), "{}", diag.help[2]);

    // Applying the suggested edit must clear CAEX001 entirely.
    let edit = TreeEdit::group_non_covering(&tree, &raisables).expect("fix exists");
    let fixed = edit.apply(&tree).expect("edit applies");
    let again = linter.lint_tree(&fixed, Some(&raisables));
    assert!(
        !again.fired(LintCode::NonCoveringPair),
        "fix-it must clear the finding: {}",
        again.render()
    );
    assert!(!again.has_denials(), "{}", again.render());
}

#[test]
fn caex006_fixit_suggests_the_missing_rows() {
    let tree = Arc::new(chain_tree(3));
    let mut reg = ActionRegistry::new();
    let a = reg
        .declare(ActionScope::top_level(
            "A",
            (0..2).map(NodeId::new),
            Arc::clone(&tree),
        ))
        .expect("valid scope");
    // An explicit table that only covers the root: every other class
    // is a totality gap.
    let mut table = HandlerTable::new(Arc::clone(&tree));
    table.on_outcome(tree.root(), SimTime::ZERO, HandlerOutcome::Recovered);
    let report = Linter::new().lint_handlers(&reg, [(NodeId::new(0), a, &table)]);
    assert!(report.fired(LintCode::HandlerTotality), "{}", report.render());
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::HandlerTotality)
        .expect("fired");
    // Golden: a header plus one `table.on_outcome(...)` row per gap,
    // each naming the class it closes.
    assert!(diag.help[0].contains("add the missing row"), "{:?}", diag.help);
    let rows: Vec<_> = diag.help[1..]
        .iter()
        .filter(|h| h.contains("table.on_outcome(ExceptionId::new("))
        .collect();
    assert_eq!(rows.len(), tree.len() - 1, "one row per gap: {:?}", diag.help);
    for row in rows {
        assert!(row.contains("HandlerOutcome::Recovered"), "{row}");
    }
}

// -------------------------------------------------------------------
// Checker-vs-explorer agreement on random small scenarios.
// -------------------------------------------------------------------

/// One randomly-shaped small scenario family: `n` objects in a chain
/// tree, one top-level action, optionally a nested action over the
/// objects past the first, and one or two raises. Object 0 always
/// raises in the top-level action (the §4.4 shape: raisers disjoint
/// from nested participants), so every object is eventually drawn
/// into a resolution whose handlers complete the action — a scenario
/// nobody completes would be a CAEX015 of the script, not of the
/// protocol.
#[derive(Debug, Clone)]
struct SmallScenario {
    n: u32,
    chain: u32,
    nested: bool,
    raises: Vec<(u32, u32)>,
}

impl SmallScenario {
    fn build(&self, seed: u64) -> Scenario {
        let tree = Arc::new(chain_tree(self.chain));
        let mut reg = ActionRegistry::new();
        let a0 = reg
            .declare(ActionScope::top_level(
                "A0",
                (0..self.n).map(NodeId::new),
                Arc::clone(&tree),
            ))
            .expect("valid scope");
        let nested = self.nested.then(|| {
            reg.declare(ActionScope::nested(
                "A1",
                (1..self.n).map(NodeId::new),
                Arc::clone(&tree),
                a0,
            ))
            .expect("valid scope")
        });
        let mut scenario = Scenario::new(Arc::new(reg))
            .with_config(NetConfig::default().with_seed(seed))
            .enter_all_at(SimTime::ZERO, a0);
        if let Some(a1) = nested {
            for object in 1..self.n {
                scenario = scenario.enter_at(SimTime::from_micros(1), NodeId::new(object), a1);
            }
        }
        for &(object, exc) in &self.raises {
            scenario = scenario.raise_at(
                SimTime::from_micros(5),
                NodeId::new(object),
                Exception::new(ExceptionId::new(exc)),
            );
        }
        scenario
    }
}

fn arb_small_scenario() -> impl Strategy<Value = SmallScenario> {
    (2u32..=3, 2u32..=3, any::<bool>(), any::<bool>()).prop_flat_map(
        |(n, chain, nested, second)| {
            let first = (1..=chain).prop_map(|exc| (0u32, exc));
            let rest = (1..n, 1..=chain).prop_map(|(object, exc)| (object, exc));
            (first, rest).prop_map(move |(first, rest)| {
                let mut raises = vec![first];
                if second {
                    raises.push(rest);
                }
                SmallScenario {
                    n,
                    chain,
                    nested,
                    raises,
                }
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Lint-clean ⇒ checker-clean ⇒ explore-clean, on 200 random small
    /// scenario families. The checker must verify each scope
    /// exhaustively (they are tiny), every counterexample it would
    /// report must replay, and the dynamic sweep over four seeds must
    /// agree with the verdict.
    #[test]
    fn checker_and_explorer_agree_on_small_scenarios(family in arb_small_scenario()) {
        let linter = Linter::new();
        let scenario = family.build(0);
        let lint = linter.lint_scenario(&scenario);
        prop_assert!(!lint.has_denials(), "{}", lint.render());

        let options = ModelOptions {
            limits: ModelLimits { max_states: 300_000, max_trace: 2_048 },
            ..ModelOptions::default()
        };
        let (report, model) = linter.model_check(&scenario, &options);
        prop_assert!(model.skipped.is_none(), "declarative by construction: {model:?}");
        prop_assert!(model.complete, "small scopes are exhaustive: {:?}", model.stats);
        for v in &model.violations {
            prop_assert!(v.replay_confirmed, "unconfirmed counterexample: {v:?}");
        }
        prop_assert!(
            model.violations.is_empty(),
            "checker found a violation on a lint-clean family: {}",
            report.render()
        );

        let exploration = explore(0..4, Expect::Clean, |seed| family.build(seed));
        prop_assert!(
            exploration.is_ok(),
            "checker-clean but dynamically unsafe: {:?}",
            exploration.violations
        );
        prop_assert_eq!(exploration.runs, 4);
    }
}

/// The built-in workload families the CLI battery model-checks, pinned
/// here as integration fixtures too: lint-clean, checker-verified.
#[test]
fn builtin_families_are_checker_clean() {
    let linter = Linter::new();
    for (name, scenario) in [
        ("case1(3)", workloads::case1(3, NetConfig::default()).scenario),
        ("case2(3)", workloads::case2(3, NetConfig::default()).scenario),
        (
            "example1",
            workloads::example1(NetConfig::default()).0.scenario,
        ),
    ] {
        let (lint, model) = linter.model_check(&scenario, &ModelOptions::default());
        assert!(!lint.has_denials(), "{name}: {}", lint.render());
        assert!(model.verified(), "{name}: {model:?}");
    }
}
