//! Property-based tests for the linter: random trees, registries and
//! workload families, checking that the analysis is total (never
//! panics, fires only expected codes) and that lint-clean scenario
//! families really do run clean through the dynamic explorer.

use caex::explore::Expect;
use caex_lint::explore::lint_then_explore;
use caex_lint::{LintCode, LintConfig, Linter};
use caex_net::{LatencyModel, NetConfig, SimTime};
use caex_tree::{ExceptionId, ExceptionTree, TreeBuilder};
use proptest::prelude::*;

/// Strategy: a random tree built by attaching each new node to a random
/// existing node (same construction as `caex-tree`'s own proptests).
fn arb_tree() -> impl Strategy<Value = ExceptionTree> {
    prop::collection::vec(0usize..=usize::MAX, 0..30).prop_map(|choices| {
        let mut b = TreeBuilder::new("root");
        let mut ids = vec![ExceptionId::ROOT];
        for (i, c) in choices.into_iter().enumerate() {
            let parent = ids[c % ids.len()];
            let id = b.child(format!("n{i}"), parent).unwrap();
            ids.push(id);
        }
        b.build().unwrap()
    })
}

fn arb_tree_and_raisables() -> impl Strategy<Value = (ExceptionTree, Vec<ExceptionId>)> {
    arb_tree().prop_flat_map(|tree| {
        let n = tree.len() as u32;
        let ids = prop::collection::vec(0..n, 0..8)
            .prop_map(|v| v.into_iter().map(ExceptionId::new).collect::<Vec<_>>());
        (Just(tree), ids)
    })
}

proptest! {
    /// The tree family is total and only ever fires tree-family codes.
    #[test]
    fn tree_lints_are_total((tree, raisables) in arb_tree_and_raisables()) {
        let report = Linter::new().lint_tree(&tree, Some(&raisables));
        for d in &report.diagnostics {
            prop_assert!(matches!(
                d.code,
                LintCode::NonCoveringPair
                    | LintCode::UnreachableClass
                    | LintCode::DuplicateRaisable
                    | LintCode::DegenerateChain
                    | LintCode::ExcessiveDepth
            ), "unexpected code {:?}", d.code);
        }
    }
}

proptest! {
    /// CAEX001 agrees with the LCA oracle: it fires exactly when some
    /// non-root pair of (distinct, in-tree) raisables meets only at
    /// the root.
    #[test]
    fn non_covering_pair_matches_lca((tree, raisables) in arb_tree_and_raisables()) {
        let report = Linter::new().lint_tree(&tree, Some(&raisables));
        let root = tree.root();
        let mut distinct: Vec<_> = raisables.iter().copied().filter(|&e| tree.contains(e)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let mut expect = false;
        for (i, &a) in distinct.iter().enumerate() {
            for &b in &distinct[i + 1..] {
                if a != root && b != root && tree.lca(a, b).unwrap() == root {
                    expect = true;
                }
            }
        }
        prop_assert_eq!(report.fired(LintCode::NonCoveringPair), expect);
    }
}

proptest! {
    /// CAEX003 fires exactly when the raisable set has duplicates.
    #[test]
    fn duplicate_raisable_matches_set_semantics((tree, raisables) in arb_tree_and_raisables()) {
        let report = Linter::new().lint_tree(&tree, Some(&raisables));
        let mut sorted = raisables.clone();
        sorted.sort_unstable();
        let had_dup = sorted.windows(2).any(|w| w[0] == w[1]);
        prop_assert_eq!(report.fired(LintCode::DuplicateRaisable), had_dup);
    }
}

proptest! {
    /// Registry-validated declarations never fire the containment or
    /// declared-subset denials the registry itself enforces, as long as
    /// declared sets are drawn from the tree.
    #[test]
    fn validated_registries_pass_decl_denials(
        n in 2u32..6,
        nested_count in 0u32..3,
        declare_subset in any::<bool>(),
    ) {
        use caex_action::{ActionRegistry, ActionScope};
        use caex_net::NodeId;
        use std::sync::Arc;

        let tree = Arc::new(caex_tree::balanced_tree(2, 2));
        let mut reg = ActionRegistry::new();
        let mut top = ActionScope::top_level("top", (0..n).map(NodeId::new), Arc::clone(&tree));
        if declare_subset {
            top = top.with_declared_exceptions(tree.leaves());
        }
        let top_id = reg.declare(top).unwrap();
        for i in 0..nested_count.min(n) {
            reg.declare(ActionScope::nested(
                format!("nested-{i}"),
                [NodeId::new(i)],
                Arc::clone(&tree),
                top_id,
            ))
            .unwrap();
        }
        let report = Linter::new().lint_registry(&reg);
        prop_assert!(!report.fired(LintCode::ScopeContainment), "{}", report.render());
        prop_assert!(!report.fired(LintCode::UndeclaredException), "{}", report.render());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The end-to-end contract: a built-in workload family that lints
    /// clean at deny level also survives the dynamic seed sweep — and
    /// `lint_then_explore` agrees on both halves.
    #[test]
    fn lint_clean_families_explore_clean(n in 3u32..6, p in 1u32..3, q in 0u32..2) {
        let (p, q) = (p.min(n - 1), q.min(n - 1));
        let q = q.min(n - p);
        let outcome = lint_then_explore(0..4, Expect::Clean, LintConfig::new(), |seed| {
            let config = NetConfig::default()
                .with_seed(seed)
                .with_latency(LatencyModel::Uniform {
                    min: SimTime::from_micros(1),
                    max: SimTime::from_micros(2_000),
                });
            caex::workloads::general(n, p, q, config).scenario
        });
        prop_assert!(!outcome.lint.has_denials(), "{}", outcome.lint.render());
        prop_assert!(outcome.exploration.is_ok(), "{:?}", outcome.exploration.violations);
        prop_assert!(outcome.is_ok());
    }
}
