//! Property tests of the simulator's substrate guarantees: FIFO per
//! ordered pair, reliability in the benign regime, determinism, and
//! monotone virtual time — the §4.2 assumptions the algorithm builds
//! on, fuzzed.

use caex_net::{LatencyModel, NetConfig, NodeId, SimNet, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Send {
    from: u32,
    to: u32,
    tag: u32,
}

fn arb_sends(nodes: u32) -> impl Strategy<Value = Vec<Send>> {
    prop::collection::vec(
        (0..nodes, 0..nodes, any::<u32>()).prop_map(|(from, to, tag)| Send { from, to, tag }),
        1..80,
    )
}

/// Payload carrying the global send sequence number and a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Payload {
    seq: u32,
    tag: u32,
}

impl caex_net::Kinded for Payload {
    fn kind(&self) -> &'static str {
        "payload"
    }
}

fn run(
    sends: &[Send],
    nodes: u32,
    seed: u64,
    max_latency: u64,
) -> Vec<(SimTime, NodeId, NodeId, u32)> {
    let mut net: SimNet<Payload> = SimNet::new(
        NetConfig::default()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: SimTime::from_micros(1),
                max: SimTime::from_micros(max_latency.max(2)),
            }),
        nodes,
    );
    for (i, s) in sends.iter().enumerate() {
        net.send(
            NodeId::new(s.from),
            NodeId::new(s.to),
            Payload {
                seq: i as u32,
                tag: s.tag,
            },
        );
    }
    let mut out = Vec::new();
    while let Some(d) = net.next_delivery() {
        if let caex_net::DeliverySource::Remote(from) = d.source {
            out.push((d.at, from, d.to, d.payload.seq));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Reliability: in the benign regime every send is delivered
    /// exactly once.
    #[test]
    fn every_send_is_delivered_once(
        sends in arb_sends(5),
        seed in any::<u64>(),
        max_latency in 2u64..5_000,
    ) {
        let delivered = run(&sends, 5, seed, max_latency);
        prop_assert_eq!(delivered.len(), sends.len());
        let mut seen: Vec<u32> = delivered.iter().map(|&(_, _, _, seq)| seq).collect();
        seen.sort_unstable();
        let expected: Vec<u32> = (0..sends.len() as u32).collect();
        prop_assert_eq!(seen, expected);
    }

    /// FIFO per ordered pair: on each channel, send order = delivery
    /// order regardless of latency jitter.
    #[test]
    fn fifo_per_channel_under_jitter(
        sends in arb_sends(4),
        seed in any::<u64>(),
        max_latency in 2u64..5_000,
    ) {
        let delivered = run(&sends, 4, seed, max_latency);
        let mut last_seq: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        for (_, from, to, seq) in delivered {
            if let Some(&prev) = last_seq.get(&(from, to)) {
                prop_assert!(
                    seq > prev,
                    "channel {from}->{to}: seq {seq} after {prev}"
                );
            }
            last_seq.insert((from, to), seq);
        }
    }

    /// Virtual time is monotone non-decreasing across deliveries.
    #[test]
    fn time_is_monotone(
        sends in arb_sends(4),
        seed in any::<u64>(),
    ) {
        let delivered = run(&sends, 4, seed, 1_000);
        for w in delivered.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    /// Determinism: identical seeds give identical delivery schedules;
    /// and the schedule is insensitive to nothing else (different seeds
    /// are *allowed* to differ, equal ones must not).
    #[test]
    fn equal_seeds_equal_schedules(
        sends in arb_sends(4),
        seed in any::<u64>(),
    ) {
        let a = run(&sends, 4, seed, 2_000);
        let b = run(&sends, 4, seed, 2_000);
        prop_assert_eq!(a, b);
    }
}
