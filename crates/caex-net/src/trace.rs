//! Execution traces: an ordered record of everything the network did.

use crate::{FaultEvent, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happened in one trace entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TraceEventKind {
    /// A message left its source node.
    Sent,
    /// A message arrived at its destination node.
    Delivered,
    /// A fault perturbed a message or node.
    Fault(FaultEvent),
    /// A locally scheduled event fired at its node.
    LocalEvent,
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEventKind::Sent => f.write_str("sent"),
            TraceEventKind::Delivered => f.write_str("delivered"),
            TraceEventKind::Fault(e) => write!(f, "fault({e:?})"),
            TraceEventKind::LocalEvent => f.write_str("local"),
        }
    }
}

/// One entry in a [`TraceLog`].
///
/// `label` carries the message kind (for sends/deliveries) or a free-form
/// event description; payloads themselves are not stored so traces stay
/// cheap and serializable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time the event occurred at.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
    /// Sending node (or the node a local event fired at).
    pub from: NodeId,
    /// Receiving node (same as `from` for local events).
    pub to: NodeId,
    /// Message kind or event description.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<9} {} -> {} : {}",
            self.at.to_string(),
            self.kind.to_string(),
            self.from,
            self.to,
            self.label
        )
    }
}

/// An append-only log of [`TraceEvent`]s for one execution.
///
/// # Examples
///
/// ```
/// use caex_net::{NodeId, SimTime, TraceEvent, TraceEventKind, TraceLog};
///
/// let mut log = TraceLog::default();
/// log.push(TraceEvent {
///     at: SimTime::ZERO,
///     kind: TraceEventKind::Sent,
///     from: NodeId::new(0),
///     to: NodeId::new(1),
///     label: "exception".into(),
/// });
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.of_kind(&TraceEventKind::Sent).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over all events in record order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Iterates over the events of one kind.
    pub fn of_kind<'a>(
        &'a self,
        kind: &'a TraceEventKind,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| &e.kind == kind)
    }

    /// Iterates over events whose label equals `label`.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Renders the whole log, one event per line (for examples/tests).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders an ASCII message-sequence chart over `nodes` lifelines:
    /// one row per *delivery* (sends are implicit), arrows from source
    /// to destination column, local events as `*`.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_net::{NetConfig, NodeId, SimNet};
    ///
    /// let mut net: SimNet<&'static str> =
    ///     SimNet::new(NetConfig::default().with_trace(true), 3);
    /// net.send(NodeId::new(0), NodeId::new(2), "ping");
    /// while net.next_delivery().is_some() {}
    /// let chart = net.trace().render_sequence_chart(3);
    /// assert!(chart.contains("O0"));
    /// assert!(chart.contains("ping"));
    /// ```
    #[must_use]
    pub fn render_sequence_chart(&self, nodes: u32) -> String {
        const COL: usize = 8;
        let mut out = String::new();
        // Header: lifeline names.
        out.push_str(&format!("{:>10} ", "time"));
        for i in 0..nodes {
            out.push_str(&format!("{:^COL$}", format!("O{i}")));
        }
        out.push('\n');
        let center = |i: usize| i * COL + COL / 2;
        for e in &self.events {
            let deliver = match &e.kind {
                TraceEventKind::Delivered => true,
                TraceEventKind::LocalEvent => false,
                _ => continue, // sends & faults are implicit
            };
            let mut row = vec![' '; nodes as usize * COL];
            for i in 0..nodes as usize {
                row[center(i)] = '|';
            }
            let (from, to) = (e.from.index() as usize, e.to.index() as usize);
            if deliver && from != to {
                let (lo, hi) = (center(from).min(center(to)), center(from).max(center(to)));
                for cell in row.iter_mut().take(hi).skip(lo) {
                    *cell = '-';
                }
                row[center(from)] = '+';
                row[center(to)] = if from < to { '>' } else { '<' };
            } else {
                row[center(to)] = '*';
            }
            out.push_str(&format!("{:>10} ", e.at.to_string()));
            out.push_str(&row.into_iter().collect::<String>());
            out.push_str(&format!(" {}", e.label));
            out.push('\n');
        }
        out
    }

    /// Exports the log as CSV (`time_us,kind,from,to,label`) for
    /// analysis outside the process. Fields are quoted per RFC 4180:
    /// a label containing a comma, a double quote or a line break is
    /// wrapped in quotes with internal quotes doubled; plain labels
    /// stay bare.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_net::TraceLog;
    ///
    /// let log = TraceLog::default();
    /// assert_eq!(log.to_csv(), "time_us,kind,from,to,label\n");
    /// ```
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(raw: &str) -> std::borrow::Cow<'_, str> {
            if raw.contains([',', '"', '\n', '\r']) {
                std::borrow::Cow::Owned(format!("\"{}\"", raw.replace('"', "\"\"")))
            } else {
                std::borrow::Cow::Borrowed(raw)
            }
        }
        let mut out = String::from("time_us,kind,from,to,label\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.at.as_micros(),
                e.kind,
                e.from,
                e.to,
                field(&e.label)
            ));
        }
        out
    }
}

impl<'a> IntoIterator for &'a TraceLog {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<TraceEvent> for TraceLog {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        TraceLog {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEvent> for TraceLog {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: TraceEventKind, label: &str) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(at),
            kind,
            from: NodeId::new(0),
            to: NodeId::new(1),
            label: label.to_owned(),
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut log = TraceLog::default();
        log.push(ev(1, TraceEventKind::Sent, "a"));
        log.push(ev(2, TraceEventKind::Delivered, "a"));
        let times: Vec<_> = log.iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![1, 2]);
        assert!(!log.is_empty());
    }

    #[test]
    fn filter_by_kind_and_label() {
        let mut log = TraceLog::default();
        log.push(ev(1, TraceEventKind::Sent, "x"));
        log.push(ev(2, TraceEventKind::Sent, "y"));
        log.push(ev(3, TraceEventKind::Delivered, "x"));
        assert_eq!(log.of_kind(&TraceEventKind::Sent).count(), 2);
        assert_eq!(log.with_label("x").count(), 2);
    }

    #[test]
    fn render_has_one_line_per_event() {
        let mut log = TraceLog::default();
        log.push(ev(1, TraceEventKind::Sent, "a"));
        log.push(ev(2, TraceEventKind::LocalEvent, "raise"));
        let rendered = log.render();
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.contains("raise"));
    }

    #[test]
    fn fault_events_render_their_cause() {
        let e = ev(5, TraceEventKind::Fault(FaultEvent::Dropped), "m");
        assert!(e.to_string().contains("Dropped"));
    }

    #[test]
    fn collect_and_extend() {
        let events = vec![
            ev(1, TraceEventKind::Sent, "a"),
            ev(2, TraceEventKind::Delivered, "a"),
        ];
        let mut log: TraceLog = events.clone().into_iter().collect();
        assert_eq!(log.len(), 2);
        log.extend(events);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn sequence_chart_draws_arrows_and_locals() {
        let mut log = TraceLog::default();
        log.push(TraceEvent {
            at: SimTime::from_micros(1),
            kind: TraceEventKind::LocalEvent,
            from: NodeId::new(1),
            to: NodeId::new(1),
            label: "raise".into(),
        });
        log.push(TraceEvent {
            at: SimTime::from_micros(2),
            kind: TraceEventKind::Delivered,
            from: NodeId::new(0),
            to: NodeId::new(2),
            label: "exception".into(),
        });
        log.push(TraceEvent {
            at: SimTime::from_micros(3),
            kind: TraceEventKind::Delivered,
            from: NodeId::new(2),
            to: NodeId::new(0),
            label: "ack".into(),
        });
        let chart = log.render_sequence_chart(3);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("O0") && lines[0].contains("O2"));
        assert!(lines[1].contains('*') && lines[1].ends_with("raise"));
        assert!(lines[2].contains('>') && lines[2].contains('+'));
        assert!(lines[3].contains('<'));
        // Sends are implicit: 3 events -> 3 rows + header.
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut log = TraceLog::default();
        log.push(ev(7, TraceEventKind::Sent, "exception"));
        let csv = log.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_us,kind,from,to,label"));
        assert_eq!(lines.next(), Some("7,sent,O0,O1,exception"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_quotes_labels_per_rfc_4180() {
        let mut log = TraceLog::default();
        log.push(ev(1, TraceEventKind::Sent, "commit, e1"));
        log.push(ev(2, TraceEventKind::Sent, "say \"ack\""));
        log.push(ev(3, TraceEventKind::Sent, "two\nlines"));
        let csv = log.to_csv();
        let mut lines = csv.split('\n').skip(1);
        assert_eq!(lines.next(), Some("1,sent,O0,O1,\"commit, e1\""));
        assert_eq!(lines.next(), Some("2,sent,O0,O1,\"say \"\"ack\"\"\""));
        // The embedded newline stays inside one quoted field.
        assert_eq!(lines.next(), Some("3,sent,O0,O1,\"two"));
        assert_eq!(lines.next(), Some("lines\""));
    }
}
