//! Fault injection for robustness experiments.
//!
//! The paper's fault model (§2) admits node crashes and transient
//! errors of nodes or the network. The resolution algorithm itself
//! assumes reliable FIFO channels, so faults are **off by default**; the
//! robustness tests and the fault-injection example turn them on to
//! observe how the protocol degrades (e.g. quiescence without commit
//! when a raiser's messages are lost).

use crate::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// A fault the plan injected into a concrete message or node, reported
/// through the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultEvent {
    /// The message was silently dropped.
    Dropped,
    /// The message was delivered twice.
    Duplicated,
    /// The destination node had crashed; delivery suppressed.
    DestinationCrashed,
    /// The source node had crashed; send suppressed.
    SourceCrashed,
    /// The message crossed an active partition boundary; dropped.
    Partitioned,
    /// The message crossed a *healing* partition boundary; deferred to
    /// the heal time instead of dropped (TCP-style retransmission).
    PartitionHealed,
    /// The message escaped the channel's FIFO clamp and overtook (or
    /// fell behind) its predecessors within a bounded window.
    Reordered,
    /// Delivery landed inside the destination's clock-freeze window and
    /// was deferred to the window's end.
    ClockFrozen,
    /// First delivery to a node after it came back from a
    /// crash-with-restart down-window.
    Restarted,
}

impl FaultEvent {
    /// Stable lower-case label for per-kind fault accounting (see
    /// [`NetStats::record_fault`](crate::NetStats::record_fault)).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::Dropped => "dropped",
            FaultEvent::Duplicated => "duplicated",
            FaultEvent::DestinationCrashed => "destination_crashed",
            FaultEvent::SourceCrashed => "source_crashed",
            FaultEvent::Partitioned => "partitioned",
            FaultEvent::PartitionHealed => "partition_healed",
            FaultEvent::Reordered => "reordered",
            FaultEvent::ClockFrozen => "clock_frozen",
            FaultEvent::Restarted => "restarted",
        }
    }
}

/// Declarative fault plan applied by [`SimNet`](crate::SimNet).
///
/// # Examples
///
/// ```
/// use caex_net::{FaultPlan, NodeId, SimTime};
///
/// let plan = FaultPlan::none()
///     .with_drop_probability(0.05)
///     .with_crash(NodeId::new(2), SimTime::from_millis(10));
/// assert!(plan.crashes_at(NodeId::new(2)).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    drop_probability: f64,
    duplicate_probability: f64,
    crashes: Vec<(NodeId, SimTime)>,
    partitions: Vec<Partition>,
    #[serde(default)]
    healing_partitions: Vec<Partition>,
    slowdowns: Vec<Slowdown>,
    reorder_probability: f64,
    reorder_window: SimTime,
    freezes: Vec<Freeze>,
    restarts: Vec<Restart>,
}

/// A per-node clock freeze: deliveries *to* the node that would land
/// inside the window are deferred to its end, as if the process were
/// SIGSTOP-ped and resumed — it then sees a burst of stale traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Freeze {
    node: NodeId,
    from: SimTime,
    until: SimTime,
}

/// A crash-with-restart: the node is down (neither sending nor
/// receiving; deliveries landing in the window are lost) during
/// `[down_from, up_at)` and resumes afterwards with whatever state it
/// had — the simulator's "zombie" returning after the failure detector
/// already reported it dead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Restart {
    node: NodeId,
    down_from: SimTime,
    up_at: SimTime,
}

/// A transient network degradation: latencies are multiplied while the
/// window is active (congestion, rerouting — the paper's "transient
/// errors … of the communication network", §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slowdown {
    factor: u32,
    from: SimTime,
    until: SimTime,
}

/// A transient network partition: messages between `group` and the
/// rest of the network are dropped while the window is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    group: Vec<NodeId>,
    from: SimTime,
    until: SimTime,
}

impl Partition {
    /// `true` if a `src → dst` message at time `at` crosses this
    /// partition while it is active.
    #[must_use]
    pub fn severs(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        self.group.contains(&src) != self.group.contains(&dst)
    }
}

impl FaultPlan {
    /// A plan that injects no faults (the algorithm's assumed regime).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            crashes: Vec::new(),
            partitions: Vec::new(),
            healing_partitions: Vec::new(),
            slowdowns: Vec::new(),
            reorder_probability: 0.0,
            reorder_window: SimTime::ZERO,
            freezes: Vec::new(),
            restarts: Vec::new(),
        }
    }

    /// Sets the probability that any message is silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_probability = p;
        self
    }

    /// Sets the probability that any message is delivered twice.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn with_duplicate_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplicate_probability = p;
        self
    }

    /// Schedules a crash-stop failure of `node` at virtual time `at`.
    /// From that moment the node neither sends nor receives.
    #[must_use]
    pub fn with_crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push((node, at));
        self
    }

    /// Returns the probability of dropping each message.
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Returns the probability of duplicating each message.
    #[must_use]
    pub fn duplicate_probability(&self) -> f64 {
        self.duplicate_probability
    }

    /// Adds a transient partition: messages between `group` and the
    /// rest of the network are dropped during `[from, until)`.
    #[must_use]
    pub fn with_partition<I>(mut self, group: I, from: SimTime, until: SimTime) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.partitions.push(Partition {
            group: group.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// `true` if a `src → dst` message at time `at` crosses any active
    /// partition.
    #[must_use]
    pub fn is_partitioned(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, at))
    }

    /// Adds a *healing* partition: messages between `group` and the
    /// rest of the network sent during `[from, until)` are **deferred**
    /// to the heal time `until` instead of dropped — the transport's
    /// retransmission (TCP buffering across a SIGSTOP, the wire mesh's
    /// redial-and-replay) eventually pushes them through. This is the
    /// in-sim model of a transient partition that a phi-accrual
    /// detector should suspect but never confirm.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_net::{FaultPlan, NodeId, SimTime};
    ///
    /// let plan = FaultPlan::none().with_healing_partition(
    ///     [NodeId::new(0)],
    ///     SimTime::from_millis(1),
    ///     SimTime::from_millis(5),
    /// );
    /// let inside = SimTime::from_millis(2);
    /// assert_eq!(
    ///     plan.heal_deferral(NodeId::new(0), NodeId::new(1), inside),
    ///     Some(SimTime::from_millis(5))
    /// );
    /// assert_eq!(plan.heal_deferral(NodeId::new(1), NodeId::new(2), inside), None);
    /// assert!(!plan.is_benign());
    /// ```
    #[must_use]
    pub fn with_healing_partition<I>(mut self, group: I, from: SimTime, until: SimTime) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.healing_partitions.push(Partition {
            group: group.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// If a `src → dst` send at time `at` crosses a healing partition,
    /// returns the time delivery is deferred to (the latest heal over
    /// all covering windows).
    #[must_use]
    pub fn heal_deferral(&self, src: NodeId, dst: NodeId, at: SimTime) -> Option<SimTime> {
        self.healing_partitions
            .iter()
            .filter(|p| p.severs(src, dst, at))
            .map(|p| p.until)
            .max()
    }

    /// Adds a transient slowdown: message latencies sampled during
    /// `[from, until)` are multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_slowdown(mut self, factor: u32, from: SimTime, until: SimTime) -> Self {
        assert!(factor >= 1, "slowdown factor must be at least 1");
        self.slowdowns.push(Slowdown {
            factor,
            from,
            until,
        });
        self
    }

    /// The combined latency multiplier active at time `at` (1 when no
    /// slowdown window covers it).
    #[must_use]
    pub fn slowdown_at(&self, at: SimTime) -> u64 {
        self.slowdowns
            .iter()
            .filter(|s| at >= s.from && at < s.until)
            .map(|s| u64::from(s.factor))
            .product::<u64>()
            .max(1)
    }

    /// Returns when `node` crashes, if it is scheduled to.
    #[must_use]
    pub fn crashes_at(&self, node: NodeId) -> Option<SimTime> {
        self.crashes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, t)| t)
    }

    /// Iterates every scheduled crash-stop failure as `(node, at)`.
    /// Engines use this to drive their failure detector: each survivor
    /// learns of the deserter some detection delay after `at`.
    pub fn crashes(&self) -> impl Iterator<Item = (NodeId, SimTime)> + '_ {
        self.crashes.iter().copied()
    }

    /// Enables bounded message reordering: each message escapes its
    /// channel's FIFO clamp with probability `p` and is instead delayed
    /// by up to `window` beyond its sampled latency. The §4.2 algorithm
    /// assumes FIFO channels, so this fault exercises exactly the
    /// assumption the paper makes (§2.1).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_net::{FaultPlan, SimTime};
    ///
    /// let plan = FaultPlan::none().with_reorder_window(0.3, SimTime::from_micros(500));
    /// assert_eq!(plan.reorder_probability(), 0.3);
    /// assert_eq!(plan.reorder_window(), SimTime::from_micros(500));
    /// assert!(!plan.is_benign());
    /// ```
    #[must_use]
    pub fn with_reorder_window(mut self, p: f64, window: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.reorder_probability = p;
        self.reorder_window = window;
        self
    }

    /// Returns the probability that a message escapes FIFO ordering.
    #[must_use]
    pub fn reorder_probability(&self) -> f64 {
        self.reorder_probability
    }

    /// Returns the bound on the extra delay a reordered message gains.
    #[must_use]
    pub fn reorder_window(&self) -> SimTime {
        self.reorder_window
    }

    /// Freezes `node`'s clock during `[from, until)`: deliveries that
    /// would land inside the window are deferred to `until`, modelling a
    /// SIGSTOP-ped process that resumes and replays a burst of stale
    /// traffic (the in-sim analogue of `--crash-mode stop`).
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_net::{FaultPlan, NodeId, SimTime};
    ///
    /// let plan = FaultPlan::none().with_clock_freeze(
    ///     NodeId::new(1),
    ///     SimTime::from_micros(10),
    ///     SimTime::from_micros(40),
    /// );
    /// let n = NodeId::new(1);
    /// assert_eq!(
    ///     plan.freeze_deferral(n, SimTime::from_micros(20)),
    ///     Some(SimTime::from_micros(40))
    /// );
    /// assert_eq!(plan.freeze_deferral(n, SimTime::from_micros(40)), None);
    /// assert_eq!(plan.freeze_deferral(NodeId::new(2), SimTime::from_micros(20)), None);
    /// ```
    #[must_use]
    pub fn with_clock_freeze(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.freezes.push(Freeze { node, from, until });
        self
    }

    /// If a delivery to `node` at time `at` lands inside a clock-freeze
    /// window, returns the time it is deferred to (the latest end over
    /// all covering windows).
    #[must_use]
    pub fn freeze_deferral(&self, node: NodeId, at: SimTime) -> Option<SimTime> {
        self.freezes
            .iter()
            .filter(|fr| fr.node == node && at >= fr.from && at < fr.until)
            .map(|fr| fr.until)
            .max()
    }

    /// Schedules a crash-with-restart: `node` is down during
    /// `[down_from, up_at)` — it neither sends nor receives, and
    /// deliveries landing in the window are lost — then resumes with
    /// its pre-crash state. Survivors whose failure detector fired in
    /// the meantime must fence the returning zombie's stale messages.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`up_at <= down_from`).
    ///
    /// # Examples
    ///
    /// ```
    /// use caex_net::{FaultPlan, NodeId, SimTime};
    ///
    /// let plan = FaultPlan::none().with_restart(
    ///     NodeId::new(3),
    ///     SimTime::from_millis(1),
    ///     SimTime::from_millis(5),
    /// );
    /// let n = NodeId::new(3);
    /// assert!(plan.is_down(n, SimTime::from_millis(2)));
    /// assert!(!plan.is_down(n, SimTime::from_millis(5)));
    /// assert!(!plan.is_down(n, SimTime::ZERO));
    /// assert!(!plan.is_benign());
    /// ```
    #[must_use]
    pub fn with_restart(mut self, node: NodeId, down_from: SimTime, up_at: SimTime) -> Self {
        assert!(up_at > down_from, "restart window must be non-empty");
        self.restarts.push(Restart {
            node,
            down_from,
            up_at,
        });
        self
    }

    /// `true` if `node` is inside a crash-with-restart down-window at
    /// time `at`.
    #[must_use]
    pub fn is_down(&self, node: NodeId, at: SimTime) -> bool {
        self.restarts
            .iter()
            .any(|r| r.node == node && at >= r.down_from && at < r.up_at)
    }

    /// Iterates every crash-with-restart as `(node, down_from, up_at)`.
    pub fn restarts(&self) -> impl Iterator<Item = (NodeId, SimTime, SimTime)> + '_ {
        self.restarts.iter().map(|r| (r.node, r.down_from, r.up_at))
    }

    /// `true` if the plan can never perturb an execution.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.healing_partitions.is_empty()
            && self.slowdowns.is_empty()
            && self.reorder_probability == 0.0
            && self.freezes.is_empty()
            && self.restarts.is_empty()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healing_partition_defers_instead_of_dropping() {
        let plan = FaultPlan::none().with_healing_partition(
            [NodeId::new(0), NodeId::new(1)],
            SimTime::from_micros(10),
            SimTime::from_micros(20),
        );
        let inside = SimTime::from_micros(15);
        // Crossing sends are deferred to the heal time, not severed.
        assert!(!plan.is_partitioned(NodeId::new(0), NodeId::new(2), inside));
        assert_eq!(
            plan.heal_deferral(NodeId::new(0), NodeId::new(2), inside),
            Some(SimTime::from_micros(20))
        );
        assert_eq!(
            plan.heal_deferral(NodeId::new(2), NodeId::new(1), inside),
            Some(SimTime::from_micros(20))
        );
        // Same-side and out-of-window sends are untouched.
        assert_eq!(plan.heal_deferral(NodeId::new(0), NodeId::new(1), inside), None);
        assert_eq!(
            plan.heal_deferral(NodeId::new(0), NodeId::new(2), SimTime::from_micros(20)),
            None
        );
        assert!(!plan.is_benign());
    }

    #[test]
    fn none_is_benign() {
        assert!(FaultPlan::none().is_benign());
        assert!(FaultPlan::default().is_benign());
    }

    #[test]
    fn builders_set_fields() {
        let plan = FaultPlan::none()
            .with_drop_probability(0.25)
            .with_duplicate_probability(0.5)
            .with_crash(NodeId::new(1), SimTime::from_micros(9));
        assert_eq!(plan.drop_probability(), 0.25);
        assert_eq!(plan.duplicate_probability(), 0.5);
        assert_eq!(
            plan.crashes_at(NodeId::new(1)),
            Some(SimTime::from_micros(9))
        );
        assert_eq!(plan.crashes_at(NodeId::new(2)), None);
        assert!(!plan.is_benign());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::none().with_drop_probability(1.5);
    }

    #[test]
    fn slowdowns_multiply_within_windows_only() {
        let plan = FaultPlan::none()
            .with_slowdown(3, SimTime::from_micros(10), SimTime::from_micros(20))
            .with_slowdown(2, SimTime::from_micros(15), SimTime::from_micros(30));
        assert_eq!(plan.slowdown_at(SimTime::from_micros(5)), 1);
        assert_eq!(plan.slowdown_at(SimTime::from_micros(12)), 3);
        assert_eq!(plan.slowdown_at(SimTime::from_micros(17)), 6); // overlap
        assert_eq!(plan.slowdown_at(SimTime::from_micros(25)), 2);
        assert_eq!(plan.slowdown_at(SimTime::from_micros(30)), 1);
        assert!(!plan.is_benign());
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn zero_slowdown_rejected() {
        let _ = FaultPlan::none().with_slowdown(0, SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    fn reorder_window_sets_probability_and_bound() {
        let plan = FaultPlan::none().with_reorder_window(0.5, SimTime::from_micros(250));
        assert_eq!(plan.reorder_probability(), 0.5);
        assert_eq!(plan.reorder_window(), SimTime::from_micros(250));
        assert!(!plan.is_benign());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn reorder_rejects_bad_probability() {
        let _ = FaultPlan::none().with_reorder_window(-0.1, SimTime::ZERO);
    }

    #[test]
    fn clock_freeze_defers_to_latest_covering_window() {
        let n = NodeId::new(4);
        let plan = FaultPlan::none()
            .with_clock_freeze(n, SimTime::from_micros(10), SimTime::from_micros(30))
            .with_clock_freeze(n, SimTime::from_micros(20), SimTime::from_micros(50));
        assert_eq!(
            plan.freeze_deferral(n, SimTime::from_micros(15)),
            Some(SimTime::from_micros(30))
        );
        // Overlap: the later window wins.
        assert_eq!(
            plan.freeze_deferral(n, SimTime::from_micros(25)),
            Some(SimTime::from_micros(50))
        );
        assert_eq!(plan.freeze_deferral(n, SimTime::from_micros(50)), None);
        assert_eq!(plan.freeze_deferral(NodeId::new(5), SimTime::from_micros(15)), None);
        assert!(!plan.is_benign());
    }

    #[test]
    fn restart_down_window_is_half_open() {
        let n = NodeId::new(2);
        let plan =
            FaultPlan::none().with_restart(n, SimTime::from_micros(100), SimTime::from_micros(300));
        assert!(!plan.is_down(n, SimTime::from_micros(99)));
        assert!(plan.is_down(n, SimTime::from_micros(100)));
        assert!(plan.is_down(n, SimTime::from_micros(299)));
        assert!(!plan.is_down(n, SimTime::from_micros(300)));
        assert_eq!(
            plan.restarts().collect::<Vec<_>>(),
            vec![(n, SimTime::from_micros(100), SimTime::from_micros(300))]
        );
        assert!(!plan.is_benign());
    }

    #[test]
    #[should_panic(expected = "restart window must be non-empty")]
    fn empty_restart_window_rejected() {
        let _ = FaultPlan::none().with_restart(NodeId::new(0), SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    fn crashes_iterator_exposes_schedule() {
        let plan = FaultPlan::none()
            .with_crash(NodeId::new(1), SimTime::from_micros(5))
            .with_crash(NodeId::new(3), SimTime::from_micros(9));
        assert_eq!(
            plan.crashes().collect::<Vec<_>>(),
            vec![
                (NodeId::new(1), SimTime::from_micros(5)),
                (NodeId::new(3), SimTime::from_micros(9)),
            ]
        );
    }

    #[test]
    fn fault_event_labels_are_stable() {
        assert_eq!(FaultEvent::Dropped.label(), "dropped");
        assert_eq!(FaultEvent::Reordered.label(), "reordered");
        assert_eq!(FaultEvent::ClockFrozen.label(), "clock_frozen");
        assert_eq!(FaultEvent::Restarted.label(), "restarted");
    }

    #[test]
    fn partition_severs_only_across_groups_in_window() {
        let plan = FaultPlan::none().with_partition(
            [NodeId::new(0), NodeId::new(1)],
            SimTime::from_micros(10),
            SimTime::from_micros(20),
        );
        let inside = SimTime::from_micros(15);
        // Across the boundary, inside the window.
        assert!(plan.is_partitioned(NodeId::new(0), NodeId::new(2), inside));
        assert!(plan.is_partitioned(NodeId::new(2), NodeId::new(1), inside));
        // Same side: fine.
        assert!(!plan.is_partitioned(NodeId::new(0), NodeId::new(1), inside));
        assert!(!plan.is_partitioned(NodeId::new(2), NodeId::new(3), inside));
        // Outside the window: fine.
        assert!(!plan.is_partitioned(NodeId::new(0), NodeId::new(2), SimTime::from_micros(9)));
        assert!(!plan.is_partitioned(NodeId::new(0), NodeId::new(2), SimTime::from_micros(20)));
        assert!(!plan.is_benign());
    }
}
