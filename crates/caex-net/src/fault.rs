//! Fault injection for robustness experiments.
//!
//! The paper's fault model (§2) admits node crashes and transient
//! errors of nodes or the network. The resolution algorithm itself
//! assumes reliable FIFO channels, so faults are **off by default**; the
//! robustness tests and the fault-injection example turn them on to
//! observe how the protocol degrades (e.g. quiescence without commit
//! when a raiser's messages are lost).

use crate::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// A fault the plan injected into a concrete message or node, reported
/// through the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultEvent {
    /// The message was silently dropped.
    Dropped,
    /// The message was delivered twice.
    Duplicated,
    /// The destination node had crashed; delivery suppressed.
    DestinationCrashed,
    /// The source node had crashed; send suppressed.
    SourceCrashed,
    /// The message crossed an active partition boundary; dropped.
    Partitioned,
}

/// Declarative fault plan applied by [`SimNet`](crate::SimNet).
///
/// # Examples
///
/// ```
/// use caex_net::{FaultPlan, NodeId, SimTime};
///
/// let plan = FaultPlan::none()
///     .with_drop_probability(0.05)
///     .with_crash(NodeId::new(2), SimTime::from_millis(10));
/// assert!(plan.crashes_at(NodeId::new(2)).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    drop_probability: f64,
    duplicate_probability: f64,
    crashes: Vec<(NodeId, SimTime)>,
    partitions: Vec<Partition>,
    slowdowns: Vec<Slowdown>,
}

/// A transient network degradation: latencies are multiplied while the
/// window is active (congestion, rerouting — the paper's "transient
/// errors … of the communication network", §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slowdown {
    factor: u32,
    from: SimTime,
    until: SimTime,
}

/// A transient network partition: messages between `group` and the
/// rest of the network are dropped while the window is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    group: Vec<NodeId>,
    from: SimTime,
    until: SimTime,
}

impl Partition {
    /// `true` if a `src → dst` message at time `at` crosses this
    /// partition while it is active.
    #[must_use]
    pub fn severs(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        self.group.contains(&src) != self.group.contains(&dst)
    }
}

impl FaultPlan {
    /// A plan that injects no faults (the algorithm's assumed regime).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            crashes: Vec::new(),
            partitions: Vec::new(),
            slowdowns: Vec::new(),
        }
    }

    /// Sets the probability that any message is silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_probability = p;
        self
    }

    /// Sets the probability that any message is delivered twice.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn with_duplicate_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplicate_probability = p;
        self
    }

    /// Schedules a crash-stop failure of `node` at virtual time `at`.
    /// From that moment the node neither sends nor receives.
    #[must_use]
    pub fn with_crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push((node, at));
        self
    }

    /// Returns the probability of dropping each message.
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Returns the probability of duplicating each message.
    #[must_use]
    pub fn duplicate_probability(&self) -> f64 {
        self.duplicate_probability
    }

    /// Adds a transient partition: messages between `group` and the
    /// rest of the network are dropped during `[from, until)`.
    #[must_use]
    pub fn with_partition<I>(mut self, group: I, from: SimTime, until: SimTime) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.partitions.push(Partition {
            group: group.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// `true` if a `src → dst` message at time `at` crosses any active
    /// partition.
    #[must_use]
    pub fn is_partitioned(&self, src: NodeId, dst: NodeId, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, at))
    }

    /// Adds a transient slowdown: message latencies sampled during
    /// `[from, until)` are multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn with_slowdown(mut self, factor: u32, from: SimTime, until: SimTime) -> Self {
        assert!(factor >= 1, "slowdown factor must be at least 1");
        self.slowdowns.push(Slowdown {
            factor,
            from,
            until,
        });
        self
    }

    /// The combined latency multiplier active at time `at` (1 when no
    /// slowdown window covers it).
    #[must_use]
    pub fn slowdown_at(&self, at: SimTime) -> u64 {
        self.slowdowns
            .iter()
            .filter(|s| at >= s.from && at < s.until)
            .map(|s| u64::from(s.factor))
            .product::<u64>()
            .max(1)
    }

    /// Returns when `node` crashes, if it is scheduled to.
    #[must_use]
    pub fn crashes_at(&self, node: NodeId) -> Option<SimTime> {
        self.crashes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, t)| t)
    }

    /// `true` if the plan can never perturb an execution.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.slowdowns.is_empty()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_benign() {
        assert!(FaultPlan::none().is_benign());
        assert!(FaultPlan::default().is_benign());
    }

    #[test]
    fn builders_set_fields() {
        let plan = FaultPlan::none()
            .with_drop_probability(0.25)
            .with_duplicate_probability(0.5)
            .with_crash(NodeId::new(1), SimTime::from_micros(9));
        assert_eq!(plan.drop_probability(), 0.25);
        assert_eq!(plan.duplicate_probability(), 0.5);
        assert_eq!(
            plan.crashes_at(NodeId::new(1)),
            Some(SimTime::from_micros(9))
        );
        assert_eq!(plan.crashes_at(NodeId::new(2)), None);
        assert!(!plan.is_benign());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::none().with_drop_probability(1.5);
    }

    #[test]
    fn slowdowns_multiply_within_windows_only() {
        let plan = FaultPlan::none()
            .with_slowdown(3, SimTime::from_micros(10), SimTime::from_micros(20))
            .with_slowdown(2, SimTime::from_micros(15), SimTime::from_micros(30));
        assert_eq!(plan.slowdown_at(SimTime::from_micros(5)), 1);
        assert_eq!(plan.slowdown_at(SimTime::from_micros(12)), 3);
        assert_eq!(plan.slowdown_at(SimTime::from_micros(17)), 6); // overlap
        assert_eq!(plan.slowdown_at(SimTime::from_micros(25)), 2);
        assert_eq!(plan.slowdown_at(SimTime::from_micros(30)), 1);
        assert!(!plan.is_benign());
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn zero_slowdown_rejected() {
        let _ = FaultPlan::none().with_slowdown(0, SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    fn partition_severs_only_across_groups_in_window() {
        let plan = FaultPlan::none().with_partition(
            [NodeId::new(0), NodeId::new(1)],
            SimTime::from_micros(10),
            SimTime::from_micros(20),
        );
        let inside = SimTime::from_micros(15);
        // Across the boundary, inside the window.
        assert!(plan.is_partitioned(NodeId::new(0), NodeId::new(2), inside));
        assert!(plan.is_partitioned(NodeId::new(2), NodeId::new(1), inside));
        // Same side: fine.
        assert!(!plan.is_partitioned(NodeId::new(0), NodeId::new(1), inside));
        assert!(!plan.is_partitioned(NodeId::new(2), NodeId::new(3), inside));
        // Outside the window: fine.
        assert!(!plan.is_partitioned(NodeId::new(0), NodeId::new(2), SimTime::from_micros(9)));
        assert!(!plan.is_partitioned(NodeId::new(0), NodeId::new(2), SimTime::from_micros(20)));
        assert!(!plan.is_benign());
    }
}
