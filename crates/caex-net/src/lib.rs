//! Deterministic distributed-system substrate for the `caex` workspace.
//!
//! The resolution algorithm of Romanovsky, Xu & Randell (1996) assumes
//! only two things of its environment (§4.2): **reliable FIFO message
//! passing between objects** and asynchronous progress of the
//! participating objects. This crate provides that substrate twice:
//!
//! - [`SimNet`] — a deterministic discrete-event simulator with a
//!   virtual clock, per-ordered-pair FIFO channels, pluggable latency
//!   models, optional fault injection, per-kind message statistics and a
//!   full delivery trace. All the paper's complexity measurements run on
//!   it because it counts real messages exactly and reproducibly.
//! - [`ThreadNet`] — a multi-threaded transport over crossbeam channels,
//!   demonstrating the same algorithm outside simulation.
//!
//! # Quick example
//!
//! ```
//! use caex_net::{NetConfig, NodeId, SimNet};
//!
//! let mut net: SimNet<&'static str> = SimNet::new(NetConfig::default(), 2);
//! let (a, b) = (NodeId::new(0), NodeId::new(1));
//! net.send(a, b, "ping");
//! net.send(a, b, "pong");
//!
//! let first = net.next_delivery().unwrap();
//! let second = net.next_delivery().unwrap();
//! // FIFO: per-channel order is preserved regardless of latency jitter.
//! assert_eq!(first.payload, "ping");
//! assert_eq!(second.payload, "pong");
//! assert!(net.next_delivery().is_none());
//! ```


mod channels;
mod fault;
mod latency;
mod node;
mod port;
mod sim;
mod stats;
mod thread_net;
mod time;
mod trace;

pub use channels::ChannelState;
pub use fault::{FaultEvent, FaultPlan, Freeze, Partition, Restart};
pub use latency::LatencyModel;
pub use node::NodeId;
pub use port::FifoPort;
pub use sim::{Delivery, DeliverySource, NetConfig, SimNet};
pub use stats::NetStats;
pub use thread_net::{NodePort, RecvTimeoutError, ThreadNet};
pub use time::SimTime;
pub use trace::{TraceEvent, TraceEventKind, TraceLog};

/// Classifies message payloads for per-kind statistics.
///
/// The paper's complexity analysis (§4.4) counts messages *by type*
/// (`Exception`, `ACK`, `HaveNested`, `NestedCompleted`, `Commit`);
/// implementing this trait lets [`SimNet`] maintain those counters
/// automatically.
///
/// # Examples
///
/// ```
/// use caex_net::Kinded;
///
/// enum Msg { Ping, Pong }
/// impl Kinded for Msg {
///     fn kind(&self) -> &'static str {
///         match self { Msg::Ping => "ping", Msg::Pong => "pong" }
///     }
/// }
/// assert_eq!(Msg::Ping.kind(), "ping");
/// ```
pub trait Kinded {
    /// A short static label naming this payload's message type.
    fn kind(&self) -> &'static str;

    /// The payload's size on the wire in bytes, used by bandwidth-
    /// limited links ([`NetConfig::with_bandwidth`]) to charge
    /// serialization delay. The default is a nominal small-message
    /// size; protocol crates override it with their real encoding
    /// (§2.1: channels have "relatively narrow bandwidth").
    fn wire_len(&self) -> usize {
        16
    }

    /// The index of the action this payload belongs to, if any — used
    /// by [`NetStats`] to break counters down per action when many
    /// actions multiplex one network. The default (`None`) keeps
    /// single-action payloads and non-protocol traffic out of the
    /// per-action tables.
    fn action_index(&self) -> Option<u32> {
        None
    }
}

impl Kinded for &'static str {
    fn kind(&self) -> &'static str {
        self
    }
}

impl Kinded for String {
    fn kind(&self) -> &'static str {
        "string"
    }
}
