//! Per-kind message statistics.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Message counters accumulated by a network.
///
/// Tracks sends, deliveries and drops, each broken down by message kind
/// (see [`Kinded`](crate::Kinded)). The §4.4 message-complexity tables
/// are produced directly from these counters.
///
/// # Examples
///
/// ```
/// use caex_net::NetStats;
///
/// let mut stats = NetStats::default();
/// stats.record_send("exception");
/// stats.record_send("ack");
/// stats.record_delivery("exception");
/// assert_eq!(stats.sent_total(), 2);
/// assert_eq!(stats.sent_of_kind("exception"), 1);
/// assert_eq!(stats.delivered_total(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    sent: BTreeMap<String, u64>,
    delivered: BTreeMap<String, u64>,
    dropped: BTreeMap<String, u64>,
    /// Messages sent per ordered (source, destination) pair.
    channels: BTreeMap<(NodeId, NodeId), u64>,
    max_in_flight: usize,
    /// Injected faults per fault kind (see
    /// [`FaultEvent::label`](crate::FaultEvent::label)).
    #[serde(default)]
    faults: BTreeMap<String, u64>,
    /// Recovery actions per kind (`"reconnect"`, `"suspicion_flap"`,
    /// `"replayed_frame"`, …) — the transport surviving a fault rather
    /// than suffering one.
    #[serde(default)]
    recovery: BTreeMap<String, u64>,
    /// Per-action counters, keyed by action index, for networks shared
    /// by a fleet of actions (see [`Kinded::action_index`](crate::Kinded::action_index)).
    #[serde(default)]
    per_action: BTreeMap<u32, ActionCounters>,
}

/// Send/delivery/drop counters for one action sharing a network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionCounters {
    /// Messages sent on behalf of this action.
    pub sent: u64,
    /// Messages delivered on behalf of this action.
    pub delivered: u64,
    /// Messages dropped (faults, crashed destinations) for this action.
    pub dropped: u64,
}

impl NetStats {
    /// Records one send of a message of `kind`.
    pub fn record_send(&mut self, kind: &str) {
        *self.sent.entry(kind.to_owned()).or_default() += 1;
    }

    /// Records the channel a send used (load accounting).
    pub fn record_channel(&mut self, from: NodeId, to: NodeId) {
        *self.channels.entry((from, to)).or_default() += 1;
    }

    /// Messages sent on one ordered channel.
    #[must_use]
    pub fn channel_load(&self, from: NodeId, to: NodeId) -> u64 {
        self.channels.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Total messages a node received (its in-degree load) — the
    /// hot-spot metric for centralized designs.
    #[must_use]
    pub fn node_in_load(&self, node: NodeId) -> u64 {
        self.channels
            .iter()
            .filter(|((_, to), _)| *to == node)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Total messages a node sent (its out-degree load).
    #[must_use]
    pub fn node_out_load(&self, node: NodeId) -> u64 {
        self.channels
            .iter()
            .filter(|((from, _), _)| *from == node)
            .map(|(_, &c)| c)
            .sum()
    }

    /// The node with the highest in-degree load, with that load.
    #[must_use]
    pub fn hottest_receiver(&self) -> Option<(NodeId, u64)> {
        let mut per_node: BTreeMap<NodeId, u64> = BTreeMap::new();
        for ((_, to), &c) in &self.channels {
            *per_node.entry(*to).or_default() += c;
        }
        per_node.into_iter().max_by_key(|&(_, load)| load)
    }

    /// Records one delivery of a message of `kind`.
    pub fn record_delivery(&mut self, kind: &str) {
        *self.delivered.entry(kind.to_owned()).or_default() += 1;
    }

    /// Records one drop of a message of `kind`.
    pub fn record_drop(&mut self, kind: &str) {
        *self.dropped.entry(kind.to_owned()).or_default() += 1;
    }

    /// Records one send attributed to action `action`.
    pub fn record_action_send(&mut self, action: u32) {
        self.per_action.entry(action).or_default().sent += 1;
    }

    /// Records one delivery attributed to action `action`.
    pub fn record_action_delivery(&mut self, action: u32) {
        self.per_action.entry(action).or_default().delivered += 1;
    }

    /// Records one drop attributed to action `action`.
    pub fn record_action_drop(&mut self, action: u32) {
        self.per_action.entry(action).or_default().dropped += 1;
    }

    /// Counters for one action, zeroed if the action never used this net.
    #[must_use]
    pub fn action_counters(&self, action: u32) -> ActionCounters {
        self.per_action.get(&action).copied().unwrap_or_default()
    }

    /// Iterates `(action index, counters)` pairs in action order.
    pub fn actions_seen(&self) -> impl Iterator<Item = (u32, ActionCounters)> + '_ {
        self.per_action.iter().map(|(&a, &c)| (a, c))
    }

    /// Updates the high-water mark of simultaneously in-flight messages.
    pub fn observe_in_flight(&mut self, current: usize) {
        self.max_in_flight = self.max_in_flight.max(current);
    }

    /// Records one injected fault of `kind` (a
    /// [`FaultEvent::label`](crate::FaultEvent::label) string).
    pub fn record_fault(&mut self, kind: &str) {
        *self.faults.entry(kind.to_owned()).or_default() += 1;
    }

    /// Faults injected of one kind.
    #[must_use]
    pub fn fault_of_kind(&self, kind: &str) -> u64 {
        self.faults.get(kind).copied().unwrap_or(0)
    }

    /// Records one recovery action of `kind` — a reconnect after a
    /// broken connection, a suspicion flap (a peer suspected and then
    /// heard from again), a frame replayed after a redial.
    pub fn record_recovery(&mut self, kind: &str) {
        *self.recovery.entry(kind.to_owned()).or_default() += 1;
    }

    /// Recovery actions of one kind.
    #[must_use]
    pub fn recovery_of_kind(&self, kind: &str) -> u64 {
        self.recovery.get(kind).copied().unwrap_or(0)
    }

    /// Total recovery actions (all kinds).
    #[must_use]
    pub fn recoveries_total(&self) -> u64 {
        self.recovery.values().sum()
    }

    /// Total faults injected (all kinds).
    #[must_use]
    pub fn faults_total(&self) -> u64 {
        self.faults.values().sum()
    }

    /// Total messages sent (all kinds).
    #[must_use]
    pub fn sent_total(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages delivered (all kinds).
    #[must_use]
    pub fn delivered_total(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Total messages dropped (all kinds).
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Messages sent of one kind.
    #[must_use]
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent.get(kind).copied().unwrap_or(0)
    }

    /// Messages delivered of one kind.
    #[must_use]
    pub fn delivered_of_kind(&self, kind: &str) -> u64 {
        self.delivered.get(kind).copied().unwrap_or(0)
    }

    /// Messages dropped of one kind.
    #[must_use]
    pub fn dropped_of_kind(&self, kind: &str) -> u64 {
        self.dropped.get(kind).copied().unwrap_or(0)
    }

    /// Iterates `(kind, sent)` pairs in kind order.
    pub fn sent_by_kind(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.sent.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The largest number of messages that were in flight at once.
    #[must_use]
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Merges another stats record into this one (kind-wise sums).
    pub fn merge(&mut self, other: &NetStats) {
        for (k, v) in &other.sent {
            *self.sent.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.delivered {
            *self.delivered.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.dropped {
            *self.dropped.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.channels {
            *self.channels.entry(*k).or_default() += v;
        }
        for (k, v) in &other.faults {
            *self.faults.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.recovery {
            *self.recovery.entry(k.clone()).or_default() += v;
        }
        for (&a, c) in &other.per_action {
            let mine = self.per_action.entry(a).or_default();
            mine.sent += c.sent;
            mine.delivered += c.delivered;
            mine.dropped += c.dropped;
        }
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sent={} delivered={} dropped={} max_in_flight={}",
            self.sent_total(),
            self.delivered_total(),
            self.dropped_total(),
            self.max_in_flight
        )?;
        // One row per kind over the union of all three counters: a
        // kind that was only ever dropped still shows up.
        let kinds: std::collections::BTreeSet<&str> = self
            .sent
            .keys()
            .chain(self.delivered.keys())
            .chain(self.dropped.keys())
            .map(String::as_str)
            .collect();
        for kind in kinds {
            writeln!(
                f,
                "  {kind}: sent {} delivered {} dropped {}",
                self.sent_of_kind(kind),
                self.delivered_of_kind(kind),
                self.dropped_of_kind(kind)
            )?;
        }
        // Per-action rows only earn space when the net is actually
        // shared: a single action's row would repeat the totals.
        if self.per_action.len() > 1 {
            for (a, c) in &self.per_action {
                writeln!(
                    f,
                    "  A{a}: sent {} delivered {} dropped {}",
                    c.sent, c.delivered, c.dropped
                )?;
            }
        }
        for (kind, count) in &self.faults {
            writeln!(f, "  fault {kind}: {count}")?;
        }
        for (kind, count) in &self.recovery {
            writeln!(f, "  recovery {kind}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let mut s = NetStats::default();
        s.record_send("a");
        s.record_send("a");
        s.record_send("b");
        s.record_delivery("a");
        s.record_drop("b");
        assert_eq!(s.sent_of_kind("a"), 2);
        assert_eq!(s.sent_of_kind("b"), 1);
        assert_eq!(s.sent_of_kind("c"), 0);
        assert_eq!(s.sent_total(), 3);
        assert_eq!(s.delivered_total(), 1);
        assert_eq!(s.dropped_of_kind("b"), 1);
    }

    #[test]
    fn in_flight_high_water_mark() {
        let mut s = NetStats::default();
        s.observe_in_flight(3);
        s.observe_in_flight(1);
        s.observe_in_flight(7);
        s.observe_in_flight(2);
        assert_eq!(s.max_in_flight(), 7);
    }

    #[test]
    fn merge_sums_kinds() {
        let mut a = NetStats::default();
        a.record_send("x");
        a.observe_in_flight(2);
        let mut b = NetStats::default();
        b.record_send("x");
        b.record_send("y");
        b.observe_in_flight(5);
        a.merge(&b);
        assert_eq!(a.sent_of_kind("x"), 2);
        assert_eq!(a.sent_of_kind("y"), 1);
        assert_eq!(a.max_in_flight(), 5);
    }

    #[test]
    fn display_mentions_totals() {
        let mut s = NetStats::default();
        s.record_send("exception");
        let text = s.to_string();
        assert!(text.contains("sent=1"));
        assert!(text.contains("exception"));
    }

    #[test]
    fn display_breaks_down_deliveries_and_drops_per_kind() {
        let mut s = NetStats::default();
        s.record_send("exception");
        s.record_delivery("exception");
        s.record_send("ack");
        s.record_drop("ack");
        // A kind never sent but dropped (e.g. merged from a partial
        // record) still gets a row.
        s.record_drop("commit");
        let text = s.to_string();
        assert!(text.contains("exception: sent 1 delivered 1 dropped 0"), "{text}");
        assert!(text.contains("ack: sent 1 delivered 0 dropped 1"), "{text}");
        assert!(text.contains("commit: sent 0 delivered 0 dropped 1"), "{text}");
    }

    #[test]
    fn channel_and_node_loads() {
        let mut s = NetStats::default();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        s.record_channel(a, c);
        s.record_channel(b, c);
        s.record_channel(b, c);
        s.record_channel(c, a);
        assert_eq!(s.channel_load(b, c), 2);
        assert_eq!(s.channel_load(c, b), 0);
        assert_eq!(s.node_in_load(c), 3);
        assert_eq!(s.node_out_load(b), 2);
        assert_eq!(s.hottest_receiver(), Some((c, 3)));
    }

    #[test]
    fn merge_sums_channels() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mut x = NetStats::default();
        x.record_channel(a, b);
        let mut y = NetStats::default();
        y.record_channel(a, b);
        x.merge(&y);
        assert_eq!(x.channel_load(a, b), 2);
    }

    #[test]
    fn faults_accumulate_merge_and_display() {
        let mut a = NetStats::default();
        a.record_fault("reordered");
        a.record_fault("reordered");
        a.record_fault("clock_frozen");
        let mut b = NetStats::default();
        b.record_fault("reordered");
        a.merge(&b);
        assert_eq!(a.fault_of_kind("reordered"), 3);
        assert_eq!(a.fault_of_kind("clock_frozen"), 1);
        assert_eq!(a.fault_of_kind("restarted"), 0);
        assert_eq!(a.faults_total(), 4);
        let text = a.to_string();
        assert!(text.contains("fault reordered: 3"), "{text}");
        assert!(text.contains("fault clock_frozen: 1"), "{text}");
    }

    #[test]
    fn recoveries_accumulate_merge_and_display() {
        let mut a = NetStats::default();
        a.record_recovery("reconnect");
        a.record_recovery("suspicion_flap");
        let mut b = NetStats::default();
        b.record_recovery("reconnect");
        b.record_recovery("replayed_frame");
        a.merge(&b);
        assert_eq!(a.recovery_of_kind("reconnect"), 2);
        assert_eq!(a.recovery_of_kind("suspicion_flap"), 1);
        assert_eq!(a.recovery_of_kind("replayed_frame"), 1);
        assert_eq!(a.recovery_of_kind("unknown"), 0);
        assert_eq!(a.recoveries_total(), 4);
        let text = a.to_string();
        assert!(text.contains("recovery reconnect: 2"), "{text}");
        assert!(text.contains("recovery suspicion_flap: 1"), "{text}");
    }

    #[test]
    fn per_action_counters_accumulate_and_merge() {
        let mut a = NetStats::default();
        a.record_action_send(0);
        a.record_action_send(0);
        a.record_action_delivery(0);
        a.record_action_send(3);
        a.record_action_drop(3);
        let mut b = NetStats::default();
        b.record_action_send(3);
        a.merge(&b);
        assert_eq!(a.action_counters(0).sent, 2);
        assert_eq!(a.action_counters(0).delivered, 1);
        assert_eq!(a.action_counters(3).sent, 2);
        assert_eq!(a.action_counters(3).dropped, 1);
        assert_eq!(a.action_counters(7), ActionCounters::default());
        let seen: Vec<u32> = a.actions_seen().map(|(i, _)| i).collect();
        assert_eq!(seen, vec![0, 3]);
    }

    #[test]
    fn display_lists_actions_only_when_net_is_shared() {
        let mut solo = NetStats::default();
        solo.record_action_send(0);
        assert!(!solo.to_string().contains("A0:"), "{solo}");

        let mut shared = NetStats::default();
        shared.record_action_send(0);
        shared.record_action_delivery(0);
        shared.record_action_send(4);
        shared.record_action_drop(4);
        let text = shared.to_string();
        assert!(text.contains("A0: sent 1 delivered 1 dropped 0"), "{text}");
        assert!(text.contains("A4: sent 1 delivered 0 dropped 1"), "{text}");
    }

    #[test]
    fn sent_by_kind_is_sorted() {
        let mut s = NetStats::default();
        s.record_send("b");
        s.record_send("a");
        let kinds: Vec<_> = s.sent_by_kind().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(kinds, vec!["a", "b"]);
    }
}
