//! Node identity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (a participating object's location) in a network.
///
/// The paper requires participating objects to be totally ordered so a
/// unique resolver can be elected ("object names and the lexicographic
/// ordering could be used", §4.1); `NodeId`'s derived `Ord` provides that
/// order.
///
/// # Examples
///
/// ```
/// use caex_net::NodeId;
///
/// let o1 = NodeId::new(1);
/// let o2 = NodeId::new(2);
/// assert!(o2 > o1); // O2 wins resolver election over O1
/// assert_eq!(o1.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_index() {
        assert!(NodeId::new(0) < NodeId::new(1));
        assert!(NodeId::new(10) > NodeId::new(9));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(NodeId::new(3).to_string(), "O3");
    }

    #[test]
    fn conversions_round_trip() {
        let id: NodeId = 5u32.into();
        assert_eq!(u32::from(id), 5);
    }
}
