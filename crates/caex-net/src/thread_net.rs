//! A real multi-threaded transport with the same FIFO guarantees as the
//! simulator, built on crossbeam channels.
//!
//! Each node owns a [`NodePort`]: an inbox plus the ability to send to
//! every other node. Per-sender FIFO holds because a sending thread's
//! sends into a channel are totally ordered, and crossbeam channels
//! deliver each sender's messages in order.

use crate::{FifoPort, Kinded, NetStats, NodeId};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Error from [`NodePort::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All other ports were dropped; no message can ever arrive.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("all peers disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// One node's endpoint in a [`ThreadNet`]. Move it onto the node's
/// thread; it is `Send` whenever the payload is.
#[derive(Debug)]
pub struct NodePort<M> {
    id: NodeId,
    peers: Arc<Vec<Sender<(NodeId, M)>>>,
    inbox: Receiver<(NodeId, M)>,
    stats: Arc<Mutex<NetStats>>,
}

impl<M: Kinded> NodePort<M> {
    /// This port's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the network.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.peers.len() as u32
    }

    /// Sends `payload` to `to`. Returns `false` if the destination's
    /// port was dropped (treated as a crashed node).
    ///
    /// # Panics
    ///
    /// Panics if `to` is outside the network.
    pub fn send(&self, to: NodeId, payload: M) -> bool {
        let kind = payload.kind();
        let sender = self
            .peers
            .get(to.index() as usize)
            .unwrap_or_else(|| panic!("node {to} outside network of {}", self.peers.len()));
        let ok = sender.send((self.id, payload)).is_ok();
        let mut stats = self.stats.lock();
        if ok {
            stats.record_send(kind);
            stats.record_channel(self.id, to);
        } else {
            stats.record_drop(kind);
        }
        ok
    }

    /// Sends a clone of `payload` to every node in `to`.
    pub fn broadcast<I>(&self, to: I, payload: M)
    where
        I: IntoIterator<Item = NodeId>,
        M: Clone,
    {
        for dest in to {
            self.send(dest, payload.clone());
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time;
    /// [`RecvTimeoutError::Disconnected`] if every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), RecvTimeoutError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.stats.lock().record_delivery(payload.kind());
                Ok((from, payload))
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(RecvTimeoutError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(RecvTimeoutError::Disconnected),
        }
    }

    /// Non-blocking receive; `None` when the inbox is empty.
    pub fn try_recv(&self) -> Option<(NodeId, M)> {
        match self.inbox.try_recv() {
            Ok((from, payload)) => {
                self.stats.lock().record_delivery(payload.kind());
                Some((from, payload))
            }
            Err(_) => None,
        }
    }

    /// Drains messages still sitting in the inbox when the node stops,
    /// recording each as a per-kind drop instead of a delivery. Without
    /// this, a thread that exits on its idle timeout leaves in-flight
    /// messages unaccounted — `sent` would exceed `delivered + dropped`
    /// and the per-kind breakdown shown by [`NetStats`]'s `Display`
    /// would be incomplete on the thread engine. Returns the number of
    /// messages drained.
    pub fn drain_undelivered(&self) -> usize {
        let mut drained = 0;
        while let Ok((_, payload)) = self.inbox.try_recv() {
            self.stats.lock().record_drop(payload.kind());
            drained += 1;
        }
        drained
    }
}

impl<M: Kinded> FifoPort<M> for NodePort<M> {
    fn id(&self) -> NodeId {
        NodePort::id(self)
    }

    fn num_nodes(&self) -> u32 {
        NodePort::num_nodes(self)
    }

    fn send(&self, to: NodeId, payload: M) -> bool {
        NodePort::send(self, to, payload)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(NodeId, M), RecvTimeoutError> {
        NodePort::recv_timeout(self, timeout)
    }

    fn drain_undelivered(&self) -> usize {
        NodePort::drain_undelivered(self)
    }
}

/// Factory for a set of interconnected [`NodePort`]s plus shared stats.
///
/// # Examples
///
/// ```
/// use caex_net::{NodeId, ThreadNet};
/// use std::time::Duration;
///
/// let net: ThreadNet<&'static str> = ThreadNet::new(2);
/// let stats = net.stats();
/// let mut ports = net.into_ports();
/// let b = ports.pop().unwrap();
/// let a = ports.pop().unwrap();
///
/// a.send(NodeId::new(1), "hello");
/// let (from, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
/// assert_eq!(from, NodeId::new(0));
/// assert_eq!(msg, "hello");
/// assert_eq!(stats.lock().sent_total(), 1);
/// ```
#[derive(Debug)]
pub struct ThreadNet<M> {
    ports: Vec<NodePort<M>>,
    stats: Arc<Mutex<NetStats>>,
}

impl<M: Kinded> ThreadNet<M> {
    /// Creates `n` fully connected ports with unbounded inboxes.
    #[must_use]
    pub fn new(n: u32) -> Self {
        let stats = Arc::new(Mutex::new(NetStats::default()));
        let mut senders = Vec::with_capacity(n as usize);
        let mut inboxes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            inboxes.push(rx);
        }
        let peers = Arc::new(senders);
        let ports = inboxes
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| NodePort {
                id: NodeId::new(i as u32),
                peers: Arc::clone(&peers),
                inbox,
                stats: Arc::clone(&stats),
            })
            .collect();
        ThreadNet { ports, stats }
    }

    /// Shared statistics handle (usable after `into_ports`).
    #[must_use]
    pub fn stats(&self) -> Arc<Mutex<NetStats>> {
        Arc::clone(&self.stats)
    }

    /// Consumes the factory, yielding the ports in node-id order.
    #[must_use]
    pub fn into_ports(self) -> Vec<NodePort<M>> {
        self.ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ports_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NodePort<&'static str>>();
    }

    #[test]
    fn per_sender_fifo_across_threads() {
        let net: ThreadNet<String> = ThreadNet::new(2);
        let mut ports = net.into_ports();
        let receiver = ports.pop().unwrap();
        let sender = ports.pop().unwrap();

        let handle = thread::spawn(move || {
            for i in 0..100 {
                sender.send(NodeId::new(1), format!("{i}"));
            }
        });

        let mut next = 0;
        while next < 100 {
            let (_, msg) = receiver.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg, next.to_string());
            next += 1;
        }
        handle.join().unwrap();
    }

    #[test]
    fn timeout_when_no_message() {
        let net: ThreadNet<&'static str> = ThreadNet::new(2);
        let ports = net.into_ports();
        assert_eq!(
            ports[0].recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn send_to_dropped_port_reports_failure() {
        let net: ThreadNet<&'static str> = ThreadNet::new(2);
        let stats = net.stats();
        let mut ports = net.into_ports();
        drop(ports.pop()); // node 1 "crashes"
        let a = ports.pop().unwrap();
        assert!(!a.send(NodeId::new(1), "lost"));
        assert_eq!(stats.lock().dropped_total(), 1);
    }

    #[test]
    fn broadcast_fans_out() {
        let net: ThreadNet<&'static str> = ThreadNet::new(3);
        let ports = net.into_ports();
        ports[0].broadcast([NodeId::new(1), NodeId::new(2)], "all");
        for p in &ports[1..] {
            let (from, msg) = p.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(from, NodeId::new(0));
            assert_eq!(msg, "all");
        }
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let net: ThreadNet<&'static str> = ThreadNet::new(2);
        let ports = net.into_ports();
        assert!(ports[1].try_recv().is_none());
        ports[0].send(NodeId::new(1), "x");
        // Unbounded channel: the message is immediately available.
        assert_eq!(ports[1].try_recv(), Some((NodeId::new(0), "x")));
    }

    #[test]
    #[should_panic(expected = "outside network")]
    fn send_outside_network_panics() {
        let net: ThreadNet<&'static str> = ThreadNet::new(1);
        let ports = net.into_ports();
        ports[0].send(NodeId::new(5), "bad");
    }
}
